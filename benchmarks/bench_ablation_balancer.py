"""Ablation — load-balancer policy (the paper's future-work item 1).

"Patches are collated and distributed among processors to maximize
load-balance while keeping parents and children on the same processors."
The two built-in policies trade those goals: greedy-LPT minimizes
imbalance, Morton-SFC maximizes locality.  This bench measures both
metrics for both policies on a realistic clustered patch set.
"""

import numpy as np

from repro.bench.reporting import format_table, save_json, save_report
from repro.samr import Box, cluster_flags
from repro.samr.loadbalance import balance_greedy, balance_sfc, load_imbalance


def _clustered_boxes(n=96, seed=3):
    """Patch set from clustering a synthetic flame-front flag field."""
    rng = np.random.default_rng(seed)
    flags = np.zeros((n, n), dtype=bool)
    t = np.linspace(0, 2 * np.pi, 400)
    cx, cy = n // 2, n // 2
    r = n * 0.3 * (1.0 + 0.2 * np.sin(5 * t))
    i = np.clip((cx + r * np.cos(t)).astype(int), 0, n - 1)
    j = np.clip((cy + r * np.sin(t)).astype(int), 0, n - 1)
    flags[i, j] = True
    return cluster_flags(flags, min_efficiency=0.6, max_size=16, min_size=4)


def _locality(boxes, owners, nranks):
    """Fraction of adjacent box pairs sharing a rank (parent-child
    co-location proxy)."""
    pairs = same = 0
    for i, a in enumerate(boxes):
        for j in range(i + 1, len(boxes)):
            if a.grow(1).intersects(boxes[j]):
                pairs += 1
                same += owners[i] == owners[j]
    return same / pairs if pairs else 1.0


def run_ablation(nranks=8):
    boxes = _clustered_boxes()
    rows = []
    metrics = {}
    for name, fn in (("greedy-lpt", balance_greedy),
                     ("morton-sfc", balance_sfc)):
        owners = fn(boxes, nranks)
        imb = load_imbalance(boxes, owners, nranks)
        loc = _locality(boxes, owners, nranks)
        metrics[name] = (imb, loc)
        rows.append([name, len(boxes), imb, loc])
    report = format_table(
        ["policy", "patches", "imbalance (max/mean)", "neighbour locality"],
        rows, title=f"Ablation: load balancer policy ({nranks} ranks)")
    return {"metrics": metrics, "report": report, "n_boxes": len(boxes)}


def test_ablation_load_balancer(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report("ablation_balancer", result["report"])
    save_json("ablation_balancer", {
        "bench": "ablation_balancer",
        "n_boxes": result["n_boxes"],
        "policies": {
            name: {"imbalance": imb, "locality": loc}
            for name, (imb, loc) in result["metrics"].items()
        },
    })
    assert result["n_boxes"] >= 8
    greedy_imb, greedy_loc = result["metrics"]["greedy-lpt"]
    sfc_imb, sfc_loc = result["metrics"]["morton-sfc"]
    # the trade-off the paper's load-balancing discussion implies:
    assert greedy_imb <= sfc_imb + 1e-9      # greedy balances better...
    assert sfc_loc >= greedy_loc - 1e-9      # ...SFC keeps neighbours local
    assert greedy_imb < 1.5
    assert sfc_loc > 0.3
