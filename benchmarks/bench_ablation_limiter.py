"""Ablation — slope-limiter choice in the MUSCL reconstruction.

The ``States`` component's limiter is a design knob the paper leaves to
"the component developer who is in the best position to determine the
optimal algorithms".  This bench quantifies it on the Sod problem: error
against the exact solution and sharpness of the captured contact.
"""

import numpy as np

from repro.bench.reporting import format_table, save_json, save_report
from repro.hydro import cfl_dt, euler_rhs, fill_outflow, prim_to_cons
from repro.hydro.riemann_exact import sample_riemann
from repro.hydro.state import cons_to_prim
from repro.integrators import rk2_step
from repro.util.options import fast_mode

GAMMA = 1.4


def _sod_solution(nx, limiter, t_end=0.2):
    g = 2
    dx = 1.0 / nx
    rho = np.where(np.arange(nx) < nx // 2, 1.0, 0.125)
    p = np.where(np.arange(nx) < nx // 2, 1.0, 0.1)
    U = prim_to_cons(np.tile(rho[:, None], (1, 4)), 0.0, 0.0,
                     np.tile(p[:, None], (1, 4)),
                     np.zeros((nx, 4)), GAMMA)
    Ug = np.zeros((5, nx + 2 * g, 4 + 2 * g))
    Ug[:, g:-g, g:-g] = U

    def fill(W):
        for axis in (0, 1):
            for side in (0, 1):
                fill_outflow(W, axis, side, g)

    t = 0.0
    while t < t_end - 1e-12:
        fill(Ug)
        dt = min(cfl_dt(Ug[:, g:-g, g:-g], dx, 1.0, GAMMA, 0.4), t_end - t)

        def rhs(tt, W):
            Wc = W.copy()
            fill(Wc)
            out = np.zeros_like(W)
            out[:, g:-g, g:-g] = euler_rhs(Wc, dx, 1e9, GAMMA,
                                           limiter=limiter)
            return out

        Ug = rk2_step(rhs, t, Ug, dt)
        t += dt
    return cons_to_prim(Ug[:, g:-g, g:-g], GAMMA)


def _exact_profile(nx, t=0.2):
    """Exact Sod density at time t: sample the self-similar solution on
    every ray xi = x/t by shifting the input velocities by -xi (the
    sampler evaluates at xi' = 0 in that frame)."""
    x = (np.arange(nx) + 0.5) / nx - 0.5
    xi = x / t
    rho_x, _u, _v, _p, _z = sample_riemann(
        np.full(nx, 1.0), -xi, np.zeros(nx), np.full(nx, 1.0),
        np.ones(nx),
        np.full(nx, 0.125), -xi, np.zeros(nx), np.full(nx, 0.1),
        np.zeros(nx), GAMMA)
    return rho_x


def run_ablation():
    nx = 100 if fast_mode() else 200
    exact_rho = _exact_profile(nx)
    rows = []
    errors = {}
    for limiter in ("minmod", "van_leer", "mc", "superbee"):
        rho, u, v, p, zeta = _sod_solution(nx, limiter)
        err = float(np.abs(rho[:, 2] - exact_rho).mean())
        errors[limiter] = err
        rows.append([limiter, err])
    report = format_table(
        ["limiter", "L1 density error vs exact"],
        rows, title=f"Ablation: MUSCL limiter on Sod (nx={nx}, t=0.2)",
        floatfmt="{:.5f}")
    return {"errors": errors, "report": report}


def test_ablation_limiter_choice(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report("ablation_limiter", result["report"])
    save_json("ablation_limiter", {
        "bench": "ablation_limiter",
        "l1_density_error": result["errors"],
    })
    errors = result["errors"]
    # all limiters converge to the exact solution at this resolution
    assert all(e < 0.02 for e in errors.values())
    # minmod (most diffusive) cannot beat the sharper MC limiter
    assert errors["mc"] <= errors["minmod"]
