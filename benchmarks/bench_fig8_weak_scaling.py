"""Fig 8 — run time vs processor count at constant per-processor workload.

Paper claim: "increasing the number of processors (and the problem size)
does not make an appreciable difference" — the curves are flat in P.
"""

from repro.bench import run_fig8, save_json, save_report


def test_fig8_constant_workload_flat(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    path = save_report("fig8_weak_scaling", result["report"])
    json_path = save_json("fig8_weak_scaling", {
        "figure": "fig8",
        "flatness": {str(n): v for n, v in result["flatness"].items()},
        "curves": [
            {"n_local": r.n_local, "procs": r.procs, "times": r.times,
             "rank_summaries": r.rank_summaries,
             "worst_imbalance": r.worst_imbalance}
            for r in result["results"]
        ],
    }, metrics={
        # KPIs for the BENCH_ trajectory: slowest case per size (lower =
        # better) plus the flatness ratio per size
        **{f"t_max_{r.n_local}": max(r.times) for r in result["results"]},
        **{f"flatness_{n}": v for n, v in result["flatness"].items()},
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    # flat curves: max/min over the P sweep stays near 1 for every size
    # (the sweep caps at P = 16 — see repro.bench.scaling for the
    # one-core emulation caveat beyond that)
    for n_local, ratio in result["flatness"].items():
        assert ratio < 1.6, f"size {n_local}: T varies {ratio:.2f}x over P"
    # curves are ordered by per-rank problem size
    results = result["results"]
    for a, b in zip(results, results[1:]):
        assert max(a.times) < min(b.times)
