"""Worker trace-shipping overhead on the backend A/B workload.

ISSUE 10's tentpole makes a traced ``backend="mp"`` run ship every
worker's span buffers, metrics snapshot and profiler samples back
through the result queue.  The claim: folding a 4-rank trace home costs
single-digit percent of the run.  This bench times the same traced
reaction-diffusion run with shipping armed (the default) and with the
``REPRO_OBS_SHIP=0`` kill switch, interleaved so host drift hits both
sides equally, and writes the ratio into the ``BENCH_`` trajectory so
the regression gate watches shipping cost over time.
"""

import os
import time

import repro.obs as obs
from repro.bench import save_json, save_report
from repro.bench.backends import _workload
from repro.bench.reporting import format_table
from repro.mpi import ZERO_COST, mpirun
from repro.obs import trace
from repro.util.options import fast_mode

NPROCS = 4


def _traced_run(main, ship: bool) -> tuple[float, int]:
    """One traced mp run; returns (wall seconds, shipped rank count)."""
    os.environ["REPRO_OBS_SHIP"] = "1" if ship else "0"
    try:
        with obs.tracing():
            t0 = time.perf_counter()
            mpirun(NPROCS, main, machine=ZERO_COST, backend="mp")
            wall = time.perf_counter() - t0
            ranks = {e.rank for e in trace.events()
                     if e.rank is not None}
    finally:
        os.environ.pop("REPRO_OBS_SHIP", None)
    return wall, len(ranks)


def run_ship_overhead(fast: bool | None = None, rounds: int = 3):
    fast = fast_mode() if fast is None else fast
    nx, n_steps = (16, 2) if fast else (32, 4)
    main = _workload(nx, n_steps)
    _traced_run(main, ship=False)        # warm-up
    off: list[float] = []
    on: list[float] = []
    ranks_on = 0
    for _ in range(rounds):
        off.append(_traced_run(main, ship=False)[0])
        wall, ranks_on = _traced_run(main, ship=True)
        on.append(wall)
    overhead_pct = 100.0 * (min(on) / min(off) - 1.0)
    return {
        "workload": {"app": "reaction_diffusion", "nx": nx, "ny": nx,
                     "n_steps": n_steps, "nprocs": NPROCS,
                     "rounds": rounds},
        "ship_off": off,
        "ship_on": on,
        "ranks_shipped": ranks_on,
        "overhead_pct": overhead_pct,
    }


def test_trace_ship_overhead_single_digit(benchmark):
    result = benchmark.pedantic(run_ship_overhead, rounds=1,
                                iterations=1)
    rows = [["ship off (REPRO_OBS_SHIP=0)", min(result["ship_off"])],
            ["ship on  (default)", min(result["ship_on"])]]
    w = result["workload"]
    report = format_table(
        ["variant", "best wall [s]"], rows,
        title=(f"worker trace shipping — reaction-diffusion "
               f"{w['nx']}x{w['ny']}, {w['n_steps']} steps, "
               f"{w['nprocs']} mp ranks"))
    report += (f"\noverhead: {result['overhead_pct']:+.2f}%  "
               f"(claim: <= 5%)\n")
    path = save_report("trace_ship_overhead", report)
    json_path = save_json("trace_ship_overhead", {
        "bench": "trace_ship_overhead",
        "workload": w,
        "ship_off_best": min(result["ship_off"]),
        "ship_on_best": min(result["ship_on"]),
        "ranks_shipped": result["ranks_shipped"],
        "overhead_pct": result["overhead_pct"],
    }, metrics={
        # trajectory KPIs (lower = better); overhead_pct shifted +100
        # so the gate's ratio test stays meaningful near zero
        "ship_on_best": min(result["ship_on"]),
        "overhead_pct_plus100": 100.0 + result["overhead_pct"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    # shipping actually happened on the armed side
    assert result["ranks_shipped"] == NPROCS
    # the headline claim: folding 4 ranks home costs <= 5%
    assert result["overhead_pct"] <= 5.0
