"""Table 5 — weak-scaling run-time statistics of the reaction-diffusion
code (mean / median / stdev across machine sizes, per per-rank mesh).

Paper claims: the machine behaves "homogeneous" (small stdev relative to
the mean — no jumps as the job spreads), and run times scale with the
per-processor problem size.
"""

from repro.bench import run_table5, save_json, save_report


def test_table5_weak_scaling_statistics(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    path = save_report("table5_weak_scaling", result["report"])
    json_path = save_json("table5_weak_scaling", {
        "table": "table5",
        "results": [
            {"n_local": r.n_local, "procs": r.procs, "times": r.times,
             "mean": r.mean, "median": r.median, "stdev": r.stdev,
             "worst_imbalance": r.worst_imbalance,
             "rank_summaries": r.rank_summaries}
            for r in result["results"]
        ],
        "ratios": [list(row) for row in result["ratios"]],
        "imbalance": {str(n): v for n, v in result["imbalance"].items()},
    }, metrics={
        # trajectory KPIs (lower = better): mean run time and worst
        # max/avg load imbalance per per-rank problem size
        **{f"mean_t_{r.n_local}": r.mean for r in result["results"]},
        **{f"imbalance_{r.n_local}": r.worst_imbalance
           for r in result["results"]},
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    results = result["results"]
    # every case carries the aggregated per-rank summary, and the widest
    # sweep point actually broke the run down rank by rank with the
    # max/avg imbalance statistic
    for r in results:
        assert len(r.rank_summaries) == len(r.procs)
        for p, case in zip(r.procs, r.rank_summaries):
            assert len(case["per_rank"]) == p
            assert case["stats"]["imbalance"] >= 1.0
        assert r.worst_imbalance >= 1.0
    # homogeneity: stdev well below the mean for every size
    for r in results:
        assert r.stdev < 0.25 * r.mean
    # run time tracks per-rank problem size (monotone in cell count)
    means = [r.mean for r in results]
    assert all(b > a for a, b in zip(means, means[1:]))
    # ratios lean toward the cell-count ratio (Python fixed overhead
    # pulls small sizes below the ideal square law; cache effects can
    # push slightly above it)
    for _b, _a, got, expect in result["ratios"]:
        assert 1.3 < got <= expect * 1.4
