"""Sampling-profiler overhead on the Table 4 serial workload.

The flight recorder (:mod:`repro.obs.profiler`) claims always-on
capability: arming it at the default interval must cost single-digit
percent on a real workload, and leaving it off must cost nothing beyond
the tracer's flag check.  This bench measures both claims on the Table 4
component-path serial workload (per-cell stiff CVode integrations
through CCA ports) and writes its numbers into the ``BENCH_`` trajectory
so the regression gate watches the profiler's own cost over time.
"""

import os

import repro.obs.profiler as profiler
from repro.bench import run_serial_workload, save_json, save_report
from repro.bench.reporting import format_table


def run_overhead(repeats: int = 3):
    """Interleave bare and profiled passes (so drift hits both equally);
    compare best-of-N wall times."""
    baseline: list[float] = []
    sampled: list[float] = []
    run_serial_workload()          # warm-up: imports, JIT-ish numpy paths
    for _ in range(repeats):
        baseline.append(run_serial_workload())
        with profiler.profiling() as prof:
            sampled.append(run_serial_workload())
    overhead_pct = 100.0 * (min(sampled) / min(baseline) - 1.0)
    return {
        "baseline": baseline,
        "sampled": sampled,
        "overhead_pct": overhead_pct,
        "interval": prof.interval,
        "ticks": prof.ticks,
        "samples": prof.samples_taken,
        "profiler": prof,
    }


def test_profiler_overhead_single_digit(benchmark):
    result = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    prof = result["profiler"]
    rows = [["bare", min(result["baseline"])],
            ["sampling armed", min(result["sampled"])]]
    report = format_table(
        ["variant", "best wall [s]"], rows,
        title=(f"Sampling-profiler overhead on the Table 4 serial "
               f"workload (interval {result['interval'] * 1e3:.1f} ms)"))
    report += (f"\noverhead: {result['overhead_pct']:+.2f}%  "
               f"(claim: <= 5%)\n\n" + prof.report())
    path = save_report("profiler_overhead", report)
    bench_dir = os.environ.get(
        "REPRO_BENCH_DIR", os.path.join(os.getcwd(), "bench_results"))
    flame_path = prof.export_folded(
        os.path.join(bench_dir, "profiler_flame.folded"))
    json_path = save_json("profiler_overhead", {
        "bench": "profiler_overhead",
        "baseline_best": min(result["baseline"]),
        "sampled_best": min(result["sampled"]),
        "overhead_pct": result["overhead_pct"],
        "interval": result["interval"],
        "ticks": result["ticks"],
        "samples": result["samples"],
    }, metrics={
        # trajectory KPIs (lower = better); overhead_pct is shifted by
        # +100 so the gate's ratio test stays meaningful near zero
        "baseline_best": min(result["baseline"]),
        "sampled_best": min(result["sampled"]),
        "overhead_pct_plus100": 100.0 + result["overhead_pct"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    benchmark.extra_info["flamegraph"] = flame_path
    # the profiler actually ran and recorded frames
    assert result["ticks"] > 0
    assert result["samples"] > 0
    assert prof.folded("frames")
    # the headline claim: single-digit-percent overhead at the default
    # interval on a CPU-bound serial workload
    assert result["overhead_pct"] <= 5.0
    # off means off: no module-level sampler left running
    assert profiler.on is False
