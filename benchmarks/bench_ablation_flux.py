"""Ablation — GodunovFlux vs EFMFlux (the paper's §4.3 design choice).

Quantifies the trade the paper describes: EFM is "a more diffusive
gas-kinetic scheme" that buys robustness for strong shocks.  Measures (a)
mass leakage across a stationary contact (diffusivity proxy) and (b)
deposited circulation on the same shock-interface run.
"""

import numpy as np

from repro.apps import run_shock_interface
from repro.bench.reporting import format_table, save_json, save_report
from repro.hydro import efm_flux, godunov_flux
from repro.util.options import fast_mode


def run_ablation():
    # (a) stationary-contact mass flux
    priml = tuple(np.array([v]) for v in (1.0, 0.0, 0.0, 1.0, 1.0))
    primr = tuple(np.array([v]) for v in (0.25, 0.0, 0.0, 1.0, 0.0))
    leak = {
        "godunov": abs(float(godunov_flux(priml, primr, 1.4)[0, 0])),
        "efm": abs(float(efm_flux(priml, primr, 1.4)[0, 0])),
    }
    # (b) shock-interface circulation with each scheme
    size = (32, 16) if fast_mode() else (64, 32)
    t_end = 0.6 if fast_mode() else 1.0
    circ = {}
    for scheme in ("godunov", "efm"):
        res = run_shock_interface(
            nx=size[0], ny=size[1], max_levels=1,
            flux_scheme=scheme, t_end_over_tau=t_end)
        circ[scheme] = res["circulation_min"]
    rows = [
        [scheme, leak[scheme], circ[scheme]]
        for scheme in ("godunov", "efm")
    ]
    report = format_table(
        ["flux scheme", "contact mass leak", "deposited circulation"],
        rows, title="Ablation: Godunov vs EFM interface flux")
    return {"leak": leak, "circulation": circ, "report": report}


def test_ablation_flux_scheme(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_report("ablation_flux", result["report"])
    save_json("ablation_flux", {
        "bench": "ablation_flux",
        "contact_mass_leak": result["leak"],
        "circulation": result["circulation"],
    })
    # Godunov resolves the contact exactly; EFM leaks (more diffusive)
    assert result["leak"]["godunov"] < 1e-10
    assert result["leak"]["efm"] > 1e-4
    # both deposit negative circulation of comparable magnitude
    g, e = result["circulation"]["godunov"], result["circulation"]["efm"]
    assert g < 0 and e < 0
    assert 0.3 < e / g < 2.0
