"""Fig 6 — the shock-interface density field at t/tau = 2.096.

Paper claims: reflected shocks are visible after the interaction, the
interface (zeta = 0.5 band) survives as a coherent feature, and the steep
density/pressure gradients live on the finest AMR level.
"""

from repro.bench import run_fig6, save_json, save_report
from repro.util.options import fast_mode


def test_fig6_density_field(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    path = save_report("fig6_density_field", result["report"])
    json_path = save_json("fig6_density_field", {
        "figure": "fig6",
        "rho_range": list(result["rho_range"]),
        "p_max": result["p_max"],
        "p_post_shock": result["p_post_shock"],
        "reflected_shocks": result["reflected_shocks"],
        "circulation_final": result["result"]["circulation_final"],
        "census": result["census"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    rho_min, rho_max = result["rho_range"]
    # density spans quiescent air to shocked Freon
    assert rho_min > 0.5
    assert rho_max > 3.0          # beyond the initial Freon density
    # reflected shocks: pressure above the incident post-shock value
    assert result["reflected_shocks"]
    # the interface band exists (numerically smeared zeta transition)
    assert result["result"]["circulation_final"] < 0.0
    if not fast_mode():
        # steep gradients refined: the finest level holds cells
        census = result["census"]
        assert len(census) >= 2
        assert census[-1][2] > 0
