"""Fig 7 — convergence of the interfacial circulation with refinement.

Paper claims: the deposited circulation deepens with mesh refinement, the
2- and 3-level runs nearly coincide ("no appreciable difference"), and the
maximum deposition is closest to the analytic estimate for the deepest
hierarchy.
"""

from repro.bench import run_fig7, save_json, save_report
from repro.util.options import fast_mode


def test_fig7_circulation_convergence(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    path = save_report("fig7_circulation", result["report"])
    json_path = save_json("fig7_circulation", {
        "figure": "fig7",
        "monotone": result["monotone"],
        "finest_gap": result["finest_gap"],
        "curves": {str(nlev): c for nlev, c in result["curves"].items()},
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    curves = result["curves"]
    # negative (baroclinic) deposition on every hierarchy
    for nlev, c in curves.items():
        assert c["min"] < 0.0
    # deposition deepens with refinement
    assert result["monotone"]
    # the two finest hierarchies approach each other (convergence);
    # the fast two-level smoke keeps a looser band
    limit = 0.35 if fast_mode() else 0.25
    assert result["finest_gap"] < limit
