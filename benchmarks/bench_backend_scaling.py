"""Backend A/B — threads vs multiprocessing wall-clock on the Table 5
reaction-diffusion workload.

Claims checked every run: both backends produce bit-identical physics,
and the recorded ``mp_over_threads`` ratio is finite and positive.  The
*speedup* claim is host-conditional — mp only beats threads when there
is more than one core to escape the GIL onto — so it is asserted only
when the host actually has the cores, and the honest core count rides
in the ledger either way.
"""

import os

from repro.bench import run_backend_ab, save_json, save_report


def test_backend_ab_wall_clock(benchmark):
    result = benchmark.pedantic(run_backend_ab, rounds=1, iterations=1)
    path = save_report("backend_scaling", result["report"])
    json_path = save_json("backend_scaling", {
        "workload": result["workload"],
        "cores": result["cores"],
        "results": result["results"],
        "mp_over_threads": result["mp_over_threads"],
        "speedup": result["speedup"],
    }, metrics={
        # KPI (lower = better): mp wall-clock relative to threads on
        # the same host — the regression gate's history is host-matched
        "mp_over_threads": result["mp_over_threads"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path

    assert result["mp_over_threads"] > 0.0
    for backend in ("threads", "mp"):
        assert result["results"][backend]["best"] > 0.0
    # the equivalence claim is asserted inside run_backend_ab (it raises
    # on any T_max mismatch); here we only re-state the ledger shape
    assert result["T_max"] > 0.0
    cores = result["cores"]
    nprocs = result["workload"]["nprocs"]
    if cores >= 2 and os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP"):
        # multi-core CI: real parallelism must show up as wall-clock
        # speedup (the ISSUE's 1.5x floor needs >= 2 usable cores)
        assert result["speedup"] >= 1.5, (
            f"expected >=1.5x mp speedup on {cores} cores / "
            f"{nprocs} ranks, measured x{result['speedup']:.2f}")
