"""Fig 3 / Fig 4 — flame evolution of the three-hot-spot configuration
and the AMR patch distribution tracking it.

Paper claims: the three hot spots evolve into spreading fronts (Fig 3)
and the ratio-2 refinement hierarchy follows the thin structures (Fig 4).
"""

from repro.bench import run_fig3_fig4, save_json, save_report


def test_fig3_fig4_flame_evolution(benchmark):
    result = benchmark.pedantic(run_fig3_fig4, rounds=1, iterations=1)
    path = save_report("fig3_fig4_flame", result["report"])
    json_path = save_json("fig3_fig4_flame", {
        "figure": "fig3_fig4",
        "refined": result["refined"],
        "snapshots": result["snapshots"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    snaps = result["snapshots"]
    assert len(snaps) >= 3
    # initial state: cold background + hot spots
    assert snaps[0]["T_min"] < 350.0
    assert snaps[0]["T_max"] > 1200.0
    # the field stays physical while evolving
    for s in snaps:
        assert 250.0 < s["T_min"] <= s["T_max"] < 3500.0
    # the hierarchy refines the fronts throughout
    assert result["refined"]
    assert snaps[-1]["cells"] > snaps[-1]["census"][0][2]
