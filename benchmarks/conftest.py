"""Benchmark configuration.

Benchmarks run at full scale by default; export ``REPRO_FAST=1`` for a
quick smoke pass.  Every harness writes its rendered table to
``bench_results/<name>.txt`` in addition to asserting the paper's
qualitative claims.
"""
