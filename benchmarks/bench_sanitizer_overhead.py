"""Race-sanitizer cost on the Table 4 serial workload.

The runtime sanitizer (:mod:`repro.mpi.sanitizer`) claims a
flag-check-only disabled cost: every hook on a hot path (port dispatch,
message send/recv, collective rendezvous, shadow-container mutators)
short-circuits on the module flag ``sanitizer.on``.  This bench bounds
that claim from above on the Table 4 component-path serial workload
(per-cell stiff CVode integrations through CCA ports): the *armed*
variant runs with ``sanitizer.configure()`` but outside any SCMD world,
so every hook takes the flag check, the proxy indirection, and the
early ``_state is None`` return — strictly more work than the disabled
path's single flag check.  If even that ceiling stays within 5% of the
bare run, the disabled cost does too.  Numbers land in the
``BENCH_sanitizer_overhead.json`` trajectory so the regression gate
watches the sanitizer's own cost over time.
"""

import time

import repro.mpi.sanitizer as sanitizer
from repro.bench import save_json, save_report
from repro.bench.overhead import _ComponentCase
from repro.bench.reporting import format_table
from repro.util.options import fast_mode
from repro.util.timing import Stopwatch


def run_overhead(n_cells: int | None = None, rounds: int = 3):
    """Interleave bare and armed cells of the Table 4 component case on
    CPU time, over several rounds; compare best-of-round CPU (the noise
    floor of the adaptive per-cell CVode work) between the variants."""
    if n_cells is None:
        n_cells = 10 if fast_mode() else 30
    was_on = sanitizer.on
    sanitizer.deactivate()
    bare = _ComponentCase(1200.0, 6e-6, 1e-6, 1e-10)
    sanitizer.configure()
    armed = _ComponentCase(1200.0, 6e-6, 1e-6, 1e-10)  # ports proxied
    baseline: list[float] = []
    armed_cpu: list[float] = []
    try:
        bare.integrate_cell()      # warm-up: imports, JIT-ish numpy paths
        armed.integrate_cell()
        for _ in range(rounds):
            sw_bare = Stopwatch(clock=time.process_time)
            sw_armed = Stopwatch(clock=time.process_time)
            for _ in range(n_cells):   # cell-by-cell interleave
                with sw_bare:
                    bare.integrate_cell()
                with sw_armed:
                    armed.integrate_cell()
            baseline.append(sw_bare.elapsed)
            armed_cpu.append(sw_armed.elapsed)
    finally:
        sanitizer.deactivate()
        if was_on:
            sanitizer.configure()
    overhead_pct = 100.0 * (min(armed_cpu) / min(baseline) - 1.0)
    return {
        "baseline": min(baseline),
        "armed": min(armed_cpu),
        "n_cells": n_cells,
        "rounds": rounds,
        "overhead_pct": overhead_pct,
        "restored_on": was_on,
    }


def test_sanitizer_disabled_cost_bounded(benchmark):
    result = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    rows = [["bare (sanitizer off)", result["baseline"]],
            ["armed, no SCMD world", result["armed"]]]
    report = format_table(
        ["variant", "CPU [s]"], rows,
        title=(f"Race-sanitizer cost on the Table 4 serial workload "
               f"({result['n_cells']} cells, interleaved blocks)"))
    report += (f"\narmed-outside-world overhead: "
               f"{result['overhead_pct']:+.2f}%  (ceiling for the "
               f"disabled flag-check cost; claim: <= 5%)\n")
    path = save_report("sanitizer_overhead", report)
    json_path = save_json("sanitizer_overhead", {
        "bench": "sanitizer_overhead",
        "baseline_cpu": result["baseline"],
        "armed_cpu": result["armed"],
        "n_cells": result["n_cells"],
        "overhead_pct": result["overhead_pct"],
    }, metrics={
        # trajectory KPIs (lower = better); overhead_pct is shifted by
        # +100 so the gate's ratio test stays meaningful near zero
        "baseline_cpu": result["baseline"],
        "armed_cpu": result["armed"],
        "overhead_pct_plus100": 100.0 + result["overhead_pct"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    # the headline claim: a flag check is all the disabled path pays —
    # bounded here by the armed-outside-world ceiling
    assert result["overhead_pct"] <= 5.0
    # the bench left the process-wide switch exactly as it found it
    assert sanitizer.on is result["restored_on"]
