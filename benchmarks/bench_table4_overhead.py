"""Table 4 — single-processor component overhead.

Paper claim: componentized and library builds of the same 0D chemistry
workload differ by at most ~1.5% with no systematic trend — port
indirection does not hurt serial performance.
"""

from repro.bench import run_table4, save_report


def test_table4_component_overhead(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    path = save_report("table4_overhead", result["report"])
    benchmark.extra_info["report"] = path
    benchmark.extra_info["max_abs_pct"] = result["max_abs_pct"]
    rows = result["rows"]
    assert len(rows) >= 4
    # the architectural claim: overhead is small in both directions...
    assert result["max_abs_pct"] < 10.0
    # ...and shows no trend (not all rows favour the same variant, or the
    # mean offset is well inside the noise band)
    diffs = [r.pct_diff for r in rows]
    mean = sum(diffs) / len(diffs)
    assert abs(mean) < 5.0
