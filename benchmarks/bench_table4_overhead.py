"""Table 4 — single-processor component overhead.

Paper claim: componentized and library builds of the same 0D chemistry
workload differ by at most ~1.5% with no systematic trend — port
indirection does not hurt serial performance.
"""

from repro.bench import run_table4, save_json, save_report


def test_table4_component_overhead(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    path = save_report("table4_overhead", result["report"])
    json_path = save_json("table4_overhead", {
        "table": "table4",
        "max_abs_pct": result["max_abs_pct"],
        "rows": [
            {"dt_label": r.dt_label, "n_cells": r.n_cells, "nfe": r.nfe,
             "t_component": r.t_component, "t_library": r.t_library,
             "pct_diff": r.pct_diff}
            for r in result["rows"]
        ],
    }, metrics={
        # trajectory KPIs (lower = better): total CPU seconds through
        # each path, and the paper's headline |%| overhead bound
        "t_component_total": sum(r.t_component for r in result["rows"]),
        "t_library_total": sum(r.t_library for r in result["rows"]),
        "max_abs_pct": result["max_abs_pct"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    benchmark.extra_info["max_abs_pct"] = result["max_abs_pct"]
    rows = result["rows"]
    assert len(rows) >= 4
    # the architectural claim: overhead is small in both directions...
    assert result["max_abs_pct"] < 10.0
    # ...and shows no trend (not all rows favour the same variant, or the
    # mean offset is well inside the noise band)
    diffs = [r.pct_diff for r in rows]
    mean = sum(diffs) / len(diffs)
    assert abs(mean) < 5.0
