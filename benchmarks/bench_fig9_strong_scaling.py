"""Fig 9 — strong scaling vs ideal for two global problem sizes.

Paper claims: the larger (350^2) problem follows the ideal curve closely;
the smaller (200^2) problem departs at high processor counts (worst
efficiency 73% at P = 48, where the per-rank patch is only 29^2).
"""

from repro.bench import run_fig9, save_json, save_report


def test_fig9_strong_scaling_knee(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    path = save_report("fig9_strong_scaling", result["report"])
    json_path = save_json("fig9_strong_scaling", {
        "figure": "fig9",
        "worst_small": result["worst_small"],
        "worst_large": result["worst_large"],
        "curves": {str(n): c for n, c in result["curves"].items()},
    }, metrics={
        # serial-baseline time per size (lower = better); efficiency is
        # tracked inverted so the gate flags drops the same way it flags
        # slowdowns (higher = worse)
        **{f"t1_{n}": c["times"][0]
           for n, c in result["curves"].items()},
        "inv_worst_small": 1.0 / result["worst_small"],
        "inv_worst_large": 1.0 / result["worst_large"],
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    curves = result["curves"]
    sizes = sorted(curves)
    small, large = sizes[0], sizes[-1]
    # measured time decreases with P for both problems
    for n in sizes:
        times = curves[n]["times"]
        assert times[-1] < times[0]
    # the large problem scales better than the small one at the highest P
    assert result["worst_large"] > result["worst_small"]
    # the small problem's efficiency clearly degrades (the paper's knee) —
    # our Python per-rank overhead makes the knee deeper than the paper's
    # 73%, the *ordering and existence* of the knee is the claim
    assert result["worst_small"] < 0.9
    assert result["worst_large"] > 0.3
