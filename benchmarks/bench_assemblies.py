"""Tables 1-3 / Figs 1, 2, 5 — the component assemblies themselves.

These are structural artifacts rather than measurements: the subsystem ->
component maps (Tables 1-3) and the port wiring diagrams (the GUI shots of
Figs 1, 2, 5).  The bench instantiates every assembly, dumps its wiring,
and checks it against the paper's tables.
"""

from repro.apps import assembly_table, describe_assembly
from repro.apps.assemblies import format_assembly_table
from repro.apps.ignition0d import build_ignition0d
from repro.apps.reaction_diffusion import build_reaction_diffusion
from repro.apps.shock_interface import build_shock_interface
from repro.bench import save_json, save_report
from repro.cca import Framework


def build_all():
    out = {}
    for name, builder in [
        ("ignition0d", build_ignition0d),
        ("reaction_diffusion", build_reaction_diffusion),
        ("shock_interface", build_shock_interface),
    ]:
        fw = Framework()
        builder(fw)
        out[name] = fw
    return out


def test_assemblies_tables_and_wiring(benchmark):
    frameworks = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report_parts = []
    for name, fw in frameworks.items():
        report_parts.append(format_assembly_table(name))
        report_parts.append(describe_assembly(fw))
        report_parts.append("")
    path = save_report("tables1_2_3_assemblies", "\n".join(report_parts))
    save_json("tables1_2_3_assemblies", {
        "bench": "assemblies",
        "tables": {name: assembly_table(name) for name in frameworks},
        "connections": {
            name: [list(user) + list(provider)
                   for user, provider in sorted(fw.connections().items())]
            for name, fw in frameworks.items()
        },
    })

    # Table 1: the 0D code has no mesh; CvodeComponent + ThermoChemistry
    # form the implicit subsystem
    t1 = assembly_table("ignition0d")
    assert t1["Mesh"] == ["N/A"]
    assert set(t1["Implicit Integration"]) == {"CvodeComponent",
                                               "ThermoChemistry"}
    # Table 2: GrACE is mesh + data object + BC
    t2 = assembly_table("reaction_diffusion")
    for subsystem in ("Mesh", "Data Object", "Boundary Condition"):
        assert t2[subsystem] == ["GrACEComponent"]
    # Table 3: no implicit subsystem in the hydro code
    t3 = assembly_table("shock_interface")
    assert t3["Implicit Integration"] == ["N/A"]

    # wiring sanity: every declared uses-port of every instance that the
    # drivers exercise is connected
    fw = frameworks["reaction_diffusion"]
    wired = {(u, p) for (u, p) in fw.connections()}
    assert ("Driver", "explicit") in wired
    assert ("ExplicitIntegrator", "rhs") in wired
    assert len(fw.connections()) >= 20
