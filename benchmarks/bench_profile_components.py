"""Per-component performance characterization (future-work item 4).

"By using TAU, we intend to characterize the performance characteristics
of individual components and their assemblies."  This bench instruments
the reaction-diffusion assembly, runs a few steps, and emits the
per-component cost breakdown — verifying the physics components dominate
and the framework plumbing is cheap (the paper's overall thesis).
"""

from repro.apps.reaction_diffusion import build_reaction_diffusion
from repro.bench.reporting import save_json, save_report
from repro.cca import Framework
from repro.cca.profiling import instrument
from repro.util.options import fast_mode


def run_profile():
    framework = Framework()
    n = 16 if fast_mode() else 32
    build_reaction_diffusion(
        framework, nx=n, ny=n, max_levels=1, n_steps=3, dt=1e-7,
        chemistry_mode="batch")
    profiler = instrument(framework)
    framework.go("Driver")
    return profiler


def test_profile_component_breakdown(benchmark):
    profiler = benchmark.pedantic(run_profile, rounds=1, iterations=1)
    report = profiler.report()
    path = save_report("profile_components", report)
    agg = profiler.by_component()
    # merge per-port entries per component instance
    merged: dict[str, float] = {}
    calls: dict[str, int] = {}
    for key, (c, t) in agg.items():
        comp = key.split(":")[0]
        merged[comp] = merged.get(comp, 0.0) + t
        calls[comp] = calls.get(comp, 0) + c
    total_cpu = sum(merged.values())
    total_calls = sum(calls.values())
    json_path = save_json("profile_components", {
        "bench": "profile_components",
        "total_self_cpu_seconds": total_cpu,
        "total_port_calls": total_calls,
        "components": [
            {"component": comp, "calls": calls[comp],
             "self_cpu_seconds": secs}
            for comp, secs in sorted(merged.items(),
                                     key=lambda kv: kv[1], reverse=True)
        ],
        "methods": [
            {"method": key, "calls": c, "self_cpu_seconds": t}
            for key, (c, t) in sorted(agg.items())
        ],
    }, metrics={
        # trajectory KPIs (lower = better): total self-CPU through the
        # instrumented assembly and the per-physics-component costs the
        # regression gate watches for hot-path slowdowns
        "total_self_cpu_seconds": total_cpu,
        "diffusion_cpu_seconds": merged.get("DiffusionPhysics", 0.0),
        "explicit_cpu_seconds": merged.get("ExplicitIntegrator", 0.0),
    })
    benchmark.extra_info["report"] = path
    benchmark.extra_info["json"] = json_path
    # physics components were exercised
    assert calls.get("DiffusionPhysics", 0) > 0
    assert calls.get("ReactionTerms", 0) > 0
    assert calls.get("ExplicitIntegrator", 0) > 0
    # the RHS work (diffusion + chemistry adaptor) dominates the profile;
    # lightweight plumbing (Statistics) stays marginal
    heavy = merged.get("DiffusionPhysics", 0.0) + \
        merged.get("ImplicitIntegrator", 0.0) + \
        merged.get("ExplicitIntegrator", 0.0)
    light = merged.get("Statistics", 0.0)
    assert heavy > light
