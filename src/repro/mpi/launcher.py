"""``mpirun`` — the SCMD job launcher.

"A CCAFFEINE job is generally started using mpirun (or equivalent): P
instances of the framework, run with the same script, cause P identically
configured frameworks to load and exist on as many processors."  Here the
"processors" are rank-threads inside one Python process; the program is any
callable taking the rank's world communicator.

Shared-state hazard: real MPI ranks get private address spaces; these
rank-threads do **not**.  Module-level mutable objects and mutated class
attributes alias across ranks — run ``python -m repro.analysis`` (the
RA2xx findings in :mod:`repro.analysis.scmd_safety`) to flag such state
before launching, and mark deliberate singletons ``# scmd: shared``.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Sequence

from repro.errors import CommAbortedError, MPIError
from repro.mpi import sanitizer as _tsan
from repro.mpi.comm import Comm, World
from repro.mpi.perfmodel import MachineModel, LOCALHOST
from repro.obs import trace as _trace
from repro.obs.aggregate import record_rank_clocks
from repro.util import logging as rlog


class RankFailure(MPIError):
    """One or more ranks raised; carries per-rank tracebacks."""

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = failures
        lines = []
        for rank, exc in sorted(failures.items()):
            tb = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            lines.append(f"--- rank {rank} ---\n{tb}")
        super().__init__(
            f"{len(failures)} rank(s) failed:\n" + "\n".join(lines)
        )


def mpirun(
    nprocs: int,
    main: Callable[..., Any],
    args: Sequence[Any] = (),
    machine: MachineModel = LOCALHOST,
    return_clocks: bool = False,
) -> list[Any]:
    """Run ``main(comm, *args)`` on ``nprocs`` rank-threads.

    Returns the per-rank return values (rank order).  If any rank raises,
    the world is aborted (unblocking its peers) and :class:`RankFailure`
    is raised with every original traceback.

    With ``return_clocks=True`` each entry becomes ``(value, virtual_time)``
    where ``virtual_time`` is the rank's final clock — the number the
    scaling benches report.
    """
    if nprocs < 1:
        raise MPIError(f"nprocs must be >= 1, got {nprocs}")
    world = World(nprocs, machine)
    results: list[Any] = [None] * nprocs
    clocks: list[float] = [0.0] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Comm(world, comm_id=0, rank=rank, size=nprocs, global_rank=rank)
        # Rank-tag the thread for logging AND repro.obs trace attribution;
        # restored (not cleared) so the inline nprocs == 1 path is safe.
        with rlog.rank_context(rank):
            try:
                comm.reset_clock()  # don't charge thread start-up
                results[rank] = main(comm, *args)
                clocks[rank] = comm.clock
            except CommAbortedError as exc:
                # Secondary failure: this rank was unblocked by a peer's
                # abort.
                with failures_lock:
                    failures.setdefault(rank, exc)
            except BaseException as exc:  # noqa: BLE001 - report all crashes
                with failures_lock:
                    failures[rank] = exc
                world.abort(
                    f"rank {rank} raised {type(exc).__name__}: {exc}")

    # While the sanitizer is armed, give this world fresh vector clocks
    # and a fresh shadow table — the disabled cost is one flag check.
    if _tsan.on:
        _tsan.world_begin(nprocs)
    try:
        if nprocs == 1:
            # Fast path: run inline (no thread) — keeps unit tests cheap
            # and tracebacks direct.
            runner(0)
        else:
            threads = [
                threading.Thread(target=runner, args=(rank,),
                                 name=f"rank-{rank}")
                for rank in range(nprocs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
    finally:
        if _tsan.on:
            _tsan.world_end()

    if failures:
        # Report only primary failures when present; a world-abort cascade
        # otherwise shows every waiting rank as failed.
        primary = {
            r: e for r, e in failures.items()
            if not isinstance(e, CommAbortedError)
        }
        raise RankFailure(primary or failures)
    if _trace.on and nprocs > 1:
        # Teardown aggregation: every traced SCMD run records each rank's
        # final virtual clock plus the reduced summary (max/avg imbalance,
        # p95, ...) into the default registry — the per-rank breakdown the
        # scaling benches and the metrics JSON report.
        summary = record_rank_clocks(clocks)
        _trace.instant(
            "mpi.world_teardown", "launcher", nprocs=nprocs,
            imbalance=summary["stats"]["imbalance"],
            clock_max=summary["stats"]["max"],
            clock_mean=summary["stats"]["mean"])
    if return_clocks:
        return [(results[r], clocks[r]) for r in range(nprocs)]
    return results
