"""``mpirun`` — the SCMD job launcher, dispatching to execution backends.

"A CCAFFEINE job is generally started using mpirun (or equivalent): P
instances of the framework, run with the same script, cause P identically
configured frameworks to load and exist on as many processors."  *Which*
processors is a transport choice made at launch time through the
:mod:`repro.exec` backend registry:

* ``threads`` (default) — rank-threads inside this process with virtual
  clocks (:mod:`repro.exec.threads`);
* ``mp`` — real worker processes with shared-memory array transport
  (:mod:`repro.exec.mp`);
* ``mpiexec`` — an external mpi4py launch (:mod:`repro.exec.mpiexec`).

Shared-state hazard (``threads`` backend only): real MPI ranks get
private address spaces; rank-threads do **not**.  Module-level mutable
objects and mutated class attributes alias across ranks — run ``python
-m repro.analysis`` (the RA2xx findings in
:mod:`repro.analysis.scmd_safety`) to flag such state before launching,
and mark deliberate singletons ``# scmd: shared``.  The ``mp`` backend
gives every rank a private address space, which is why the runtime race
sanitizer only arms under ``threads``.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable, Sequence

from repro.errors import MPIError
from repro.mpi.perfmodel import MachineModel, LOCALHOST


class RankFailure(MPIError):
    """One or more ranks raised; carries per-rank tracebacks.

    Under the ``mp``/``mpiexec`` backends the original exception objects
    died with their worker processes; what crosses back is the pickled
    traceback *text* (a :class:`RemoteRankError` carrying
    ``remote_traceback``), rendered here exactly like a local one.
    """

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = failures
        lines = []
        for rank, exc in sorted(failures.items()):
            remote = getattr(exc, "remote_traceback", None)
            if remote:
                tb = remote
            else:
                tb = "".join(
                    traceback.format_exception(type(exc), exc,
                                               exc.__traceback__)
                )
            lines.append(f"--- rank {rank} ---\n{tb}")
        super().__init__(
            f"{len(failures)} rank(s) failed:\n" + "\n".join(lines)
        )


class RemoteRankError(MPIError):
    """An exception re-raised on behalf of a worker-process rank.

    ``remote_traceback`` holds the worker's formatted traceback;
    ``remote_type`` the original exception class name.
    """

    def __init__(self, remote_type: str, message: str,
                 remote_traceback: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback


def mpirun(
    nprocs: int,
    main: Callable[..., Any],
    args: Sequence[Any] = (),
    machine: MachineModel = LOCALHOST,
    return_clocks: bool = False,
    backend: str | None = None,
) -> list[Any]:
    """Run ``main(comm, *args)`` on ``nprocs`` ranks.

    Returns the per-rank return values (rank order).  If any rank raises,
    the world is aborted (unblocking its peers) and :class:`RankFailure`
    is raised with every original traceback.

    With ``return_clocks=True`` each entry becomes ``(value, virtual_time)``
    where ``virtual_time`` is the rank's final clock — the number the
    scaling benches report.

    ``backend`` selects the execution transport (``"threads"``, ``"mp"``,
    ``"mpiexec"``); ``None`` defers to the ``REPRO_BACKEND`` environment
    variable, then the ``threads`` default.  Same components, same SCMD
    code paths — only the transport changes.
    """
    from repro.exec import get_backend
    from repro.obs import trace as _trace

    if nprocs < 1:
        raise MPIError(f"nprocs must be >= 1, got {nprocs}")
    impl = get_backend(backend)
    impl.require_available()
    # One enclosing span per world launch: the joint that links a serve
    # job's scheduler/supervisor spans (via the thread's trace context)
    # to the rank spans the backend produces or ships home.
    with _trace.span("mpi.world", "launcher", nprocs=nprocs,
                     backend=impl.name):
        return impl.run(nprocs, main, args=args, machine=machine,
                        return_clocks=return_clocks)
