"""Collective front-ends shared by every execution backend's communicator.

The MPI-1 collective *semantics* — what a ``bcast``/``reduce``/
``scatter`` means, how contributions combine, what the virtual-time cost
of the rendezvous is — are transport-independent.  This mixin states
them once, against a minimal contract the transport must provide:

* ``self.rank`` / ``self.size`` — this member's position in the comm;
* ``self.machine`` — the :class:`~repro.mpi.perfmodel.MachineModel`
  charging communication costs;
* ``self._collective(contribution, finish, label)`` — the rendezvous
  primitive: every member contributes, ``finish(contribs) -> (result,
  comm_cost)`` runs exactly once somewhere, every member leaves at
  ``max(entry clocks) + comm_cost`` holding the shared result.

:class:`repro.mpi.comm.Comm` implements ``_collective`` as an
in-process condition-variable rendezvous (the ``threads`` backend);
:class:`repro.exec.mp.MPComm` implements it as a gather-to-local-root /
broadcast exchange over OS pipes (the ``mp`` backend).  Because
``finish`` runs once and its reduction iterates ranks in sorted order,
both transports produce bit-identical collective results.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MPIError


class CollectiveMixin:
    """Transport-independent MPI-1 collectives (see module docstring)."""

    # the transport provides: rank, size, machine, _collective(...)

    def barrier(self) -> None:
        """Synchronize all members."""
        machine, size = self.machine, self.size

        def finish(_contribs):
            return None, machine.barrier_time(size)

        self._collective(None, finish, label="barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; all members return it."""
        from repro.mpi.comm import _isolate

        machine, size = self.machine, self.size
        payload = _isolate(obj) if self.rank == root else None

        def finish(contribs):
            value, nbytes = contribs[root]
            return value, machine.bcast_time(size, nbytes)

        return self._collective(payload, finish, label="bcast")

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        """Reduce to ``root``; non-roots return ``None``."""
        result = self._reduce_common(obj, op, allreduce=False)
        return result if self.rank == root else None

    def allreduce(self, obj: Any, op=None) -> Any:
        """Reduce and distribute the result to every member."""
        return self._reduce_common(obj, op, allreduce=True)

    def _reduce_common(self, obj: Any, op, allreduce: bool) -> Any:
        from repro.mpi.comm import Op as _Op, _isolate

        op = _Op.SUM if op is None else op
        machine, size = self.machine, self.size
        payload = _isolate(obj)

        def finish(contribs):
            acc = None
            nbytes = 0
            for rank in sorted(contribs):
                value, nb = contribs[rank]
                nbytes = max(nbytes, nb)
                acc = value if acc is None else op.apply(acc, value)
            cost = (machine.allreduce_time(size, nbytes) if allreduce
                    else machine.reduce_time(size, nbytes))
            return acc, cost

        return self._collective(
            payload, finish, label="allreduce" if allreduce else "reduce")

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per member to ``root`` (rank-ordered list)."""
        from repro.mpi.comm import _isolate

        machine, size = self.machine, self.size
        payload = _isolate(obj)

        def finish(contribs):
            nbytes = max(nb for _, nb in contribs.values())
            values = [contribs[r][0] for r in range(size)]
            return values, machine.gather_time(size, nbytes)

        result = self._collective(payload, finish, label="gather")
        return result if self.rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object per member to everyone."""
        from repro.mpi.comm import _isolate

        machine, size = self.machine, self.size
        payload = _isolate(obj)

        def finish(contribs):
            nbytes = max(nb for _, nb in contribs.values())
            values = [contribs[r][0] for r in range(size)]
            return values, machine.allgather_time(size, nbytes)

        return self._collective(payload, finish, label="allgather")

    def scatter(self, objs: list[Any] | None, root: int = 0) -> Any:
        """Scatter ``objs[i]`` from root to rank ``i``."""
        from repro.mpi.comm import _isolate

        machine, size = self.machine, self.size
        payload = None
        if self.rank == root:
            if objs is None or len(objs) != size:
                raise MPIError(
                    f"scatter root needs a list of exactly {size} items")
            payload = [_isolate(o) for o in objs]

        def finish(contribs):
            items = contribs[root]
            nbytes = max(nb for _, nb in items) if items else 0
            values = {r: items[r][0] for r in range(size)}
            return values, machine.gather_time(size, nbytes)

        values = self._collective(payload, finish, label="scatter")
        return values[self.rank]

    def alltoall(self, objs: list[Any]) -> list[Any]:
        """Personalized all-to-all: rank i's ``objs[j]`` lands at rank j."""
        from repro.mpi.comm import _isolate

        machine, size = self.machine, self.size
        if len(objs) != size:
            raise MPIError(f"alltoall needs exactly {size} items")
        payload = [_isolate(o) for o in objs]

        def finish(contribs):
            nbytes = max(nb for items in contribs.values() for _, nb in items)
            table = {
                dest: [contribs[src][dest][0] for src in range(size)]
                for dest in range(size)
            }
            return table, machine.alltoall_time(size, nbytes)

        table = self._collective(payload, finish, label="alltoall")
        return table[self.rank]
