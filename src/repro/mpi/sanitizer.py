"""Runtime SCMD race sanitizer — a vector-clock detector, off by default.

:func:`repro.mpi.launcher.mpirun` runs P rank "processors" as threads in
one address space, so an unsynchronized write to a shared object is a
real data race the static RA3xx pass (:mod:`repro.analysis.races`) can
only approximate.  This module is the dynamic half: armed via
``REPRO_TSAN=1`` (or :func:`configure`), it attaches a vector clock to
every rank-thread, propagates the clocks through the message and
collective paths of :mod:`repro.mpi.comm`, and keeps shadow metadata on
instrumented shared objects.  Two writes to the same object with no
happens-before edge between them raise :class:`~repro.errors.DataRaceError`
with a precise report: both ranks, both stacks, the object's identity,
and each rank's last ordering collective.

Cost model (mirrors :mod:`repro.resilience.faults` and
:mod:`repro.obs.trace`): every hook on a hot path is guarded by the
module attribute ``on`` — the *disabled* cost is exactly one flag check,
asserted by ``benchmarks/bench_sanitizer_overhead.py``.

Happens-before edges
--------------------
* ``send -> recv``: the sender's clock snapshot rides the message
  (:class:`repro.mpi.comm._Message.vc`); the receiver joins it.
* collectives: every participant leaves a rendezvous
  (:class:`repro.mpi.comm._CollSlot`) with the elementwise max of all
  entry clocks — a full synchronization.
* program order within one rank-thread.

What gets shadowed
------------------
* Mutable **class attributes** of instantiated components:
  :meth:`repro.cca.framework.Framework.instantiate` calls
  :func:`instrument_class`, which swaps plain ``dict``/``list``/``set``
  class attributes for :class:`ShadowDict`/:class:`ShadowList`/
  :class:`ShadowSet` wrappers whose mutators record a write.
* **Patch arrays**: :meth:`repro.samr.dataobject.DataObject.array`
  records an access keyed by the backing ndarray — per-rank storage
  never conflicts, a DataObject leaked across ranks does.
* **Port calls through a shared component**: armed
  :meth:`repro.cca.services.Services.get_port` hands out a
  :class:`SanitizerPortProxy` that records each call against the
  provider port's identity; per-rank frameworks produce distinct ports,
  so only genuinely shared instances collide.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any

from repro.errors import DataRaceError
from repro.util import logging as rlog

#: Master switch.  Hot paths read this module attribute directly
#: (``if sanitizer.on:``) — the disabled cost is this one check.
on: bool = False

_state: "_RunState | None" = None
_lock = threading.Lock()


def _capture_stack(skip: int = 2, limit: int = 12) -> str:
    """The caller's stack, sanitizer/bookkeeping frames trimmed."""
    frames = traceback.extract_stack()[:-skip]
    own = os.path.basename(__file__)
    frames = [f for f in frames if os.path.basename(f.filename) != own]
    return "".join(traceback.format_list(frames[-limit:]))


class _RunState:
    """Vector clocks + shadow table for one armed SCMD world."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        #: clocks[r] is rank r's vector clock (length nprocs); component
        #: r is only ever incremented by rank r's own thread.  Own
        #: components start at 1 so a first-epoch write compares as
        #: unordered against every other rank's zero view of it.
        self.clocks = [[1 if i == r else 0 for i in range(nprocs)]
                       for r in range(nprocs)]
        #: human-readable label of each rank's last ordering operation.
        self.last_sync = ["<program start>"] * nprocs
        #: key -> {rank: (epoch, stack, last_sync at write time)}
        self.writes: dict[str, dict[int, tuple[int, str, str]]] = {}
        self.lock = threading.Lock()

    # -- clock algebra -----------------------------------------------------
    def tick(self, rank: int) -> None:
        self.clocks[rank][rank] += 1

    def snapshot(self, rank: int) -> list[int]:
        return list(self.clocks[rank])

    def join(self, rank: int, other: list[int]) -> None:
        vc = self.clocks[rank]
        for i, v in enumerate(other):
            if v > vc[i]:
                vc[i] = v

    def happens_before(self, writer: int, epoch: int, reader: int) -> bool:
        """Did (writer, epoch) complete before ``reader``'s current point?"""
        return self.clocks[reader][writer] >= epoch

    # -- the race check ----------------------------------------------------
    def record_write(self, key: str, rank: int) -> None:
        with self.lock:
            history = self.writes.setdefault(key, {})
            for other, (epoch, stack, sync) in history.items():
                if other == rank:
                    continue
                if self.happens_before(other, epoch, rank):
                    continue
                here = _capture_stack()
                raise DataRaceError(
                    f"data race on {key}:\n"
                    f"  rank {rank} writes with no happens-before edge "
                    f"to rank {other}'s write\n"
                    f"--- rank {rank} (current write, last sync: "
                    f"{self.last_sync[rank]}) ---\n{here}"
                    f"--- rank {other} (previous write, last sync at "
                    f"write: {sync}) ---\n{stack}")
            history[rank] = (self.clocks[rank][rank], _capture_stack(),
                             self.last_sync[rank])


# -------------------------------------------------------------- arm/disarm
def configure() -> None:
    """Arm the sanitizer (sets the module flag).  Shadow state is built
    per SCMD world by :func:`world_begin`."""
    global on
    with _lock:
        on = True


def deactivate() -> None:
    global on, _state
    with _lock:
        on = False
        _state = None


def active() -> bool:
    """Armed *and* inside an SCMD world (clocks exist)."""
    return on and _state is not None


def world_begin(nprocs: int) -> None:
    """Called by :func:`repro.mpi.launcher.mpirun` before rank-threads
    start; allocates this world's clocks and shadow table."""
    global _state
    with _lock:
        _state = _RunState(nprocs)


def world_end() -> None:
    global _state
    with _lock:
        _state = None


def _rank() -> int | None:
    """The calling thread's rank, when tagged and inside a world."""
    st = _state
    if st is None:
        return None
    rank = rlog.get_rank()
    if rank is None or not 0 <= rank < st.nprocs:
        return None
    return rank


# ----------------------------------------------------------- comm.py hooks
def on_send(global_rank: int) -> list[int] | None:
    """Pre-send (a *release*): snapshot the sender's clock for the
    message, then tick — accesses after the send sit in a fresh epoch no
    receiver has observed."""
    st = _state
    if st is None:
        return None
    vc = st.snapshot(global_rank)
    st.tick(global_rank)
    return vc


def on_recv(global_rank: int, vc: list[int] | None, source: int) -> None:
    """Post-recv (an *acquire*): join the sender's snapshot."""
    st = _state
    if st is None or vc is None:
        return
    st.join(global_rank, vc)
    st.last_sync[global_rank] = f"recv from rank {source}"


def coll_arrive(slot: Any, global_rank: int) -> None:
    """Collective entry: publish this rank's clock on the rendezvous slot.

    Must run under ``slot.cond`` in the same critical section that
    inserts the rank's contribution, so every clock is present before
    ``slot.done`` flips and departures begin.
    """
    st = _state
    if st is None:
        return
    vcs = slot.__dict__.setdefault("_tsan_vcs", {})
    vcs[global_rank] = st.snapshot(global_rank)
    # release: accesses after the collective sit in a fresh epoch
    st.tick(global_rank)


def coll_depart(slot: Any, global_rank: int, label: str) -> None:
    """Collective exit: join every participant's clock (full sync)."""
    st = _state
    if st is None:
        return
    for vc in slot.__dict__.get("_tsan_vcs", {}).values():
        st.join(global_rank, vc)
    st.last_sync[global_rank] = f"collective {label}"


# ---------------------------------------------------------- access records
def record_write(key: str, rank: int | None = None) -> None:
    """Record a shared-object write by the calling rank-thread; raises
    :class:`~repro.errors.DataRaceError` on an unordered conflict."""
    st = _state
    if st is None:
        return
    if rank is None:
        rank = _rank()
        if rank is None:
            return
    st.record_write(key, rank)


def last_sync_of(rank: int) -> str:
    st = _state
    return st.last_sync[rank] if st is not None else "<no world>"


# -------------------------------------------------------- shadow containers
class ShadowDict(dict):
    """dict whose mutators record a sanitized write."""

    __slots__ = ("_tsan_key",)

    def __init__(self, *args: Any, key: str = "<dict>", **kw: Any) -> None:
        super().__init__(*args, **kw)
        self._tsan_key = key

    def _w(self) -> None:
        if on:
            record_write(self._tsan_key)

    def __setitem__(self, k, v):
        self._w()
        super().__setitem__(k, v)

    def __delitem__(self, k):
        self._w()
        super().__delitem__(k)

    def update(self, *a, **kw):
        self._w()
        super().update(*a, **kw)

    def setdefault(self, k, default=None):
        self._w()
        return super().setdefault(k, default)

    def pop(self, *a):
        self._w()
        return super().pop(*a)

    def popitem(self):
        self._w()
        return super().popitem()

    def clear(self):
        self._w()
        super().clear()


class ShadowList(list):
    """list whose mutators record a sanitized write."""

    _tsan_key = "<list>"

    def __init__(self, *args: Any, key: str = "<list>") -> None:
        super().__init__(*args)
        self._tsan_key = key

    def _w(self) -> None:
        if on:
            record_write(self._tsan_key)

    def __setitem__(self, i, v):
        self._w()
        super().__setitem__(i, v)

    def __delitem__(self, i):
        self._w()
        super().__delitem__(i)

    def __iadd__(self, other):
        self._w()
        return super().__iadd__(other)

    def append(self, v):
        self._w()
        super().append(v)

    def extend(self, it):
        self._w()
        super().extend(it)

    def insert(self, i, v):
        self._w()
        super().insert(i, v)

    def pop(self, i=-1):
        self._w()
        return super().pop(i)

    def remove(self, v):
        self._w()
        super().remove(v)

    def clear(self):
        self._w()
        super().clear()

    def sort(self, **kw):
        self._w()
        super().sort(**kw)

    def reverse(self):
        self._w()
        super().reverse()


class ShadowSet(set):
    """set whose mutators record a sanitized write."""

    _tsan_key = "<set>"

    def __init__(self, *args: Any, key: str = "<set>") -> None:
        super().__init__(*args)
        self._tsan_key = key

    def _w(self) -> None:
        if on:
            record_write(self._tsan_key)

    def add(self, v):
        self._w()
        super().add(v)

    def update(self, *a):
        self._w()
        super().update(*a)

    def discard(self, v):
        self._w()
        super().discard(v)

    def remove(self, v):
        self._w()
        super().remove(v)

    def pop(self):
        self._w()
        return super().pop()

    def clear(self):
        self._w()
        super().clear()


_SHADOW_TYPES = {dict: ShadowDict, list: ShadowList, set: ShadowSet}


def instrument_class(cls: type) -> None:
    """Swap ``cls``'s plain mutable class attributes (exact type dict/
    list/set) for shadow containers keyed ``Class.attr`` — the runtime
    counterpart of the RA202 model.  Idempotent; called by
    :meth:`repro.cca.framework.Framework.instantiate` while armed."""
    for name, value in list(vars(cls).items()):
        shadow = _SHADOW_TYPES.get(type(value))
        if shadow is None:
            continue
        key = f"{cls.__module__}.{cls.__qualname__}.{name}"
        setattr(cls, name, shadow(value, key=key))


# ------------------------------------------------------------- port proxy
class SanitizerPortProxy:
    """Forwarding proxy recording calls against the provider port's
    identity — two rank-threads calling through the *same* port object
    means the component instance itself is shared across ranks."""

    def __init__(self, target: Any, label: str) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_label", label)

    def __getattr__(self, name: str) -> Any:
        target = object.__getattribute__(self, "_target")
        value = getattr(target, name)
        if not callable(value):
            return value
        label = object.__getattribute__(self, "_label")
        # the access key is fixed per (port, method): build it once here,
        # and cache the wrapper on the proxy so repeated lookups (one per
        # RHS evaluation on the Table 4 hot path) skip __getattr__
        key = f"port {label}.{name}() [instance id 0x{id(target):x}]"

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            if on:
                record_write(key)
            return value(*args, **kwargs)

        object.__setattr__(self, name, wrapped)
        return wrapped

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(object.__getattribute__(self, "_target"), name, value)


def _activate_from_env() -> None:
    """``REPRO_TSAN=1`` arms the sanitizer for the whole process."""
    flag = os.environ.get("REPRO_TSAN", "").strip().lower()
    if flag in {"1", "true", "yes", "on"}:
        configure()


_activate_from_env()
