"""In-process SCMD/MPI substrate with a virtual-time machine model.

The paper runs CCAFFEINE under ``mpirun``: P identical framework instances,
one per processor, communicating through MPI-1.  This package reproduces
that execution model inside a single Python process:

* :func:`repro.mpi.launcher.mpirun` starts P rank-threads, each running the
  same program (the SCMD multiplexer pattern).
* :class:`repro.mpi.comm.Comm` implements the MPI-1 subset the applications
  need — blocking/non-blocking point-to-point, the standard collectives,
  and communicator splitting (used to scope *cohort* communicators).
* Virtual time: every rank owns a clock advanced by (a) its own per-thread
  CPU time for compute sections and (b) a latency/bandwidth
  :class:`repro.mpi.perfmodel.MachineModel` for communication.  This lets a
  single core emulate the 48-node CPlant runs of the paper's §5.2 while the
  actual message traffic (ghost exchanges, reductions) is genuinely
  exercised.
* :mod:`repro.mpi.sanitizer` — a vector-clock race detector for the
  rank-threads' shared address space, armed via ``REPRO_TSAN=1``
  (flag-check-only cost when off).
"""

from repro.mpi import sanitizer
from repro.mpi.perfmodel import MachineModel, CPLANT, BEOWULF, LOCALHOST, ZERO_COST
from repro.mpi.comm import Comm, World, Op, Status, Request, ANY_SOURCE, ANY_TAG
from repro.mpi.launcher import mpirun

__all__ = [
    "MachineModel",
    "CPLANT",
    "BEOWULF",
    "LOCALHOST",
    "ZERO_COST",
    "Comm",
    "World",
    "Op",
    "Status",
    "Request",
    "ANY_SOURCE",
    "ANY_TAG",
    "mpirun",
    "sanitizer",
]
