"""Latency/bandwidth machine models for virtual-time accounting.

The substitution documented in DESIGN.md: we do not have the paper's CPlant
cluster (433 MHz Alpha EV56, 1 Gb/s Myrinet on 32-bit PCI) or the Beowulf
(1 GHz Pentium III, 100 bT fast Ethernet), so communication cost is charged
from an explicit alpha-beta model and compute cost from the rank-thread's
own CPU time (optionally rescaled to the target machine's speed).

The model is deliberately simple — postal latency ``alpha`` plus inverse
bandwidth ``beta = 1/bw`` per byte, with log2(P)-tree collectives — because
that is the regime the paper probes: fixed per-rank work with
surface-to-volume ghost traffic, and a strong-scaling knee where per-rank
work shrinks to the comm cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """An alpha-beta-gamma communication/compute cost model.

    Parameters
    ----------
    name:
        Human-readable preset label used in bench reports.
    latency:
        Per-message postal latency ``alpha`` in seconds.
    bandwidth:
        Point-to-point bandwidth in bytes/second (``beta = 1/bandwidth``).
    flop_scale:
        Multiplier applied to locally-measured CPU seconds to express them
        in target-machine seconds.  1.0 means "this machine".
    reduce_flop_cost:
        Seconds per reduced byte (the ``gamma`` term of reductions).
    """

    name: str
    latency: float
    bandwidth: float
    flop_scale: float = 1.0
    reduce_flop_cost: float = 0.0

    # -- point-to-point ----------------------------------------------------
    def p2p_time(self, nbytes: int) -> float:
        """Cost of moving ``nbytes`` point-to-point."""
        return self.latency + nbytes / self.bandwidth

    def send_overhead(self, nbytes: int) -> float:
        """Sender-side blocking cost (buffered-send model: the sender pays
        the injection cost, not the full flight time)."""
        return 0.5 * self.latency + nbytes / self.bandwidth

    # -- collectives (binomial-tree estimates) ------------------------------
    @staticmethod
    def _tree_depth(nranks: int) -> int:
        return max(1, math.ceil(math.log2(max(nranks, 2))))

    def barrier_time(self, nranks: int) -> float:
        if nranks <= 1:
            return 0.0
        return 2.0 * self.latency * self._tree_depth(nranks)

    def bcast_time(self, nranks: int, nbytes: int) -> float:
        if nranks <= 1:
            return 0.0
        return self._tree_depth(nranks) * self.p2p_time(nbytes)

    def reduce_time(self, nranks: int, nbytes: int) -> float:
        if nranks <= 1:
            return 0.0
        depth = self._tree_depth(nranks)
        return depth * (self.p2p_time(nbytes) + nbytes * self.reduce_flop_cost)

    def allreduce_time(self, nranks: int, nbytes: int) -> float:
        if nranks <= 1:
            return 0.0
        # reduce + broadcast
        return self.reduce_time(nranks, nbytes) + self.bcast_time(nranks, nbytes)

    def gather_time(self, nranks: int, nbytes_each: int) -> float:
        if nranks <= 1:
            return 0.0
        # root receives (P-1) contributions; linear in total payload with a
        # tree's worth of latencies.
        depth = self._tree_depth(nranks)
        return depth * self.latency + (nranks - 1) * nbytes_each / self.bandwidth

    def allgather_time(self, nranks: int, nbytes_each: int) -> float:
        if nranks <= 1:
            return 0.0
        # recursive-doubling estimate
        return self._tree_depth(nranks) * self.latency + (
            (nranks - 1) * nbytes_each / self.bandwidth
        )

    def alltoall_time(self, nranks: int, nbytes_each: int) -> float:
        if nranks <= 1:
            return 0.0
        return (nranks - 1) * self.p2p_time(nbytes_each)

    # -- compute ------------------------------------------------------------
    def compute_time(self, cpu_seconds: float) -> float:
        """Map locally measured CPU seconds onto the modeled machine."""
        return cpu_seconds * self.flop_scale


#: Sandia CPlant: 433 MHz Alpha EV56 nodes, Myrinet through 32-bit PCI.
#: Myrinet user-level latency was ~15-20 us; 32-bit 33 MHz PCI caps
#: practical bandwidth near 100 MB/s.
CPLANT = MachineModel(
    name="cplant",
    latency=20e-6,
    bandwidth=100e6,
    flop_scale=1.0,
    reduce_flop_cost=2e-9,
)

#: The Beowulf used for the flame run: 1 GHz PIII, 100 bT switched Ethernet
#: (TCP latency ~70 us, ~11 MB/s effective).
BEOWULF = MachineModel(
    name="beowulf",
    latency=70e-6,
    bandwidth=11e6,
    flop_scale=1.0,
    reduce_flop_cost=2e-9,
)

#: This machine: generous shared-memory-like transport.  Used by tests.
LOCALHOST = MachineModel(
    name="localhost",
    latency=1e-6,
    bandwidth=5e9,
    flop_scale=1.0,
)

#: Free communication — isolates pure algorithmic behaviour in unit tests.
ZERO_COST = MachineModel(name="zero-cost", latency=0.0, bandwidth=float("inf"))
