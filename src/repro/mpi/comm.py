"""An in-process MPI-1 subset with virtual-time accounting.

Execution model (mirrors CCAFFEINE's SCMD mode): ``P`` rank-threads run the
same program; each owns a :class:`Comm` handle onto a shared
:class:`World`.  Messages are isolated by value (NumPy arrays are copied,
other objects pickled), so ranks cannot share mutable state through a
send — the same discipline real MPI buffers enforce.

Virtual time
------------
Each *rank* (not each communicator) owns a clock, advanced by:

* compute — the rank-thread's own CPU time (``time.thread_time``) accrued
  since the previous MPI call, scaled by the machine model;
* communication — alpha-beta costs from :class:`~repro.mpi.perfmodel.MachineModel`.

A blocking receive completes at ``max(receiver clock, sender clock at send
+ flight time)``; collectives synchronize every participant at
``max(entry clocks) + tree cost``.  The result is a deterministic-shape
emulation of a distributed-memory machine good enough to reproduce the
paper's scaling studies (§5.2) on one core.

Threading rules: a ``Comm`` must only be used from the thread that owns its
rank.  All blocking waits poll with a short timeout so a crashed peer
aborts the whole world instead of deadlocking it.
"""

from __future__ import annotations

import enum
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import CommAbortedError, MPIError
from repro.mpi.collectives import CollectiveMixin
from repro.mpi.perfmodel import MachineModel, LOCALHOST
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.mpi import sanitizer as _tsan
from repro.resilience import faults as _faults

ANY_SOURCE = -1
ANY_TAG = -1

_POLL_INTERVAL = 0.05


class Op(enum.Enum):
    """Reduction operations (the MPI_Op subset the toolkit uses)."""

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    LOR = "lor"
    LAND = "land"

    def apply(self, a: Any, b: Any) -> Any:
        """Combine two contributions (NumPy arrays combine elementwise)."""
        if self is Op.SUM:
            return a + b
        if self is Op.PROD:
            return a * b
        if self is Op.MIN:
            return np.minimum(a, b) if _is_array(a) or _is_array(b) else min(a, b)
        if self is Op.MAX:
            return np.maximum(a, b) if _is_array(a) or _is_array(b) else max(a, b)
        if self is Op.LOR:
            return np.logical_or(a, b) if _is_array(a) or _is_array(b) else (a or b)
        if self is Op.LAND:
            return np.logical_and(a, b) if _is_array(a) or _is_array(b) else (a and b)
        raise MPIError(f"unsupported reduction {self}")  # pragma: no cover


def _is_array(x: Any) -> bool:
    return isinstance(x, np.ndarray)


def _isolate(obj: Any) -> tuple[Any, int]:
    """Copy ``obj`` by value and return ``(copy, nbytes)``.

    NumPy arrays take the fast path (buffer copy); everything else rides
    pickle, matching mpi4py's lowercase-method semantics.
    """
    if isinstance(obj, np.ndarray):
        copy = np.array(obj, copy=True)
        return copy, copy.nbytes
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.loads(blob), len(blob)


@dataclass
class Status:
    """Receive-side envelope information."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    nbytes: int
    avail_time: float
    serial: int
    #: sender's vector-clock snapshot while the sanitizer is armed
    vc: list[int] | None = None


class _RankState:
    """Per-rank virtual clock shared by all communicators of that rank."""

    def __init__(self) -> None:
        self.clock = 0.0
        self.mark = time.thread_time()

    def sync_compute(self, machine: MachineModel) -> None:
        now = time.thread_time()
        delta = now - self.mark
        self.mark = now
        if delta > 0.0:
            self.clock += machine.compute_time(delta)


class _CollSlot:
    """Rendezvous slot for one collective invocation."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.cond = threading.Condition()
        self.entries: dict[int, tuple[Any, float]] = {}
        self.result: Any = None
        self.exit_clock = 0.0
        self.done = False
        self.read = 0


class World:
    """Shared state behind all ranks of one SCMD run."""

    def __init__(self, size: int, machine: MachineModel = LOCALHOST) -> None:
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.machine = machine
        self.aborted = False
        self.abort_reason: str | None = None
        self._lock = threading.Lock()
        # mailboxes keyed by (comm_id, dest rank-in-comm)
        self._boxes: dict[tuple[int, int], list[_Message]] = {}
        self._box_conds: dict[tuple[int, int], threading.Condition] = {}
        self._slots: dict[tuple[int, int], _CollSlot] = {}
        self._comm_sizes: dict[int, int] = {0: size}
        self._next_comm_id = 1
        self._send_serial = 0
        self.rank_states = [_RankState() for _ in range(size)]

    # -- plumbing ------------------------------------------------------------
    def box(self, comm_id: int, dest: int) -> tuple[list, threading.Condition]:
        key = (comm_id, dest)
        with self._lock:
            if key not in self._boxes:
                self._boxes[key] = []
                self._box_conds[key] = threading.Condition()
            return self._boxes[key], self._box_conds[key]

    def slot(self, comm_id: int, seq: int) -> _CollSlot:
        key = (comm_id, seq)
        with self._lock:
            if key not in self._slots:
                self._slots[key] = _CollSlot(self._comm_sizes[comm_id])
            return self._slots[key]

    def drop_slot(self, comm_id: int, seq: int) -> None:
        with self._lock:
            self._slots.pop((comm_id, seq), None)

    def alloc_comm(self, size: int) -> int:
        with self._lock:
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._comm_sizes[cid] = size
            return cid

    def next_serial(self) -> int:
        with self._lock:
            self._send_serial += 1
            return self._send_serial

    def abort(self, reason: str) -> None:
        """Kill the world: every blocked rank raises CommAbortedError."""
        self.aborted = True
        self.abort_reason = reason
        with self._lock:
            conds = list(self._box_conds.values())
            slots = list(self._slots.values())
        for cond in conds:
            with cond:
                cond.notify_all()
        for slot in slots:
            with slot.cond:
                slot.cond.notify_all()

    def check_alive(self) -> None:
        if self.aborted:
            raise CommAbortedError(self.abort_reason or "world aborted")


class Request:
    """Handle for a non-blocking operation."""

    def __init__(self, wait_fn: Callable[[], Any], test_fn: Callable[[], bool]):
        self._wait_fn = wait_fn
        self._test_fn = test_fn
        self._done = False
        self._value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        if self._done:
            return True
        if self._test_fn():
            self.wait()
            return True
        return False


class Comm(CollectiveMixin):
    """One rank's view of a communicator (the ``threads`` backend).

    The default communicator (``comm_id == 0``) is the world communicator
    handed to the SCMD program by :func:`repro.mpi.launcher.mpirun`;
    :meth:`split` and :meth:`dup` derive scoped communicators (the paper's
    component *cohorts*).  The collective front-ends come from
    :class:`~repro.mpi.collectives.CollectiveMixin`; this class provides
    the in-process condition-variable rendezvous behind them.
    """

    def __init__(self, world: World, comm_id: int, rank: int, size: int,
                 global_rank: int) -> None:
        self.world = world
        self.id = comm_id
        self.rank = rank
        self.size = size
        self.global_rank = global_rank
        self._coll_seq = 0
        self._state = world.rank_states[global_rank]

    @property
    def machine(self) -> MachineModel:
        """The machine model charging this comm's communication costs."""
        return self.world.machine

    # -- virtual time ----------------------------------------------------------
    def _sync(self) -> None:
        self._state.sync_compute(self.world.machine)

    @property
    def clock(self) -> float:
        """The rank's current virtual time, compute charged up to now."""
        self._sync()
        return self._state.clock

    def advance(self, seconds: float) -> None:
        """Manually charge virtual seconds (perf-model-only workloads)."""
        if seconds < 0:
            raise MPIError("cannot advance the clock backwards")
        self._sync()
        self._state.clock += seconds

    def reset_clock(self) -> None:
        """Zero this rank's virtual clock (bench warm-up boundary)."""
        self._sync()
        self._state.clock = 0.0

    # -- point-to-point ----------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffered send."""
        self._post_send(obj, dest, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered, completes immediately)."""
        self._post_send(obj, dest, tag)
        return Request(lambda: None, lambda: True)

    def _post_send(self, obj: Any, dest: int, tag: int) -> None:
        self.world.check_alive()
        if not (0 <= dest < self.size):
            raise MPIError(f"send dest {dest} out of range for size {self.size}")
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        payload, nbytes = _isolate(obj)
        machine = self.world.machine
        avail = self._state.clock + machine.p2p_time(nbytes)
        # Fault injection (off by default; the disabled cost is this flag
        # check): a send may be silently dropped or its flight delayed.
        if _faults.on:
            fate = _faults.on_send(self.global_rank, dest, tag)
            if fate is _faults.DROP:
                self._state.clock += machine.send_overhead(nbytes)
                return
            avail += fate
        # While the sanitizer is armed, the sender's vector-clock snapshot
        # rides the message — the disabled cost is this flag check.
        vc = _tsan.on_send(self.global_rank) if _tsan.on else None
        msg = _Message(self.rank, tag, payload, nbytes, avail,
                       self.world.next_serial(), vc)
        self._state.clock += machine.send_overhead(nbytes)
        box, cond = self.world.box(self.id, dest)
        with cond:
            box.append(msg)
            cond.notify_all()
        if _obs.on:
            _obs.complete("mpi.send", "mpi", t0, dest=dest, tag=tag,
                          nbytes=nbytes, vt=self._state.clock)
            reg = _obs_registry()
            reg.counter("mpi.sends", rank=self.global_rank).inc()
            reg.counter("mpi.bytes_sent", rank=self.global_rank).inc(nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        """Blocking receive; wildcards ``ANY_SOURCE`` / ``ANY_TAG``."""
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        vt_in = self._state.clock
        box, cond = self.world.box(self.id, self.rank)
        with cond:
            while True:
                self.world.check_alive()
                msg = self._match(box, source, tag, remove=True)
                if msg is not None:
                    break
                cond.wait(timeout=_POLL_INTERVAL)
        self._state.clock = max(self._state.clock, msg.avail_time)
        if _tsan.on:
            _tsan.on_recv(self.global_rank, msg.vc, msg.source)
        if _obs.on:
            _obs.complete("mpi.recv", "mpi", t0, source=msg.source,
                          tag=msg.tag, nbytes=msg.nbytes,
                          vt=self._state.clock,
                          vt_wait=self._state.clock - vt_in)
            reg = _obs_registry()
            reg.counter("mpi.recvs", rank=self.global_rank).inc()
            reg.histogram("mpi.recv_wait_seconds",
                          rank=self.global_rank).observe(
                time.perf_counter() - t0)
        if status is not None:
            status.source = msg.source
            status.tag = msg.tag
            status.nbytes = msg.nbytes
        return msg.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns the payload."""
        return Request(
            lambda: self.recv(source, tag),
            lambda: self.iprobe(source, tag),
        )

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
                 status: Status | None = None) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self._post_send(sendobj, dest, sendtag)
        return self.recv(source, recvtag, status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; don't consume it."""
        box, cond = self.world.box(self.id, self.rank)
        with cond:
            while True:
                self.world.check_alive()
                msg = self._match(box, source, tag, remove=False)
                if msg is not None:
                    return Status(msg.source, msg.tag, msg.nbytes)
                cond.wait(timeout=_POLL_INTERVAL)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is waiting."""
        self.world.check_alive()
        box, cond = self.world.box(self.id, self.rank)
        with cond:
            return self._match(box, source, tag, remove=False) is not None

    @staticmethod
    def _match(box: list[_Message], source: int, tag: int,
               remove: bool) -> _Message | None:
        for i, msg in enumerate(box):
            if (source in (ANY_SOURCE, msg.source)
                    and tag in (ANY_TAG, msg.tag)):
                return box.pop(i) if remove else msg
        return None

    # -- collectives ----------------------------------------------------------
    def _collective(self, contribution: Any,
                    finish: Callable[[dict[int, Any]], tuple[Any, float]],
                    label: str = "collective") -> Any:
        """Generic rendezvous: every member contributes, the last arrival
        runs ``finish(contribs) -> (result, comm_cost)``, everyone leaves at
        ``max(entry clocks) + comm_cost`` with the shared result."""
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        self._coll_seq += 1
        slot = self.world.slot(self.id, self._coll_seq)
        with slot.cond:
            if self.rank in slot.entries:
                raise MPIError("collective re-entered by the same rank")
            slot.entries[self.rank] = (contribution, self._state.clock)
            # Same critical section as the contribution insert: every
            # rank's clock is on the slot before done flips.
            if _tsan.on:
                _tsan.coll_arrive(slot, self.global_rank)
            if len(slot.entries) == slot.size:
                contribs = {r: p for r, (p, _) in slot.entries.items()}
                entry_max = max(c for _, c in slot.entries.values())
                result, cost = finish(contribs)
                slot.result = result
                slot.exit_clock = entry_max + cost
                slot.done = True
                slot.cond.notify_all()
            else:
                while not slot.done:
                    self.world.check_alive()
                    slot.cond.wait(timeout=_POLL_INTERVAL)
            slot.read += 1
            if slot.read == slot.size:
                self.world.drop_slot(self.id, self._coll_seq)
        self._state.clock = max(self._state.clock, slot.exit_clock)
        if _tsan.on:
            _tsan.coll_depart(slot, self.global_rank, label)
        if _obs.on:
            _obs.complete(f"mpi.{label}", "mpi", t0, size=self.size,
                          vt=self._state.clock)
            _obs_registry().counter("mpi.collectives", op=label,
                                    rank=self.global_rank).inc()
        return slot.result

    # barrier/bcast/reduce/allreduce/gather/allgather/scatter/alltoall are
    # inherited from CollectiveMixin, driven by _collective above.

    # -- communicator management ---------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Comm":
        """Partition members by ``color``; order within a group by ``key``."""
        key = self.rank if key is None else key
        triples = self.allgather((color, key, self.rank, self.global_rank))
        mine = sorted(
            (k, r, g) for (c, k, r, g) in triples if c == color
        )
        new_size = len(mine)
        new_rank = [r for (_, r, _) in mine].index(self.rank)
        # Deterministic comm-id agreement: lowest member allocates, then the
        # id is distributed through a second allgather keyed by color.
        if new_rank == 0:
            cid = self.world.alloc_comm(new_size)
        else:
            cid = -1
        ids = self.allgather((color, cid))
        new_id = max(i for (c, i) in ids if c == color)
        return Comm(self.world, new_id, new_rank, new_size, self.global_rank)

    def dup(self) -> "Comm":
        """Duplicate this communicator (fresh message/collective space)."""
        return self.split(color=0, key=self.rank)

    def abort(self, reason: str = "user abort") -> None:
        """Abort the whole world."""
        self.world.abort(f"rank {self.global_rank}: {reason}")
        raise CommAbortedError(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Comm(id={self.id}, rank={self.rank}/{self.size}, "
                f"global={self.global_rank})")
