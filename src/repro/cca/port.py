"""The Port base class.

"Components also implement other data-less abstract classes, called Ports,
to allow access to their standard functionalities."  (paper §2)

A port *type* is identified by a string (conventionally the class name);
:meth:`Port.port_type` lets connection-time type checking work on any
subclass without extra registration.
"""

from __future__ import annotations


class Port:
    """Abstract base for all provides/uses interfaces."""

    @classmethod
    def port_type(cls) -> str:
        """The type string used for connection compatibility checks.

        The nearest ancestor immediately below :class:`Port` defines the
        type, so refinements of a standard port remain pluggable where the
        standard port is expected.
        """
        lineage = [c for c in cls.__mro__
                   if issubclass(c, Port) and c is not Port]
        return lineage[-1].__name__ if lineage else "Port"
