"""The Component base class.

"All CCAFFEINE components are derived from a data-less abstract class with
one deferred method called setServices(Services *q)."  (paper §2)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cca.services import Services


class Component(ABC):
    """Abstract base every component derives from.

    Subclasses implement :meth:`set_services`, registering their provides
    ports and declaring their uses ports against the passed
    :class:`~repro.cca.services.Services` handle.  Construction arguments
    are discouraged — configuration flows through parameter ports, keeping
    components instantiable from assembly scripts.
    """

    @abstractmethod
    def set_services(self, services: "Services") -> None:
        """Register ports; called by the framework at instantiation."""

    def release_services(self, services: "Services") -> None:
        """Hook invoked when the component is destroyed (optional)."""
