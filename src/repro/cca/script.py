"""The rc-script interface: CCAFFEINE-style assembly files.

"A CCAFFEINE code can be assembled and run through a script or a Graphical
User Interface."  (paper §2)  Supported directives (one per line, ``#``
comments):

    repository get-global <ClassName>   # assert the class is available
    instantiate <ClassName> <instance>
    create <ClassName> <instance>       # alias
    connect <user> <usesPort> <provider> <providesPort>
    parameter <instance> <key> <value...>
    go <instance> [<goPort>]

Values given to ``parameter`` are parsed as int, then float, then left as
strings (multi-token values stay a single space-joined string).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cca.framework import Framework
from repro.errors import ScriptError


@dataclass(frozen=True)
class Directive:
    """One parsed script line."""

    verb: str
    args: tuple[str, ...]
    line_no: int


def _parse_value(tokens: list[str]) -> Any:
    text = " ".join(tokens)
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


def parse_script_tolerant(
        text: str) -> tuple[list[Directive], list[tuple[int, str]]]:
    """Parse an assembly script, accumulating *every* syntax error.

    Returns ``(directives, errors)`` where ``errors`` is a list of
    ``(line_no, message)`` pairs — the static analyzer keeps going past
    bad lines so one run reports the whole picture.
    """
    out: list[Directive] = []
    errors: list[tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line or line.startswith("!"):
            continue
        tokens = line.split()
        verb = tokens[0].lower()
        args = tokens[1:]
        if verb == "repository":
            if len(args) != 2 or args[0] != "get-global":
                errors.append((line_no,
                               f"line {line_no}: expected 'repository "
                               f"get-global <Class>', got {raw!r}"))
                continue
        elif verb in ("instantiate", "create"):
            if len(args) != 2:
                errors.append((line_no,
                               f"line {line_no}: expected '{verb} <Class> "
                               f"<instance>', got {raw!r}"))
                continue
            verb = "instantiate"
        elif verb == "connect":
            if len(args) != 4:
                errors.append((line_no,
                               f"line {line_no}: expected 'connect <user> "
                               f"<usesPort> <provider> <providesPort>', "
                               f"got {raw!r}"))
                continue
        elif verb == "parameter":
            if len(args) < 3:
                errors.append((line_no,
                               f"line {line_no}: expected 'parameter "
                               f"<instance> <key> <value>', got {raw!r}"))
                continue
        elif verb == "go":
            if len(args) not in (1, 2):
                errors.append((line_no,
                               f"line {line_no}: expected 'go <instance> "
                               f"[<port>]', got {raw!r}"))
                continue
        else:
            errors.append((line_no,
                           f"line {line_no}: unknown directive {verb!r}"))
            continue
        out.append(Directive(verb, tuple(args), line_no))
    return out, errors


def parse_script(text: str) -> list[Directive]:
    """Parse an assembly script into directives (syntax check only).

    All bad lines are reported in one :class:`ScriptError` (one message
    per line, newline-joined) so humans and the analyzer see the full
    picture in a single pass.
    """
    out, errors = parse_script_tolerant(text)
    if errors:
        raise ScriptError("\n".join(msg for _line_no, msg in errors))
    return out


def run_script(framework: Framework, text: str) -> list[Any]:
    """Execute an assembly script against ``framework``.

    Returns the values produced by ``go`` directives, in order.
    """
    results: list[Any] = []
    for d in parse_script(text):
        try:
            if d.verb == "repository":
                framework.registry.get(d.args[1])  # existence check
            elif d.verb == "instantiate":
                framework.instantiate(d.args[0], d.args[1])
            elif d.verb == "connect":
                framework.connect(*d.args)
            elif d.verb == "parameter":
                framework.set_parameter(
                    d.args[0], d.args[1], _parse_value(list(d.args[2:])))
            elif d.verb == "go":
                port = d.args[1] if len(d.args) == 2 else "go"
                results.append(framework.go(d.args[0], port))
        except ScriptError:
            raise
        except Exception as exc:
            raise ScriptError(
                f"line {d.line_no}: {d.verb} {' '.join(d.args)} failed: "
                f"{exc}") from exc
    return results
