"""TAU-style per-component performance instrumentation.

The paper's future work item (4): "By using TAU, we intend to characterize
the performance characteristics of individual components and their
assemblies."  This module is that capability for our framework: it wraps
every provides-port of an assembly in a transparent proxy that records
per-method call counts and cumulative CPU self-time, attributed to the
providing component — so a run produces the per-component cost breakdown
TAU would.

Since ISSUE 2 the bookkeeping lives in the :mod:`repro.obs` subsystem:
each :class:`Profiler` owns a :class:`repro.obs.metrics.MetricsRegistry`
and the proxies (shared with :mod:`repro.cca.portproxy`) feed two
metrics, ``cca.port.calls`` and ``cca.port.self_cpu_seconds``, labelled
by port method.  The :attr:`Profiler.stats` dict and text
:meth:`Profiler.report` are *views* over that registry, and when
:mod:`repro.obs.trace` is enabled the same proxies also emit per-call
spans — one instrumentation point, three outputs.

Usage::

    framework = Framework()
    build_reaction_diffusion(framework, ...)
    profiler = instrument(framework)
    framework.go("Driver")
    print(profiler.report())

Instrumentation must happen *after* assembly (wrapping replaces the port
objects that future ``connect`` calls would hand out) and costs one extra
call frame per port method — which is itself a nice demonstration that
layered indirection stays cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cca.framework import Framework
from repro.cca.portproxy import TracingPortProxy
from repro.obs.metrics import MetricsRegistry

#: Registry metric names the profiler records under (label: ``method``).
CALLS_METRIC = "cca.port.calls"
SELF_CPU_METRIC = "cca.port.self_cpu_seconds"


@dataclass
class MethodStats:
    """Aggregated cost of one port method (a registry view)."""

    calls: int = 0
    cpu_seconds: float = 0.0


class Profiler:
    """Accumulates per-port-method statistics in a metrics registry.

    Also the *recorder* the port proxies call back into: ``begin``/``end``
    bracket every proxied method call, with an explicit nesting stack so
    recorded CPU times are self-times (inner instrumented calls are
    subtracted from their caller).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # [key, accumulated child cpu] per live call, innermost last
        self._stack: list[list] = []

    # -- recorder protocol (called by TracingPortProxy) --------------------
    def begin(self, key: str) -> float:
        self._stack.append([key, 0.0])
        return time.thread_time()

    def end(self, key: str, token: float) -> None:
        elapsed = time.thread_time() - token
        _key, child_cpu = self._stack.pop()
        self.registry.counter(CALLS_METRIC, method=key).inc()
        self.registry.counter(SELF_CPU_METRIC, method=key).inc(
            elapsed - child_cpu)
        # charge the full elapsed time to the caller so it can subtract
        if self._stack:
            self._stack[-1][1] += elapsed

    # -- views over the registry -------------------------------------------
    @property
    def stats(self) -> dict[str, MethodStats]:
        """Per-method stats derived from the metrics registry."""
        out: dict[str, MethodStats] = {}
        for labels, metric in self.registry.find(CALLS_METRIC):
            out[labels["method"]] = MethodStats(calls=int(metric.value))
        for labels, metric in self.registry.find(SELF_CPU_METRIC):
            out.setdefault(labels["method"], MethodStats()).cpu_seconds = \
                metric.value
        return out

    def by_component(self) -> dict[str, tuple[int, float]]:
        """Aggregate to (calls, self CPU seconds) per component instance."""
        out: dict[str, list[float]] = {}
        for key, s in self.stats.items():
            comp = key.split(".", 1)[0]
            acc = out.setdefault(comp, [0, 0.0])
            acc[0] += s.calls
            acc[1] += s.cpu_seconds
        return {k: (int(c), t) for k, (c, t) in out.items()}

    def report(self, top: int | None = None) -> str:
        """A TAU-profile-like text report, most expensive first."""
        rows = sorted(self.stats.items(),
                      key=lambda kv: kv[1].cpu_seconds, reverse=True)
        if top is not None:
            rows = rows[:top]
        lines = [f"{'port method':<48} {'calls':>8} {'self CPU [s]':>14}"]
        lines.append("-" * 72)
        for key, s in rows:
            lines.append(f"{key:<48} {s.calls:>8} {s.cpu_seconds:>14.6f}")
        lines.append("-" * 72)
        lines.append("per component:")
        for comp, (calls, secs) in sorted(
                self.by_component().items(),
                key=lambda kv: kv[1][1], reverse=True):
            lines.append(f"  {comp:<30} {calls:>8} calls {secs:>12.6f} s")
        return "\n".join(lines)


def leaked_ports(framework: Framework) -> dict[str, dict[str, int]]:
    """Per-instance nonzero get/release balances across the assembly.

    The runtime counterpart of the static RA103 lint: every
    ``get_port`` increments a checkout balance on the instance's
    :class:`~repro.cca.services.Services`, every ``release_port``
    decrements it, and whatever is left after a run was leaked.
    """
    out: dict[str, dict[str, int]] = {}
    for name in framework.instance_names():
        balances = framework.services_of(name).port_balances()
        if balances:
            out[name] = balances
    return out


def instrument(framework: Framework,
               profiler: Profiler | None = None) -> Profiler:
    """Wrap every provides-port of every instantiated component and
    re-wire existing connections through the proxies.

    Returns the :class:`Profiler` accumulating the statistics (in its
    :attr:`~Profiler.registry`).
    """
    profiler = profiler if profiler is not None else Profiler()
    for name in framework.instance_names():
        services = framework.services_of(name)
        for port_name, (port, ptype) in list(services.provides.items()):
            if isinstance(port, TracingPortProxy):
                continue  # already instrumented
            label = f"{name}:{port_name}"
            proxy = TracingPortProxy(port, label, recorder=profiler)
            services.provides[port_name] = (proxy, ptype)
    # existing connections still hold raw port objects: swap them
    for (user, uses_port), (provider, provides_port) in \
            framework.connections().items():
        proxy, _ = framework.services_of(provider).provides[provides_port]
        framework.services_of(user)._attach(uses_port, proxy)
    return profiler
