"""TAU-style per-component performance instrumentation.

The paper's future work item (4): "By using TAU, we intend to characterize
the performance characteristics of individual components and their
assemblies."  This module is that capability for our framework: it wraps
every provides-port of an assembly in a transparent proxy that records
per-method call counts and cumulative CPU time, attributed to the
providing component — so a run produces the per-component cost breakdown
TAU would.

Usage::

    framework = Framework()
    build_reaction_diffusion(framework, ...)
    profiler = instrument(framework)
    framework.go("Driver")
    print(profiler.report())

Instrumentation must happen *after* assembly (wrapping replaces the port
objects that future ``connect`` calls would hand out) and costs one extra
call frame per port method — which is itself a nice demonstration that
layered indirection stays cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.cca.framework import Framework
from repro.cca.port import Port
from repro.errors import CCAError


@dataclass
class MethodStats:
    """Aggregated cost of one port method."""

    calls: int = 0
    cpu_seconds: float = 0.0
    #: nesting guard: self-time excludes inner instrumented calls
    _depth: int = 0


class _PortProxy(Port):
    """Transparent recording wrapper around a provides-port object."""

    def __init__(self, target: Port, label: str,
                 profiler: "Profiler") -> None:
        # bypass our own __setattr__/__getattr__ plumbing
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_label", label)
        object.__setattr__(self, "_profiler", profiler)

    @classmethod
    def port_type(cls):  # pragma: no cover - proxies are created wired
        raise CCAError("proxy has no static port type")

    def __getattr__(self, name: str) -> Any:
        value = getattr(object.__getattribute__(self, "_target"), name)
        if not callable(value):
            return value
        profiler: Profiler = object.__getattribute__(self, "_profiler")
        label: str = object.__getattribute__(self, "_label")

        def wrapped(*args, **kwargs):
            key = f"{label}.{name}"
            stats = profiler.stats.setdefault(key, MethodStats())
            stats.calls += 1
            profiler._stack.append(key)
            start = time.thread_time()
            try:
                return value(*args, **kwargs)
            finally:
                elapsed = time.thread_time() - start
                profiler._stack.pop()
                stats.cpu_seconds += elapsed
                # subtract from the caller so times are self-times
                if profiler._stack:
                    outer = profiler.stats[profiler._stack[-1]]
                    outer.cpu_seconds -= elapsed

        return wrapped

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(object.__getattribute__(self, "_target"), name, value)


class Profiler:
    """Holds the per-port-method statistics of one instrumented run."""

    def __init__(self) -> None:
        self.stats: dict[str, MethodStats] = {}
        self._stack: list[str] = []

    def by_component(self) -> dict[str, tuple[int, float]]:
        """Aggregate to (calls, self CPU seconds) per component instance."""
        out: dict[str, list[float]] = {}
        for key, s in self.stats.items():
            comp = key.split(".", 1)[0]
            acc = out.setdefault(comp, [0, 0.0])
            acc[0] += s.calls
            acc[1] += s.cpu_seconds
        return {k: (int(c), t) for k, (c, t) in out.items()}

    def report(self, top: int | None = None) -> str:
        """A TAU-profile-like text report, most expensive first."""
        rows = sorted(self.stats.items(),
                      key=lambda kv: kv[1].cpu_seconds, reverse=True)
        if top is not None:
            rows = rows[:top]
        lines = [f"{'port method':<48} {'calls':>8} {'self CPU [s]':>14}"]
        lines.append("-" * 72)
        for key, s in rows:
            lines.append(f"{key:<48} {s.calls:>8} {s.cpu_seconds:>14.6f}")
        lines.append("-" * 72)
        lines.append("per component:")
        for comp, (calls, secs) in sorted(
                self.by_component().items(),
                key=lambda kv: kv[1][1], reverse=True):
            lines.append(f"  {comp:<30} {calls:>8} calls {secs:>12.6f} s")
        return "\n".join(lines)


def instrument(framework: Framework) -> Profiler:
    """Wrap every provides-port of every instantiated component and
    re-wire existing connections through the proxies.

    Returns the :class:`Profiler` accumulating the statistics.
    """
    profiler = Profiler()
    proxies: dict[int, _PortProxy] = {}
    for name in framework.instance_names():
        services = framework.services_of(name)
        for port_name, (port, ptype) in list(services.provides.items()):
            label = f"{name}:{port_name}"
            proxy = _PortProxy(port, label, profiler)
            proxies[id(port)] = proxy
            services.provides[port_name] = (proxy, ptype)
    # existing connections still hold raw port objects: swap them
    for (user, uses_port), (provider, provides_port) in \
            framework.connections().items():
        proxy, _ = framework.services_of(provider).provides[provides_port]
        framework.services_of(user)._attach(uses_port, proxy)
    return profiler
