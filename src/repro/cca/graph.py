"""Assembly graphs: the programmatic analog of the GUI "arena".

The paper's Figs. 1, 2 and 5 are screenshots of component boxes with
provides-ports on the left, uses-ports on the right, and lines between
them.  This module renders a live framework as a :mod:`networkx` digraph
(components as nodes, connections as edges) and as Graphviz DOT text, so
the same pictures can be regenerated from any assembly.
"""

from __future__ import annotations

import networkx as nx

from repro.cca.framework import Framework


def assembly_graph(framework: Framework) -> "nx.MultiDiGraph":
    """Directed multigraph: ``user -> provider`` per port connection.

    Node attributes: ``provides`` / ``uses`` (name -> type maps).
    Edge attributes: ``uses_port`` / ``provides_port``.
    """
    g = nx.MultiDiGraph()
    for name in framework.instance_names():
        services = framework.services_of(name)
        g.add_node(
            name,
            provides={p: t for p, (_o, t) in services.provides.items()},
            uses=dict(services.uses),
        )
    for (user, uses_port), (provider, provides_port) in \
            framework.connections().items():
        g.add_edge(user, provider, uses_port=uses_port,
                   provides_port=provides_port)
    return g


def to_dot(framework: Framework, title: str = "assembly") -> str:
    """Graphviz DOT text of the assembly (Fig 1/2/5 style)."""
    g = assembly_graph(framework)
    lines = [f'digraph "{title}" {{', "  rankdir=LR;",
             "  node [shape=box, style=rounded];"]
    for node in sorted(g.nodes):
        lines.append(f'  "{node}";')
    for user, provider, data in g.edges(data=True):
        label = f"{data['uses_port']}→{data['provides_port']}"
        lines.append(f'  "{user}" -> "{provider}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def wiring_summary(framework: Framework) -> dict[str, int]:
    """Quick census used by tests/benches: component, connection and
    dangling-uses-port counts."""
    g = assembly_graph(framework)
    dangling = 0
    for node, data in g.nodes(data=True):
        connected = {d["uses_port"] for _u, _p, d in
                     g.out_edges(node, data=True)}
        dangling += len(set(data["uses"]) - connected)
    return {
        "components": g.number_of_nodes(),
        "connections": g.number_of_edges(),
        "dangling_uses": dangling,
    }
