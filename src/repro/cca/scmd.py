"""SCMD execution: P identical frameworks, one per rank.

"A CCAFFEINE job is generally started using mpirun ... P instances of the
framework, run with the same script, cause P identically configured
frameworks to load and exist on as many processors."  (paper §2)

:func:`run_scmd` is that multiplexer: the same script (or setup callable)
is replayed on every rank-thread; each framework borrows its rank's world
communicator, and component cohorts coordinate through it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, Type

from repro.cca.component import Component
from repro.cca.framework import ComponentRegistry, Framework
from repro.cca.script import run_script
from repro.mpi.comm import Comm
from repro.mpi.launcher import mpirun
from repro.mpi.perfmodel import MachineModel, LOCALHOST


def run_scmd(
    nprocs: int,
    script: str | Callable[[Framework], Any],
    classes: Iterable[Type[Component]] = (),
    machine: MachineModel = LOCALHOST,
    return_clocks: bool = False,
    backend: str | None = None,
) -> list[Any]:
    """Run an assembly on ``nprocs`` ranks.

    Parameters
    ----------
    script:
        Either an rc-script string (each rank executes it with
        :func:`repro.cca.script.run_script`) or a callable
        ``f(framework) -> result`` for programmatic assembly.
    classes:
        Component classes loaded into every rank's repository.
    machine:
        Virtual-time machine model for the communicator.
    return_clocks:
        When True each per-rank result is ``(value, virtual_seconds)``.
    backend:
        Execution backend name (see :mod:`repro.exec`); ``None`` defers
        to ``REPRO_BACKEND``, then the ``threads`` default.
    """
    class_list = list(classes)

    def main(comm: Comm) -> Any:
        registry = ComponentRegistry()
        registry.register_many(class_list)
        framework = Framework(registry, comm=comm)
        if callable(script):
            return script(framework)
        results = run_script(framework, script)
        if not results:
            return None
        return results[0] if len(results) == 1 else results

    return mpirun(nprocs, main, machine=machine,
                  return_clocks=return_clocks, backend=backend)
