"""BuilderService: programmatic assembly with a fluent feel.

The GUI in the paper's Fig. 1 drags components into an "arena" and draws
lines between ports; :class:`BuilderService` is the programmatic
equivalent (CCAFFEINE exposes the same thing as the BuilderService port).
"""

from __future__ import annotations

from typing import Any, Type

from repro.cca.component import Component
from repro.cca.framework import Framework


class BuilderService:
    """Thin convenience layer over a :class:`Framework`."""

    def __init__(self, framework: Framework) -> None:
        self.framework = framework

    def create(self, cls: Type[Component] | str,
               instance_name: str) -> "BuilderService":
        """Instantiate ``cls`` (class or registered name)."""
        if isinstance(cls, type):
            if cls.__name__ not in self.framework.registry:
                self.framework.registry.register(cls)
            class_name = cls.__name__
        else:
            class_name = cls
        self.framework.instantiate(class_name, instance_name)
        return self

    def connect(self, user: str, uses_port: str, provider: str,
                provides_port: str) -> "BuilderService":
        self.framework.connect(user, uses_port, provider, provides_port)
        return self

    def parameter(self, instance: str, key: str, value: Any
                  ) -> "BuilderService":
        self.framework.set_parameter(instance, key, value)
        return self

    def go(self, instance: str, port: str = "go") -> Any:
        return self.framework.go(instance, port)
