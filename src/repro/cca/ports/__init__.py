"""Standard port definitions.

The paper (§4) derives the needed interface families from the subsystem
decomposition: (a) mesh manipulation (``MeshPort``), (b) Data Object
manipulation, (c) synchronized action on arrays of Data Objects
(integrators), (d) patch-array ports (RHS evaluation), (e) vector ports
(implicit integration), (f) key-value ports (databases) — plus the
framework-standard GoPort.
"""

from repro.cca.ports.go import GoPort
from repro.cca.ports.parameter import ParameterPort
from repro.cca.ports.mesh import MeshPort, RegridPort
from repro.cca.ports.dataobject import DataObjectPort
from repro.cca.ports.integrator import IntegratorPort, ODESolverPort
from repro.cca.ports.rhs import PatchRHSPort, VectorRHSPort, SpectralBoundPort
from repro.cca.ports.bc import BoundaryConditionPort
from repro.cca.ports.ic import InitialConditionPort, VectorICPort
from repro.cca.ports.interpolation import ProlongRestrictPort
from repro.cca.ports.diagnostics import StatisticsPort
from repro.cca.ports.flux import FluxPort, StatesPort
from repro.cca.ports.physics import (
    ChemistryPort,
    TransportPort,
    DPDtPort,
    CharacteristicsPort,
)

__all__ = [
    "GoPort",
    "ParameterPort",
    "MeshPort",
    "RegridPort",
    "DataObjectPort",
    "IntegratorPort",
    "ODESolverPort",
    "PatchRHSPort",
    "VectorRHSPort",
    "SpectralBoundPort",
    "BoundaryConditionPort",
    "InitialConditionPort",
    "VectorICPort",
    "ProlongRestrictPort",
    "StatisticsPort",
    "FluxPort",
    "StatesPort",
    "ChemistryPort",
    "TransportPort",
    "DPDtPort",
    "CharacteristicsPort",
]
