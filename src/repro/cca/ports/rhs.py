"""Right-hand-side ports.

Family (d): "Ports that accept an array from a patch" — RHS evaluation is
patch-at-a-time.  Family (e): vector RHS for implicit integration.  Plus
the eigenvalue-estimation port the explicit subsystem uses for dynamic
time-step sizing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.patch import Patch


class PatchRHSPort(Port):
    """Evaluate and assemble the RHS "one patch at a time" (family (d))."""

    def evaluate(self, t: float, patch: "Patch",
                 ghosted: np.ndarray) -> np.ndarray:
        """dU/dt over the patch interior, given the ghosted field array."""
        raise NotImplementedError


class VectorRHSPort(Port):
    """Pointwise source terms for the implicit subsystem (family (e)) —
    what ``ThermoChemistry`` provides to ``CvodeComponent``."""

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def n_state(self) -> int:
        raise NotImplementedError


class SpectralBoundPort(Port):
    """Largest-eigenvalue estimate for the explicit integrator
    (``MaxDiffCoeffEvaluator`` provides this)."""

    def spectral_bound(self, t: float) -> float:
        raise NotImplementedError
