"""DataObjectPort: field declaration and patch-data access (family (b)).

"An abstract interface for the Data Object allowing manipulation of
patches and the data defined on them."  (paper §4)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.dataobject import DataObject
    from repro.samr.patch import Patch


class DataObjectPort(Port):
    """Create and manipulate Data Objects on the mesh."""

    def declare(self, name: str, nvar: int,
                var_names: list[str] | None = None) -> "DataObject":
        """Declare a field collection over the hierarchy."""
        raise NotImplementedError

    def data(self, name: str) -> "DataObject":
        raise NotImplementedError

    def names(self) -> list[str]:
        """All declared Data Object names."""
        raise NotImplementedError

    def array(self, name: str, patch: "Patch") -> np.ndarray:
        """Ghosted per-patch array (nvar, nx+2g, ny+2g)."""
        raise NotImplementedError

    def exchange_ghosts(self, name: str, level: int) -> None:
        """Fill ghost regions (copy + message passing + interpolation)."""
        raise NotImplementedError

    def restrict(self, name: str, fine_level: int) -> None:
        """Average a fine level onto the coarser one."""
        raise NotImplementedError
