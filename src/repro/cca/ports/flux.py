"""Flux and interface-state ports for the hydrodynamics assembly.

"InviscidFlux component uses a States component to set up the Riemann
problem at each cell interface which is then passed to the GodunovFlux
component for the Riemann solution."  (paper §4.3)  ``FluxPort`` is the
interface both ``GodunovFlux`` and ``EFMFlux`` provide — swapping them
requires no recompilation, the paper's headline reuse demonstration.
"""

from __future__ import annotations

import numpy as np

from repro.cca.port import Port

#: Primitive tuple layout: (rho, u_normal, u_tangential, p, zeta).
PrimTuple = tuple


class StatesPort(Port):
    """MUSCL interface-state construction (the ``States`` component)."""

    def interface_states(self, prim: np.ndarray, axis: int
                         ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class FluxPort(Port):
    """Numerical flux from left/right interface states."""

    def flux(self, prim_l: PrimTuple, prim_r: PrimTuple,
             gamma: float) -> np.ndarray:
        raise NotImplementedError
