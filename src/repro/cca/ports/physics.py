"""Physics-facing ports: chemistry, transport, pressure closure,
characteristic speeds.

These are the "domain-specific ports whose design is left to the user
community" (paper §2) — the interfaces our component set agreed on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.chemistry.mechanism import Mechanism


class ChemistryPort(Port):
    """Access to the mechanism object and vectorized source terms."""

    def mechanism(self) -> "Mechanism":
        raise NotImplementedError

    def pressure(self) -> float:
        """The background thermodynamic pressure [Pa]."""
        raise NotImplementedError

    def source_terms(self, T: np.ndarray, Y: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(dT/dt, dY/dt) chemical sources at constant pressure,
        vectorized over trailing cell axes."""
        raise NotImplementedError


class TransportPort(Port):
    """Mixture-averaged transport properties (the DRFM interface)."""

    def diffusion_coefficients(self, T: np.ndarray,
                               P: np.ndarray | float) -> np.ndarray:
        raise NotImplementedError

    def conductivity(self, T: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def max_diffusion_coefficient(self, T: np.ndarray,
                                  P: np.ndarray | float,
                                  Y: np.ndarray) -> float:
        raise NotImplementedError


class DPDtPort(Port):
    """The pressure-evolution closure of the 0D rigid-vessel problem (the
    ``dPdt`` component's interface).  Stateless: the vessel density comes
    in with each call."""

    def dpdt(self, rho: float, T: float, Y: np.ndarray, dT: float,
             dY: np.ndarray) -> float:
        raise NotImplementedError


class CharacteristicsPort(Port):
    """Characteristic wave speeds for CFL control (the
    ``CharacteristicQuantities`` component's interface)."""

    def max_wavespeed(self, dobj_name: str) -> float:
        """Global max(|u|+a, |v|+a) over the hierarchy."""
        raise NotImplementedError
