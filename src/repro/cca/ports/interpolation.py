"""ProlongRestrictPort: spatial interpolation operators.

"Interpolation components: these implement various spatial and temporal
interpolation operators."  (paper §4, subsystem 6); the shock-interface
assembly's ``ProlongRestrict`` component "performs the cell-centered
interpolations".
"""

from __future__ import annotations

import numpy as np

from repro.cca.port import Port


class ProlongRestrictPort(Port):
    """Cell-centered inter-level transfer operators."""

    def prolong(self, coarse: np.ndarray, ratio: int) -> np.ndarray:
        """Coarse block (with one ghost ring) -> fine block."""
        raise NotImplementedError

    def restrict(self, fine: np.ndarray, ratio: int) -> np.ndarray:
        """Fine block -> coarse block (conservative average)."""
        raise NotImplementedError
