"""GoPort: the application entry point (framework-standard)."""

from __future__ import annotations

from repro.cca.port import Port


class GoPort(Port):
    """A runnable entry point; drivers provide it, ``Framework.go`` calls
    it."""

    def go(self) -> int:
        """Run; return 0 on success (CCAFFEINE convention)."""
        raise NotImplementedError
