"""BoundaryConditionPort: physical ghost fills at patch granularity.

"BCs are applied at each of the stages of a multi-stage integration
scheme; hence application of the boundary conditions has to be done on a
finer basis than one Data Object at a time.  Thus the granularity will be
a patch."  (paper §4, subsystem 7)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.patch import Patch


class BoundaryConditionPort(Port):
    """Fill a patch's physical-boundary ghost cells."""

    def apply(self, patch: "Patch", ghosted: np.ndarray, axis: int,
              side: int) -> None:
        """Fill the ghost cells of one domain face of one patch."""
        raise NotImplementedError
