"""Integrator ports.

Family (c): "Ports that accept an array of Data Objects and act on them in
a synchronized manner.  Integrators usually support these ports."  Family
(e): vector ports for the implicit integration subsystem.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

import numpy as np

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.dataobject import DataObject


class IntegratorPort(Port):
    """Advance a set of Data Objects over a time step (family (c))."""

    def advance(self, dataobjs: Sequence["DataObject"], t: float,
                dt: float) -> float:
        """Advance from ``t`` by ``dt``; returns the new time."""
        raise NotImplementedError

    def stable_dt(self, dataobjs: Sequence["DataObject"],
                  t: float) -> float:
        """Largest stable/accurate macro step at the current state."""
        raise NotImplementedError


class ODESolverPort(Port):
    """Pointwise stiff/non-stiff vector integration (family (e)) — the
    interface ``CvodeComponent`` provides."""

    def integrate(self, t0: float, y0: np.ndarray, t1: float) -> np.ndarray:
        """Integrate dy/dt = f(t, y) from t0 to t1 and return y(t1)."""
        raise NotImplementedError

    def last_nfe(self) -> int:
        """RHS evaluations consumed by the most recent ``integrate``."""
        raise NotImplementedError
