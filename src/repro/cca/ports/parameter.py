"""ParameterPort: key-value access (the Database subsystem interface).

"Database components ... store certain parameters (e.g. mesh size, gas
properties, etc), that are retrieved using a key-value pair mechanism.
They are essentially maps between the (character string) property name and
a number."  (paper §4, subsystem 8; port family (f))
"""

from __future__ import annotations

from typing import Any

from repro.cca.port import Port


class ParameterPort(Port):
    """Get/set named properties."""

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def set(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError
