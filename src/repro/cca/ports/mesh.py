"""MeshPort: geometric manipulation of the SAMR domain (port family (a)).

"Port(s) (provided by the mesh component) that allow (i) geometrical
manipulation of the domain, (ii) the declaration of fields on the mesh
(via Data Objects), and (iii) tasks like setting/querying of
domain-decomposition details.  Our design for type (a) Ports is called
MeshPort."  (paper §4)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.hierarchy import Hierarchy
    from repro.samr.patch import Patch


class MeshPort(Port):
    """Geometry + domain-decomposition interface of the Mesh subsystem."""

    # (i) geometrical manipulation
    def hierarchy(self) -> "Hierarchy":
        """The live patch hierarchy."""
        raise NotImplementedError

    def build_base_level(self) -> None:
        """Overlay the uniform coarse mesh and decompose it across ranks."""
        raise NotImplementedError

    def regrid(self) -> None:
        """Recreate the patch hierarchy from current error flags."""
        raise NotImplementedError

    # (iii) domain decomposition queries
    def owned_patches(self, level: int | None = None) -> list["Patch"]:
        raise NotImplementedError

    def rank(self) -> int:
        raise NotImplementedError

    def nranks(self) -> int:
        raise NotImplementedError


class RegridPort(Port):
    """Trigger hierarchy recreation (the ``ErrorEstAndRegrid`` interface)."""

    def regrid(self) -> None:
        """Flag -> cluster -> rebuild levels -> transfer data."""
        raise NotImplementedError
