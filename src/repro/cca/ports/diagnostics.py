"""StatisticsPort: run-time observables (the ``StatisticsComponent``)."""

from __future__ import annotations

from typing import Any

from repro.cca.port import Port


class StatisticsPort(Port):
    """Record and query named time series of scalar observables."""

    def record(self, key: str, t: float, value: float) -> None:
        raise NotImplementedError

    def series(self, key: str) -> list[tuple[float, float]]:
        raise NotImplementedError

    def summary(self) -> dict[str, Any]:
        raise NotImplementedError
