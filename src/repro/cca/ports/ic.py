"""InitialConditionPort: impose initial data on Data Objects."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cca.port import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.samr.dataobject import DataObject


class InitialConditionPort(Port):
    """The Initial Condition subsystem's interface (paper §4, subsystem 3)."""

    def initialize(self, dobj: "DataObject") -> None:
        """Fill every owned patch of ``dobj`` with initial data."""
        raise NotImplementedError


class VectorICPort(Port):
    """Initial state for pointwise (0D) problems — what the ``Initializer``
    component of the ignition assembly provides."""

    def initial_state(self):
        """The initial Φ vector (e.g. [T, Y_1..Y_N, P])."""
        raise NotImplementedError
