"""The framework: component registry, lifecycle and port wiring.

One :class:`Framework` instance exists per SCMD rank ("identical
frameworks, containing the same components, are instantiated on all P
processors").  It is deliberately minimalist — instantiate, connect, go —
exactly the surface CCAFFEINE exposes.
"""

from __future__ import annotations

from typing import Any, Iterable, Type

from repro.cca.component import Component
from repro.cca.port import Port
from repro.cca.services import Services
from repro.errors import CCAError, PortTypeError
from repro.mpi import sanitizer as _tsan
from repro.obs import trace as _trace
from repro.util.logging import get_logger

_log = get_logger("cca.framework")


def _warn_unknown_parameter(class_name: str, instance_name: str,
                            key: str) -> None:
    """Warn when a manifest-covered class gets a key it never reads.

    Lazy import: :mod:`repro.analysis.manifest` reads the committed
    manifests exactly once; classes without a manifest (ad-hoc test
    components) and open-parameter database components never warn.
    """
    try:
        from repro.analysis.manifest import known_parameter
    except Exception:  # pragma: no cover - analysis layer unavailable
        return
    if known_parameter(class_name, key) is False:
        import warnings

        warnings.warn(
            f"parameter {key!r} set on {instance_name!r} "
            f"({class_name}) is not declared in its manifest and will "
            f"never be read", UserWarning, stacklevel=3)


class ComponentRegistry:
    """Maps class names to component classes ("the repository")."""

    def __init__(self) -> None:
        self._classes: dict[str, Type[Component]] = {}

    def register(self, cls: Type[Component],
                 name: str | None = None) -> None:
        if not (isinstance(cls, type) and issubclass(cls, Component)):
            raise CCAError(f"{cls!r} is not a Component subclass")
        key = name or cls.__name__
        if key in self._classes and self._classes[key] is not cls:
            raise CCAError(f"class name {key!r} already registered")
        self._classes[key] = cls

    def register_many(self, classes: Iterable[Type[Component]]) -> None:
        for cls in classes:
            self.register(cls)

    def get(self, name: str) -> Type[Component]:
        try:
            return self._classes[name]
        except KeyError:
            known = ", ".join(sorted(self._classes)) or "<empty>"
            raise CCAError(
                f"unknown component class {name!r} (repository has: "
                f"{known})") from None

    def names(self) -> list[str]:
        return sorted(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes


class Framework:
    """A CCA framework instance for one rank.

    Parameters
    ----------
    registry:
        Component class repository used by ``instantiate``.
    comm:
        The rank's world communicator, lent to components on request;
        ``None`` for serial runs.
    """

    def __init__(self, registry: ComponentRegistry | None = None,
                 comm=None) -> None:
        self.registry = registry or ComponentRegistry()
        self.comm = comm
        self._components: dict[str, Component] = {}
        self._services: dict[str, Services] = {}
        # (user, uses_port) -> (provider, provides_port)
        self._connections: dict[tuple[str, str], tuple[str, str]] = {}

    # -- lifecycle ------------------------------------------------------------
    def instantiate(self, class_name: str, instance_name: str) -> Component:
        """Create a component and run its ``setServices``."""
        if instance_name in self._components:
            raise CCAError(f"instance name {instance_name!r} already used")
        cls = self.registry.get(class_name)
        # While the race sanitizer is armed, shadow the class's mutable
        # class attributes (the RA202 shared-object model) so rank-thread
        # writes are clock-checked — the disabled cost is this flag check.
        if _tsan.on:
            _tsan.instrument_class(cls)
        component = cls()
        services = Services(self, instance_name)
        component.set_services(services)
        self._components[instance_name] = component
        self._services[instance_name] = services
        _log.debug("instantiated %s as %s", class_name, instance_name)
        return component

    def destroy(self, instance_name: str) -> None:
        """Remove a component, dropping every connection touching it.

        Warns about uses ports the component checked out with
        ``get_port`` and never ``release_port``-ed — the runtime
        counterpart of the analyzer's RA103 lifecycle lint.
        """
        comp = self.get_component(instance_name)
        leaked = self._services[instance_name].port_balances()
        if leaked:
            detail = ", ".join(f"{p} (x{n})"
                               for p, n in sorted(leaked.items()))
            _log.warning("destroying %s with unreleased ports: %s",
                         instance_name, detail)
        for (user, uport), (prov, _pport) in list(self._connections.items()):
            if user == instance_name or prov == instance_name:
                self.disconnect(user, uport)
        comp.release_services(self._services[instance_name])
        del self._components[instance_name]
        del self._services[instance_name]

    def get_component(self, instance_name: str) -> Component:
        try:
            return self._components[instance_name]
        except KeyError:
            raise CCAError(
                f"no component instance {instance_name!r} (have: "
                f"{sorted(self._components)})") from None

    def services_of(self, instance_name: str) -> Services:
        self.get_component(instance_name)
        return self._services[instance_name]

    def instance_names(self) -> list[str]:
        return sorted(self._components)

    # -- wiring ------------------------------------------------------------------
    def connect(self, user: str, uses_port: str,
                provider: str, provides_port: str) -> None:
        """Wire ``user.uses_port`` to ``provider.provides_port``.

        Connecting is "just the movement of (pointers to) interfaces from
        the providing to the using component" — the provider's port object
        is handed to the user's services.
        """
        u_srv = self.services_of(user)
        p_srv = self.services_of(provider)
        if uses_port not in u_srv.uses:
            raise CCAError(
                f"{user!r} has no uses port {uses_port!r} "
                f"(declares: {sorted(u_srv.uses)})")
        if provides_port not in p_srv.provides:
            raise CCAError(
                f"{provider!r} has no provides port {provides_port!r} "
                f"(exports: {sorted(p_srv.provides)})")
        port, ptype = p_srv.provides[provides_port]
        expected = u_srv.uses[uses_port]
        if ptype != expected:
            raise PortTypeError(
                f"type mismatch connecting {user}.{uses_port} "
                f"[{expected}] to {provider}.{provides_port} [{ptype}]")
        if (user, uses_port) in self._connections:
            raise CCAError(
                f"{user}.{uses_port} is already connected")
        u_srv._attach(uses_port, port)
        self._connections[(user, uses_port)] = (provider, provides_port)

    def disconnect(self, user: str, uses_port: str) -> None:
        if (user, uses_port) not in self._connections:
            raise CCAError(f"{user}.{uses_port} is not connected")
        self.services_of(user)._detach(uses_port)
        del self._connections[(user, uses_port)]

    def connections(self) -> dict[tuple[str, str], tuple[str, str]]:
        """Snapshot of the wiring (used by assembly dumps / Figs 1, 2, 5)."""
        return dict(self._connections)

    def provider_of(self, user: str, uses_port: str
                    ) -> tuple[str, str] | None:
        """``(provider, provides_port)`` wired to ``user.uses_port``, or
        None when unconnected."""
        return self._connections.get((user, uses_port))

    # -- checkpoint/restart -------------------------------------------------------
    def capture_state(self) -> dict[str, dict]:
        """Snapshot every Checkpointable component's evolving state.

        Components not implementing the protocol (see
        :mod:`repro.resilience.protocol`) are stateless by definition
        here and simply omitted.
        """
        states: dict[str, dict] = {}
        for name, comp in self._components.items():
            fn = getattr(comp, "checkpoint_state", None)
            if callable(fn):
                states[name] = fn()
        return states

    def restore_state(self, states: dict[str, dict]) -> None:
        """Re-impose captured component states after re-instantiation.

        Unknown instance names are an error (the restored assembly must
        match the one that checkpointed); components that dropped the
        protocol raise too, so silent state loss is impossible.
        """
        for name, state in states.items():
            comp = self.get_component(name)
            fn = getattr(comp, "restore_state", None)
            if not callable(fn):
                raise CCAError(
                    f"component {name!r} has checkpointed state but "
                    f"implements no restore_state()")
            fn(state)

    # -- parameters & execution ---------------------------------------------------
    def set_parameter(self, instance_name: str, key: str,
                      value: Any) -> None:
        """The rc ``parameter`` directive.

        A typo'd key would be silently stored and never read; when the
        instance's class ships a manifest declaring its parameters, an
        unknown key raises a :class:`UserWarning` at set time (the
        runtime analog of the static RA411 contract check).
        """
        srv = self.services_of(instance_name)
        _warn_unknown_parameter(
            type(self._components[instance_name]).__name__,
            instance_name, key)
        srv.parameters.set(key, value)

    def go(self, instance_name: str, port_name: str = "go") -> Any:
        """Invoke a component's GoPort — the application entry point."""
        srv = self.services_of(instance_name)
        if port_name not in srv.provides:
            raise CCAError(
                f"{instance_name!r} provides no {port_name!r} port")
        port, ptype = srv.provides[port_name]
        go = getattr(port, "go", None)
        if go is None:
            raise PortTypeError(
                f"{instance_name}.{port_name} [{ptype}] has no go() method")
        if _trace.on:
            with _trace.span(f"cca.go:{instance_name}", cat="cca"):
                return go()
        return go()

    # -- introspection ------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable assembly dump (the textual analog of the GUI
        arena in the paper's Fig. 1)."""
        lines = ["components:"]
        for name in self.instance_names():
            srv = self._services[name]
            prov = ", ".join(f"{p}[{t}]" for p, (_o, t)
                             in sorted(srv.provides.items()))
            uses = ", ".join(f"{p}[{t}]" for p, t in sorted(srv.uses.items()))
            lines.append(f"  {name}")
            lines.append(f"    provides: {prov or '-'}")
            lines.append(f"    uses:     {uses or '-'}")
        lines.append("connections:")
        for (user, uport), (prov, pport) in sorted(self._connections.items()):
            lines.append(f"  {user}.{uport} -> {prov}.{pport}")
        return "\n".join(lines)
