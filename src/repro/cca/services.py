"""The Services handle: a component's window into the framework.

Through it a component registers ProvidesPorts, declares UsesPorts,
fetches connected peers' ports (``get_port``), reads its script-set
parameters, and borrows the framework's scoped MPI communicator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.cca.port import Port
from repro.cca.portproxy import TracingPortProxy
from repro.errors import CCAError, PortNotConnectedError, PortTypeError
from repro.mpi import sanitizer as _tsan
from repro.obs import trace as _trace
from repro.resilience import faults as _faults
from repro.util.options import Options

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cca.framework import Framework


class Services:
    """Per-component-instance framework services."""

    def __init__(self, framework: "Framework", instance_name: str) -> None:
        self._framework = framework
        self.instance_name = instance_name
        self.provides: dict[str, tuple[Port, str]] = {}
        self.uses: dict[str, str] = {}
        self._connections: dict[str, Port] = {}
        self.parameters = Options()
        # uses-port checkout balance: +1 per get_port, -1 per release_port
        self._checked_out: dict[str, int] = {}

    # -- provides ------------------------------------------------------------
    def add_provides_port(self, port: Port, port_name: str,
                          port_type: str | None = None) -> None:
        """Export ``port`` under ``port_name``."""
        if not isinstance(port, Port):
            raise PortTypeError(
                f"{self.instance_name}: provides port {port_name!r} must "
                f"be a Port, got {type(port).__name__}")
        if port_name in self.provides:
            raise CCAError(
                f"{self.instance_name}: provides port {port_name!r} "
                f"already registered")
        self.provides[port_name] = (port, port_type or port.port_type())

    # -- uses ------------------------------------------------------------------
    def register_uses_port(self, port_name: str, port_type: str) -> None:
        """Declare that this component calls through ``port_name``."""
        if port_name in self.uses:
            raise CCAError(
                f"{self.instance_name}: uses port {port_name!r} already "
                f"registered")
        self.uses[port_name] = port_type

    def get_port(self, port_name: str) -> Port:
        """Fetch the provider's port connected to a uses port.

        This is the indirection every inter-component call pays — the
        Python analog of CCAFFEINE's virtual-function-call overhead.
        """
        if port_name not in self.uses:
            raise CCAError(
                f"{self.instance_name}: {port_name!r} was never registered "
                f"as a uses port")
        try:
            port = self._connections[port_name]
        except KeyError:
            raise PortNotConnectedError(
                f"{self.instance_name}: uses port {port_name!r} is not "
                f"connected") from None
        self._checked_out[port_name] = \
            self._checked_out.get(port_name, 0) + 1
        wired = self._framework._connections.get(
            (self.instance_name, port_name))
        label = (f"{wired[0]}:{wired[1]}" if wired
                 else f"{self.instance_name}:{port_name}")
        # While fault injection is armed, wrap ports whose label the plan
        # targets — the disabled cost is this flag check.
        if _faults.on and _faults.wraps_label(label):
            port = _faults.FaultPortProxy(port, label)
        # While the race sanitizer is armed, record calls against the
        # provider port's identity (catches instances shared across
        # rank-threads) — the disabled cost is this flag check.
        if _tsan.on and not isinstance(port, _tsan.SanitizerPortProxy):
            port = _tsan.SanitizerPortProxy(port, label)
        # While tracing is on, hand out a span-emitting proxy labelled by
        # the *providing* side — the disabled cost is this flag check.
        if _trace.on and not isinstance(port, TracingPortProxy):
            return TracingPortProxy(port, label)
        return port

    def release_port(self, port_name: str) -> None:
        """Return a checked-out port (CCAFFEINE's reference counting).

        Decrements the checkout balance incremented by :meth:`get_port`;
        :meth:`port_balances` reports what was never returned, and
        :meth:`Framework.destroy` warns on nonzero balances.  Releasing
        more than was fetched clamps at zero (harmless double-release).
        """
        if port_name not in self.uses:
            raise CCAError(
                f"{self.instance_name}: cannot release unknown port "
                f"{port_name!r}")
        balance = self._checked_out.get(port_name, 0)
        if balance > 0:
            self._checked_out[port_name] = balance - 1

    def is_connected(self, port_name: str) -> bool:
        return port_name in self._connections

    # -- read-only introspection (used by repro.analysis) -----------------------
    def uses_table(self) -> dict[str, str]:
        """Snapshot of the declared uses ports (``name -> port_type``)."""
        return dict(self.uses)

    def provides_table(self) -> dict[str, str]:
        """Snapshot of the exported provides ports
        (``name -> port_type``, port objects omitted)."""
        return {name: ptype for name, (_port, ptype)
                in self.provides.items()}

    def port_balances(self) -> dict[str, int]:
        """Nonzero get/release balances — the leaked checkouts."""
        return {name: n for name, n in self._checked_out.items() if n}

    # -- framework-provided amenities -----------------------------------------
    def get_parameter(self, key: str, default: Any = None) -> Any:
        """Script-set parameter lookup (the rc ``parameter`` directive)."""
        return self.parameters.get(key, default)

    def get_comm(self):
        """Borrow the framework's scoped communicator (None in serial).

        "The framework lends out a properly scoped MPI communicator to any
        component to allow access to the parallel virtual machine created
        by mpirun."  (paper §2)
        """
        return self._framework.comm

    # -- internal wiring (called by the framework) -------------------------------
    def _attach(self, port_name: str, port: Port) -> None:
        self._connections[port_name] = port

    def _detach(self, port_name: str) -> None:
        self._connections.pop(port_name, None)
