"""The CCA component framework (CCAFFEINE analog).

Implements the Common Component Architecture's *provides-uses* pattern
exactly as the paper describes (§2):

* Components derive from the data-less abstract :class:`Component` with
  one deferred method, ``setServices`` (:meth:`Component.set_services`),
  "invoked by the framework at component creation and used by the
  components to register themselves and their UsesPorts and
  ProvidesPorts".
* Ports are data-less abstract classes (:mod:`repro.cca.ports`); most are
  domain-specific and defined by this toolkit's component set.
* The :class:`Framework` instantiates components from a class registry,
  and "the process of connecting ports is just the movement of (pointers
  to) interfaces from the providing to the using component" — a method
  invocation through a uses-port costs one indirection, our analog of the
  virtual-function hop measured in Table 4.
* Applications are assembled through a script (:mod:`repro.cca.script`)
  or programmatically through the :class:`BuilderService`.
* SCMD parallelism (:mod:`repro.cca.scmd`): identical frameworks on every
  rank; the framework "lends out a properly scoped MPI communicator to
  any component" and provides no other message-passing services.
"""

from repro.cca.port import Port
from repro.cca.component import Component
from repro.cca.services import Services
from repro.cca.framework import Framework, ComponentRegistry
from repro.cca.builder import BuilderService
from repro.cca.script import run_script, parse_script, parse_script_tolerant
from repro.cca.scmd import run_scmd
from repro.cca.graph import assembly_graph, to_dot, wiring_summary
from repro.cca.profiling import Profiler, instrument, leaked_ports

__all__ = [
    "assembly_graph",
    "to_dot",
    "wiring_summary",
    "Profiler",
    "instrument",
    "leaked_ports",
    "parse_script_tolerant",
    "Port",
    "Component",
    "Services",
    "Framework",
    "ComponentRegistry",
    "BuilderService",
    "run_script",
    "parse_script",
    "run_scmd",
]
