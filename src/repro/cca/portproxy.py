"""Transparent port proxy: the one place port calls are observed.

A :class:`TracingPortProxy` wraps a provides-port object and forwards
every attribute access.  Method calls are:

* traced as ``"provider:port.method"`` spans (category ``"port"``) when
  :mod:`repro.obs.trace` is enabled, and
* reported to an optional *recorder* (duck-typed ``begin(key) -> token``
  / ``end(key, token)``) — :class:`repro.cca.profiling.Profiler` uses
  this to account per-method CPU self-time in its metrics registry.

Both :func:`repro.cca.profiling.instrument` (explicit TAU-style
profiling) and :meth:`repro.cca.services.Services.get_port` (automatic
wrapping while tracing is on) hand out this class, so a port is never
double-wrapped: whoever sees a proxy passes it through unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.cca.port import Port
from repro.errors import CCAError
from repro.obs import trace as _trace


class TracingPortProxy(Port):
    """Recording wrapper around a provides-port object."""

    def __init__(self, target: Port, label: str,
                 recorder: Any | None = None) -> None:
        # bypass our own __setattr__/__getattr__ plumbing
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_label", label)
        object.__setattr__(self, "_recorder", recorder)

    @classmethod
    def port_type(cls):  # pragma: no cover - proxies are created wired
        raise CCAError("proxy has no static port type")

    def __getattr__(self, name: str) -> Any:
        value = getattr(object.__getattribute__(self, "_target"), name)
        if not callable(value):
            return value
        label: str = object.__getattribute__(self, "_label")
        recorder = object.__getattribute__(self, "_recorder")
        key = f"{label}.{name}"

        def wrapped(*args, **kwargs):
            span = _trace.Span(key, "port", {}) if _trace.on else None
            if recorder is None:
                if span is None:
                    return value(*args, **kwargs)
                with span:
                    return value(*args, **kwargs)
            token = recorder.begin(key)
            try:
                if span is None:
                    return value(*args, **kwargs)
                with span:
                    return value(*args, **kwargs)
            finally:
                recorder.end(key, token)

        return wrapped

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(object.__getattribute__(self, "_target"), name, value)
