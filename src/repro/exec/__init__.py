"""``repro.exec`` — pluggable execution backends behind one runner API.

The paper's SCMD model is "P instances of the framework started by
mpirun".  *How* those P processors are realized is a transport choice,
not an application choice — FLASH swaps its parallel transport without
touching component code, and hydroFlow's ``produtil.mpi_impl`` selects
among interchangeable launchers (``mpiexec``, ``mpirun_lsf``,
``no_mpi``) at runtime.  This package adopts that shape for the
toolkit: :func:`repro.mpi.launcher.mpirun` is a thin dispatcher over a
backend registry, and the same rc-scripts / components / SCMD code
paths run unchanged over any of:

``threads`` (default)
    The original in-process rank-threads + virtual-clock transport
    (:mod:`repro.exec.threads`) — deterministic, cheap to start, the
    right substrate for tests and scaling-*shape* benches.  Wall-clock
    numbers are GIL-bound.
``mp``
    Real ``multiprocessing`` worker processes
    (:mod:`repro.exec.mp`): message traffic over OS pipes, large array
    payloads through ``multiprocessing.shared_memory`` segments
    (zero-copy receive), SAMR patch arrays allocated in shared memory,
    per-rank tracebacks pickled back into
    :class:`~repro.mpi.launcher.RankFailure`.  Escapes the GIL: real
    cores, real wall-clock speedups.
``mpiexec``
    A thin external-launcher/mpi4py backend
    (:mod:`repro.exec.mpiexec`) for actual clusters; raises a clear
    error when mpi4py or an ``mpiexec`` binary is absent.

Selection order: the ``backend=`` keyword of ``mpirun`` /
``run_scmd`` / ``run_supervised``, else the ``REPRO_BACKEND``
environment variable, else ``threads``.
"""

from __future__ import annotations

import difflib
import os
from typing import Callable

from repro.exec.base import BackendUnavailableError, ExecBackend
from repro.errors import MPIError

DEFAULT_BACKEND = "threads"

#: name -> lazily-instantiated backend factory.  Factories (not
#: instances) are registered so importing this package stays cheap and
#: optional dependencies (mpi4py) are only probed on first use.
_FACTORIES: dict[str, Callable[[], ExecBackend]] = {}
_INSTANCES: dict[str, ExecBackend] = {}


def register(name: str, factory: Callable[[], ExecBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[str(name)] = factory
    _INSTANCES.pop(str(name), None)


def backend_names() -> list[str]:
    """Registered backend names, default first, then alphabetical."""
    names = sorted(_FACTORIES)
    if DEFAULT_BACKEND in names:
        names.remove(DEFAULT_BACKEND)
        names.insert(0, DEFAULT_BACKEND)
    return names


def resolve_name(name: str | None = None) -> str:
    """Canonical backend name for ``name`` (or the session default).

    ``None``/"" resolves through ``REPRO_BACKEND``, then the built-in
    default.  Unknown names raise :class:`~repro.errors.MPIError` with a
    did-you-mean suggestion over the registry — the same message the
    serve admission pass (RA419) embeds in its finding.
    """
    if not name:
        name = os.environ.get("REPRO_BACKEND", "").strip() or DEFAULT_BACKEND
    name = str(name).strip()
    if name in _FACTORIES:
        return name
    near = difflib.get_close_matches(name, list(_FACTORIES), n=1, cutoff=0.6)
    hint = f" — did you mean {near[0]!r}?" if near else ""
    raise MPIError(
        f"unknown execution backend {name!r}{hint} "
        f"(have: {', '.join(backend_names())})")


def get_backend(name: str | None = None) -> ExecBackend:
    """The backend instance for ``name`` (see :func:`resolve_name`)."""
    name = resolve_name(name)
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        _INSTANCES[name] = backend
    return backend


def _register_builtins() -> None:
    def _threads() -> ExecBackend:
        from repro.exec.threads import ThreadsBackend
        return ThreadsBackend()

    def _mp() -> ExecBackend:
        from repro.exec.mp import MPBackend
        return MPBackend()

    def _mpiexec() -> ExecBackend:
        from repro.exec.mpiexec import MpiexecBackend
        return MpiexecBackend()

    register("threads", _threads)
    register("mp", _mp)
    register("mpiexec", _mpiexec)


_register_builtins()

__all__ = [
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "ExecBackend",
    "backend_names",
    "get_backend",
    "register",
    "resolve_name",
]
