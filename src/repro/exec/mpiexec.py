"""The ``mpiexec`` backend: ride a real MPI launch via mpi4py.

The thinnest member of the registry, and deliberately so — it is the
hydroFlow ``produtil.mpi_impl`` move: when the toolkit is itself started
under a real launcher (``mpiexec -n P python app.py``), every process
already *is* a rank, so ``run`` simply wraps this process's
``MPI.COMM_WORLD`` in an adapter and calls ``main`` once.  No forking,
no queues; the cluster's MPI does the transport and the "virtual" clock
is real elapsed time.

This backend is **optional**: mpi4py is not a dependency of the
toolkit.  :meth:`MpiexecBackend.available` reports exactly what is
missing, and :func:`repro.mpi.launcher.mpirun` raises
:class:`~repro.exec.base.BackendUnavailableError` with that reason and
the list of backends that *do* work — selecting it can never fail
silently or half-run.

The adapter maps the toolkit's lowercase-object API onto mpi4py's
lowercase methods one-to-one; ``nprocs`` must equal the launched world
size (a mismatch is a configuration error, reported as such).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.errors import MPIError
from repro.exec.base import ExecBackend
from repro.mpi.perfmodel import MachineModel, LOCALHOST


def _probe_mpi4py():
    try:
        from mpi4py import MPI  # noqa: PLC0415 - optional dependency
        return MPI
    except ImportError:
        return None


class _Mpi4pyComm:
    """Adapter: the toolkit's Comm surface over an mpi4py communicator."""

    def __init__(self, mpicomm, machine: MachineModel) -> None:
        self._c = mpicomm
        self.rank = mpicomm.Get_rank()
        self.size = mpicomm.Get_size()
        self.global_rank = self.rank
        self.machine = machine
        self._t0 = time.perf_counter()

    # -- virtual time (elapsed wall-clock under a real launcher) ---------
    @property
    def clock(self) -> float:
        return time.perf_counter() - self._t0

    def reset_clock(self) -> None:
        self._t0 = time.perf_counter()

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise MPIError("cannot advance the clock backwards")
        self._t0 -= seconds

    # -- point-to-point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._c.send(obj, dest=dest, tag=max(tag, 0))

    def isend(self, obj: Any, dest: int, tag: int = 0):
        return self._c.isend(obj, dest=dest, tag=max(tag, 0))

    def recv(self, source: int = -1, tag: int = -1, status=None) -> Any:
        from mpi4py import MPI
        src = MPI.ANY_SOURCE if source < 0 else source
        tg = MPI.ANY_TAG if tag < 0 else tag
        st = MPI.Status()
        obj = self._c.recv(source=src, tag=tg, status=st)
        if status is not None:
            status.source = st.Get_source()
            status.tag = st.Get_tag()
            status.nbytes = st.Get_count(MPI.BYTE)
        return obj

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = -1, recvtag: int = -1, status=None) -> Any:
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag, status)

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        self._c.barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._c.bcast(obj, root=root)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        return self._c.reduce(obj, op=self._op(op), root=root)

    def allreduce(self, obj: Any, op=None) -> Any:
        return self._c.allreduce(obj, op=self._op(op))

    def gather(self, obj: Any, root: int = 0):
        return self._c.gather(obj, root=root)

    def allgather(self, obj: Any):
        return self._c.allgather(obj)

    def scatter(self, objs, root: int = 0):
        return self._c.scatter(objs, root=root)

    def alltoall(self, objs):
        return self._c.alltoall(objs)

    @staticmethod
    def _op(op):
        from mpi4py import MPI
        from repro.mpi.comm import Op
        table = {None: MPI.SUM, Op.SUM: MPI.SUM, Op.PROD: MPI.PROD,
                 Op.MIN: MPI.MIN, Op.MAX: MPI.MAX, Op.LOR: MPI.LOR,
                 Op.LAND: MPI.LAND}
        return table[op]

    # -- communicator management -----------------------------------------
    def split(self, color: int, key: int | None = None) -> "_Mpi4pyComm":
        key = self.rank if key is None else key
        return _Mpi4pyComm(self._c.Split(color, key), self.machine)

    def dup(self) -> "_Mpi4pyComm":
        return _Mpi4pyComm(self._c.Dup(), self.machine)

    def abort(self, reason: str = "user abort") -> None:
        self._c.Abort(1)


class MpiexecBackend(ExecBackend):
    """Run under an external ``mpiexec`` launch via mpi4py."""

    name = "mpiexec"
    description = ("external 'mpiexec -n P python ...' launch via mpi4py "
                   "(optional)")

    def available(self) -> tuple[bool, str]:
        if _probe_mpi4py() is None:
            return False, ("mpi4py is not installed; install it and start "
                           "the program under 'mpiexec -n <P> python ...'")
        return True, ""

    def run(self, nprocs: int, main: Callable[..., Any],
            args: Sequence[Any] = (), machine: MachineModel = LOCALHOST,
            return_clocks: bool = False) -> list[Any]:
        MPI = _probe_mpi4py()
        if MPI is None:  # require_available() normally catches this first
            self.require_available()
        world = MPI.COMM_WORLD
        if world.Get_size() != nprocs:
            raise MPIError(
                f"mpiexec backend: this process was launched with "
                f"{world.Get_size()} rank(s) but the run asked for "
                f"{nprocs} — start it as 'mpiexec -n {nprocs} python ...'")
        comm = _Mpi4pyComm(world, machine)
        comm.reset_clock()
        value = main(comm, *args)
        pairs = world.allgather((value, comm.clock))
        if return_clocks:
            return pairs
        return [v for v, _ in pairs]
