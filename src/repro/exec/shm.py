"""Shared-memory array plumbing for the ``mp`` backend.

Two jobs, one mechanism (POSIX shared memory via
:mod:`multiprocessing.shared_memory`):

**Message transport** (:func:`encode_message` / :func:`decode_message`).
Messages are pickled with protocol 5; every contiguous array buffer is
collected out-of-band and packed into *one* shared segment per message.
The receiver maps the segment and reconstructs the arrays as zero-copy
views over it — the only copy in the whole exchange is the sender's
packing copy, which is exactly the isolation copy the ``threads``
backend's ``_isolate`` makes anyway.  Compared to shipping arrays
through a pipe (serialize, kernel round-trip, deserialize) this removes
two copies and the per-byte syscall traffic from ghost exchange,
prolong/restrict and array reductions.  Small messages (buffer payload
under :func:`min_shm_bytes`) stay in-band: a segment per tiny message
would cost more in ``shm_open`` calls than it saves.

**Patch storage** (:func:`shm_allocator` +
:func:`repro.samr.dataobject.set_array_allocator`).  Worker ranks of the
``mp`` backend allocate SAMR patch arrays inside shared segments
(:class:`ShmArray`), so a rank's field state is visible to sibling
processes at a known name — received ghost regions are written straight
into shared storage, and checkpoint/diagnostic consumers can map a
rank's patches without a pipe round-trip.

Lifetime discipline (one creator, exactly one consumer per message
segment): the sender closes its mapping right after packing; the
receiver unlinks the name immediately after attaching, so the kernel
frees the pages as soon as the reconstructed arrays die.  The attached
mapping itself is kept alive by the arrays' buffer chain (ndarray ->
memoryview -> mmap); the now-redundant segment file descriptor is
closed eagerly (mmap holds its own dup) so a long run cannot exhaust
fds.  Segments stranded by an aborted world are reclaimed by the
``multiprocessing`` resource tracker at interpreter exit — the ``mp``
backend starts the tracker *before* forking so every worker shares one
tracker process.
"""

from __future__ import annotations

import os
import pickle
import weakref
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

#: in-band fallback threshold: messages whose out-of-band buffer payload
#: totals fewer bytes than this ride the pipe as a plain pickle.
DEFAULT_MIN_SHM_BYTES = 4096


def min_shm_bytes() -> int:
    """Shared-segment threshold (``REPRO_SHM_MIN_BYTES`` overrides)."""
    raw = os.environ.get("REPRO_SHM_MIN_BYTES", "").strip()
    try:
        return int(raw) if raw else DEFAULT_MIN_SHM_BYTES
    except ValueError:
        return DEFAULT_MIN_SHM_BYTES


def _detach(seg: shared_memory.SharedMemory) -> None:
    """Hand the segment's mapping over to its exported buffers.

    After this the ``SharedMemory`` object is inert: its fd is closed
    (``mmap`` dups the descriptor at map time, so the object's own fd is
    pure overhead — and would otherwise leak per message) and its
    ``close``/``__del__`` become no-ops, because a mapping exported to
    NumPy views cannot be closed explicitly (BufferError) and the
    attempt would print "Exception ignored" noise at gc time.  The mmap
    itself stays alive exactly as long as the views' buffer chain does.
    """
    fd = getattr(seg, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:
            pass
        seg._fd = -1
    seg._buf = None
    seg._mmap = None


#: live allocator-owned segments of this process, by name — so a worker
#: can unlink everything explicitly before ``os._exit`` (which skips
#: finalizers and would otherwise leave the resource tracker muttering
#: about "leaked" segments at shutdown).
_OWNED: dict[str, shared_memory.SharedMemory] = {}


def release_owned() -> None:
    """Unlink every still-live allocator segment (worker shutdown path).

    The arrays over these segments may still exist; their mappings stay
    valid — only the names are released so the kernel can reclaim the
    pages once the process dies.
    """
    for name, seg in list(_OWNED.items()):
        _OWNED.pop(name, None)
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        _detach(seg)


class _SegmentHolder:
    """Keeps one owned segment alive; unlinks it when the last array
    referencing it dies (via :func:`weakref.finalize`)."""

    def __init__(self, seg: shared_memory.SharedMemory) -> None:
        self.seg = seg
        self.name = seg.name
        _OWNED[seg.name] = seg
        weakref.finalize(self, _reclaim, seg)


def _reclaim(seg: shared_memory.SharedMemory) -> None:
    # NB: keyed by the *reported* name (``seg.name``) — on POSIX the
    # raw ``seg._name`` carries a leading slash and would never match.
    if _OWNED.pop(seg.name, None) is None \
            and getattr(seg, "_mmap", None) is None:
        return  # already released explicitly via release_owned()
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass
    try:
        seg.close()
    except BufferError:
        # a straggler view is mid-teardown: quiesce the object and let
        # the mapping close with the buffer chain
        _detach(seg)


class ShmArray(np.ndarray):
    """ndarray whose buffer lives in a shared-memory segment.

    Behaves exactly like ``ndarray`` (views propagate the segment
    reference; pickling plain-ifies to a normal in-band array).  The
    backing segment is unlinked automatically once the last view dies.
    """

    _segment: _SegmentHolder | None = None

    def __array_finalize__(self, obj: Any) -> None:
        self._segment = getattr(obj, "_segment", None)

    def __reduce__(self):
        # pickle as a plain ndarray: the segment is process-local state
        return np.asarray(self).copy().__reduce__()

    @property
    def segment_name(self) -> str | None:
        """The backing segment's name, or None for a detached copy."""
        return self._segment.name if self._segment is not None else None


def shm_empty(shape: tuple[int, ...], dtype: Any = np.float64) -> ShmArray:
    """A new uninitialized :class:`ShmArray` of ``shape``/``dtype``."""
    dtype = np.dtype(dtype)
    nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    holder = _SegmentHolder(seg)
    arr = np.frombuffer(seg.buf, dtype=dtype, count=int(np.prod(shape)))
    arr = arr.reshape(shape).view(ShmArray)
    arr._segment = holder
    return arr


def shm_full(shape: tuple[int, ...], fill: float,
             dtype: Any = np.float64) -> ShmArray:
    """A new :class:`ShmArray` filled with ``fill`` — signature-matched
    to :func:`repro.samr.dataobject.set_array_allocator`."""
    arr = shm_empty(shape, dtype)
    arr.fill(fill)
    return arr


def shm_allocator(shape: tuple[int, ...], fill: float,
                  dtype: Any = np.float64) -> np.ndarray:
    """The allocator the ``mp`` worker installs for SAMR patch storage."""
    return shm_full(shape, fill, dtype)


# ---------------------------------------------------------------- blobs
def encode_blob(data: bytes, min_bytes: int | None = None) -> Any:
    """``("blob", data)`` or, above the shm threshold,
    ``("blob-shm", name, nbytes)`` with the bytes spooled into a shared
    segment.

    Used for opaque payloads that must not clog the result queue — a
    worker's drained trace/metrics/profile pickle can run to megabytes,
    and a pipe-bound ``Queue`` would serialize the whole teardown on it.
    The receiver owns (and unlinks) the segment.
    """
    limit = min_shm_bytes() if min_bytes is None else min_bytes
    if len(data) < limit:
        return ("blob", data)
    seg = shared_memory.SharedMemory(create=True, size=len(data))
    seg.buf[:len(data)] = data
    name = seg.name
    seg.close()
    return ("blob-shm", name, len(data))


def decode_blob(envelope: Any) -> bytes:
    """Reverse of :func:`encode_blob`; unlinks the segment if any."""
    if envelope[0] == "blob":
        return envelope[1]
    _, name, nbytes = envelope
    seg = shared_memory.SharedMemory(name=name)
    try:
        data = bytes(seg.buf[:nbytes])
    finally:
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        seg.close()
    return data


# ---------------------------------------------------------------- messages
def encode_message(obj: Any) -> tuple[Any, int]:
    """``(envelope, nbytes)`` for one cross-process message.

    The envelope is either ``("pickle", blob)`` or ``("shm", pickle5,
    segment_name, [(offset, nbytes), ...])``.  ``nbytes`` counts the
    full payload (pickle stream + array buffers) and feeds the machine
    model's alpha-beta cost, mirroring ``_isolate`` on the threads path.
    """
    buffers: list[pickle.PickleBuffer] = []
    try:
        data = pickle.dumps(obj, protocol=5,
                            buffer_callback=buffers.append)
        views = [b.raw() for b in buffers]
    except (pickle.PicklingError, BufferError):
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return ("pickle", blob), len(blob)
    total = sum(v.nbytes for v in views)
    if not views or total < min_shm_bytes():
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return ("pickle", blob), len(blob)
    seg = shared_memory.SharedMemory(create=True, size=total)
    layout: list[tuple[int, int]] = []
    pos = 0
    for view in views:
        nb = view.nbytes
        seg.buf[pos:pos + nb] = view
        layout.append((pos, nb))
        pos += nb
    name = seg.name
    for b in buffers:
        b.release()
    seg.close()  # the receiver owns (and unlinks) the segment from here
    return ("shm", data, name, layout), len(data) + total


def discard_message(envelope: Any) -> None:
    """Free an envelope that will never be decoded (a dropped send)."""
    if not envelope or envelope[0] != "shm":
        return
    name = envelope[2]
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    seg.close()
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):
        pass


def decode_message(envelope: Any) -> Any:
    """Reverse of :func:`encode_message` (zero-copy for the shm form)."""
    kind = envelope[0]
    if kind == "pickle":
        return pickle.loads(envelope[1])
    _, data, name, layout = envelope
    seg = shared_memory.SharedMemory(name=name)
    try:
        seg.unlink()  # pages live until the mapping (the arrays) dies
    except (FileNotFoundError, OSError):
        pass
    base = seg.buf
    _detach(seg)
    bufs = [base[pos:pos + nb] for pos, nb in layout]
    return pickle.loads(data, buffers=bufs)


Allocator = Callable[[tuple[int, ...], float, Any], np.ndarray]
