"""The execution-backend contract every transport implements."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import MPIError
from repro.mpi.perfmodel import MachineModel, LOCALHOST


class BackendUnavailableError(MPIError):
    """The selected backend cannot run in this environment (missing
    optional dependency, unsupported platform...).  The message says
    exactly what is missing and which backends *are* available."""


class ExecBackend:
    """One way of realizing "P processors running the same program".

    Subclasses provide :meth:`run` with the exact semantics of the
    historical :func:`repro.mpi.launcher.mpirun`: execute
    ``main(comm, *args)`` on ``nprocs`` ranks, return per-rank results
    in rank order, raise :class:`~repro.mpi.launcher.RankFailure`
    carrying every primary traceback when any rank fails.
    """

    #: registry name; also what cache keys and job records carry.
    name: str = "?"
    #: one-line description for CLIs and error messages.
    description: str = ""

    def available(self) -> tuple[bool, str]:
        """(usable-here?, reason-when-not)."""
        return True, ""

    def require_available(self) -> None:
        ok, reason = self.available()
        if not ok:
            from repro.exec import backend_names
            usable = [n for n in backend_names() if n != self.name]
            raise BackendUnavailableError(
                f"execution backend {self.name!r} is unavailable: {reason} "
                f"(usable backends: {', '.join(usable)})")

    def run(self, nprocs: int, main: Callable[..., Any],
            args: Sequence[Any] = (), machine: MachineModel = LOCALHOST,
            return_clocks: bool = False) -> list[Any]:
        raise NotImplementedError
