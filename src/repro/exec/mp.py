"""The ``mp`` backend: real worker processes, shared-memory arrays.

Where the ``threads`` backend emulates "P processors" with rank-threads
and virtual clocks, this backend actually forks P worker processes —
real cores, real wall-clock speedups, real private address spaces (the
property the paper's SCMD mode takes for granted and rank-threads
violate).  The pieces:

* **Transport** — each rank owns a ``multiprocessing.Queue`` inbox;
  envelopes are produced by :func:`repro.exec.shm.encode_message`, so
  small messages ride the pipe in-band while large array payloads move
  through shared-memory segments with a zero-copy receive.
* **Communicator** — :class:`MPComm` mirrors
  :class:`repro.mpi.comm.Comm` method-for-method (p2p, probes,
  requests, split/dup, virtual clocks, fault hooks); the collective
  front-ends come from the same
  :class:`~repro.mpi.collectives.CollectiveMixin`, driven here by a
  gather-to-local-root / broadcast-result rendezvous.  Because the
  ``finish`` reduction runs exactly once (on comm rank 0, in sorted
  rank order), collective results are bit-identical with the threads
  backend.
* **Failure paths** — a crashed rank pickles its traceback *text* back
  to the parent (:class:`~repro.mpi.launcher.RemoteRankError`) and trips
  a shared abort event so its peers raise
  :class:`~repro.errors.CommAbortedError` instead of deadlocking;
  silently-dead processes (``os.kill``, segfault) are detected by the
  parent's reaper and synthesized into the same
  :class:`~repro.mpi.launcher.RankFailure`.
* **Fault injection** — workers inherit the armed plan *and counters*
  at fork (so ``kill_max_fires`` survives a supervised restart) and
  ship their final counters home; the parent folds the per-worker
  deltas back into its own counters, keeping
  :func:`repro.resilience.faults.injected_counts` accurate across
  process boundaries.

The runtime race sanitizer is thread-backend-only by construction — its
vector-clock shadow table assumes a shared address space.  Selecting
``mp`` while ``REPRO_TSAN`` is armed degrades to a
:class:`RuntimeWarning` and runs unsanitized.

Start method: ``fork`` (required — SCMD ``main`` callables are
closures, which cannot cross a ``spawn`` boundary).  Platforms without
``fork`` report unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _queue
import time
import traceback
import warnings
from typing import Any, Callable, Sequence

from repro.errors import CommAbortedError, MPIError
from repro.exec import shm as _shm
from repro.exec.base import ExecBackend
from repro.mpi.collectives import CollectiveMixin
from repro.mpi.comm import (ANY_SOURCE, ANY_TAG, Comm, Request, Status,
                            _Message, _RankState)
from repro.mpi.perfmodel import MachineModel, LOCALHOST
from repro.mpi import sanitizer as _tsan
from repro.obs import profiler as _profiler
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.resilience import faults as _faults
from repro.util import logging as rlog

_POLL_INTERVAL = 0.05
#: grace period between "worker process is dead" and "synthesize its
#: failure" — covers the window where its last record is still in flight.
_DEATH_GRACE = 1.0
#: the world communicator's id on this backend (ids are strings derived
#: deterministically, no central allocator — see MPComm.split).
WORLD_ID = "w"


class _Station:
    """One worker's post office: its inbox, peers' inboxes, the abort
    flag, and the stash of not-yet-consumed envelopes.

    Envelope kinds on an inbox (all payloads via
    :func:`~repro.exec.shm.encode_message`):

    * ``("p2p", comm_id, (source, tag, nbytes, avail_time, serial),
      env)`` — env decodes to the payload;
    * ``("coll", comm_id, seq, env)`` — a member's contribution to the
      comm's local root; decodes to ``(rank, contribution, clock)``;
    * ``("collr", comm_id, seq, env)`` — the root's result broadcast;
      decodes to ``(result, exit_clock)``.

    Out-of-order arrival across communicators/sequences is absorbed by
    the stash; a matching wait never consumes someone else's envelope.
    """

    def __init__(self, rank: int, nprocs: int, inboxes: list, abort,
                 machine: MachineModel) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.inboxes = inboxes
        self.abort = abort
        self.machine = machine
        self._p2p: dict[str, list[_Message]] = {}
        self._coll: dict[tuple[str, int], dict[int, tuple[Any, float]]] = {}
        self._collr: dict[tuple[str, int], tuple[Any, float]] = {}
        self._send_serial = 0

    def check_alive(self) -> None:
        if self.abort.is_set():
            raise CommAbortedError("world aborted by a peer rank")

    def next_serial(self) -> int:
        self._send_serial += 1
        return self._send_serial

    def post(self, dest_global: int, item: tuple) -> None:
        self.inboxes[dest_global].put(item)

    def _pump(self, timeout: float) -> None:
        """File inbox envelopes into the stash; wait up to ``timeout``
        for the first when none are ready."""
        inbox = self.inboxes[self.rank]
        try:
            item = inbox.get(timeout=timeout)
        except _queue.Empty:
            return
        while True:
            self._file(item)
            try:
                item = inbox.get_nowait()
            except _queue.Empty:
                return

    def _file(self, item: tuple) -> None:
        kind = item[0]
        if kind == "p2p":
            _, cid, header, env = item
            source, tag, nbytes, avail, serial = header
            payload = _shm.decode_message(env)
            self._p2p.setdefault(cid, []).append(
                _Message(source, tag, payload, nbytes, avail, serial))
        elif kind == "coll":
            _, cid, seq, env = item
            rank, contribution, clock = _shm.decode_message(env)
            self._coll.setdefault((cid, seq), {})[rank] = (contribution,
                                                           clock)
        elif kind == "collr":
            _, cid, seq, env = item
            self._collr[(cid, seq)] = _shm.decode_message(env)
        else:  # pragma: no cover - protocol bug guard
            raise MPIError(f"unknown mp envelope kind {kind!r}")

    # -- waits (all poll the abort flag) ----------------------------------
    def wait_p2p(self, cid: str, source: int, tag: int) -> _Message:
        while True:
            msg = Comm._match(self._p2p.get(cid, []), source, tag,
                              remove=True)
            if msg is not None:
                return msg
            self.check_alive()
            self._pump(_POLL_INTERVAL)

    def peek_p2p(self, cid: str, source: int, tag: int,
                 block: bool) -> _Message | None:
        while True:
            msg = Comm._match(self._p2p.get(cid, []), source, tag,
                              remove=False)
            if msg is not None or not block:
                return msg
            self.check_alive()
            self._pump(_POLL_INTERVAL)

    def wait_contribs(self, cid: str, seq: int,
                      expected: int) -> dict[int, tuple[Any, float]]:
        """Block until ``expected`` non-root contributions arrived."""
        key = (cid, seq)
        while True:
            got = self._coll.get(key, {})
            if len(got) >= expected:
                self._coll.pop(key, None)
                return got
            self.check_alive()
            self._pump(_POLL_INTERVAL)

    def wait_result(self, cid: str, seq: int) -> tuple[Any, float]:
        key = (cid, seq)
        while True:
            if key in self._collr:
                return self._collr.pop(key)
            self.check_alive()
            self._pump(_POLL_INTERVAL)


class MPComm(CollectiveMixin):
    """One rank's communicator on the ``mp`` backend.

    API-compatible with :class:`repro.mpi.comm.Comm` (the SCMD layer
    never sees the difference); ``members`` maps comm rank -> global
    rank so scoped communicators route over the same per-rank inboxes.
    """

    def __init__(self, station: _Station, comm_id: str, rank: int,
                 size: int, global_rank: int, members: list[int]) -> None:
        self._station = station
        self.id = comm_id
        self.rank = rank
        self.size = size
        self.global_rank = global_rank
        self._members = members
        self._coll_seq = 0
        self._split_seq = 0
        self._state = _RankState()

    @property
    def world(self) -> "MPComm":  # minimal World-ish surface
        return self

    @property
    def machine(self) -> MachineModel:
        return self._station.machine

    def check_alive(self) -> None:
        self._station.check_alive()

    # -- virtual time -----------------------------------------------------
    def _sync(self) -> None:
        self._state.sync_compute(self._station.machine)

    @property
    def clock(self) -> float:
        self._sync()
        return self._state.clock

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise MPIError("cannot advance the clock backwards")
        self._sync()
        self._state.clock += seconds

    def reset_clock(self) -> None:
        self._sync()
        self._state.clock = 0.0

    # -- point-to-point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffered send."""
        self._post_send(obj, dest, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (buffered, completes immediately)."""
        self._post_send(obj, dest, tag)
        return Request(lambda: None, lambda: True)

    def _post_send(self, obj: Any, dest: int, tag: int) -> None:
        self._station.check_alive()
        if not (0 <= dest < self.size):
            raise MPIError(
                f"send dest {dest} out of range for size {self.size}")
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        env, nbytes = _shm.encode_message(obj)
        machine = self._station.machine
        avail = self._state.clock + machine.p2p_time(nbytes)
        if _faults.on:
            fate = _faults.on_send(self.global_rank, dest, tag)
            if fate is _faults.DROP:
                self._state.clock += machine.send_overhead(nbytes)
                _shm.discard_message(env)  # nobody will ever attach it
                return
            avail += fate
        header = (self.rank, tag, nbytes, avail,
                  self._station.next_serial())
        self._state.clock += machine.send_overhead(nbytes)
        self._station.post(self._members[dest],
                           ("p2p", self.id, header, env))
        if _obs.on:
            _obs.complete("mpi.send", "mpi", t0, dest=dest, tag=tag,
                          nbytes=nbytes, vt=self._state.clock)
            reg = _obs_registry()
            reg.counter("mpi.sends", rank=self.global_rank).inc()
            reg.counter("mpi.bytes_sent", rank=self.global_rank).inc(nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        """Blocking receive; wildcards ``ANY_SOURCE`` / ``ANY_TAG``."""
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        vt_in = self._state.clock
        msg = self._station.wait_p2p(self.id, source, tag)
        self._state.clock = max(self._state.clock, msg.avail_time)
        if _obs.on:
            _obs.complete("mpi.recv", "mpi", t0, source=msg.source,
                          tag=msg.tag, nbytes=msg.nbytes,
                          vt=self._state.clock,
                          vt_wait=self._state.clock - vt_in)
            reg = _obs_registry()
            reg.counter("mpi.recvs", rank=self.global_rank).inc()
            reg.histogram("mpi.recv_wait_seconds",
                          rank=self.global_rank).observe(
                time.perf_counter() - t0)
        if status is not None:
            status.source = msg.source
            status.tag = msg.tag
            status.nbytes = msg.nbytes
        return msg.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns the payload."""
        return Request(
            lambda: self.recv(source, tag),
            lambda: self.iprobe(source, tag),
        )

    def sendrecv(self, sendobj: Any, dest: int, sendtag: int = 0,
                 source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
                 status: Status | None = None) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self._post_send(sendobj, dest, sendtag)
        return self.recv(source, recvtag, status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; don't consume."""
        msg = self._station.peek_p2p(self.id, source, tag, block=True)
        return Status(msg.source, msg.tag, msg.nbytes)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is waiting."""
        self._station.check_alive()
        self._station._pump(0.0)
        return self._station.peek_p2p(self.id, source, tag,
                                      block=False) is not None

    # -- collectives ------------------------------------------------------
    def _collective(self, contribution: Any,
                    finish: Callable[[dict[int, Any]], tuple[Any, float]],
                    label: str = "collective") -> Any:
        """Gather-to-local-root rendezvous: every member ships its
        contribution (and entry clock) to comm rank 0, which runs
        ``finish`` exactly once and broadcasts ``(result, exit_clock)``.
        Same contract as the threads rendezvous: everyone leaves at
        ``max(entry clocks) + comm_cost`` holding the shared result."""
        t0 = time.perf_counter() if _obs.on else 0.0
        self._sync()
        self._coll_seq += 1
        seq = self._coll_seq
        station = self._station
        if self.rank == 0:
            others = station.wait_contribs(self.id, seq, self.size - 1)
            contribs = {r: c for r, (c, _) in others.items()}
            contribs[0] = contribution
            entry_max = max([clk for _, clk in others.values()]
                            + [self._state.clock])
            result, cost = finish(contribs)
            exit_clock = entry_max + cost
            # one envelope per member: a shm segment is single-consumer
            # (the receiver unlinks it at attach), so the result cannot
            # ride one shared envelope
            for member in range(1, self.size):
                wire, _ = _shm.encode_message((result, exit_clock))
                station.post(self._members[member],
                             ("collr", self.id, seq, wire))
        else:
            wire, _ = _shm.encode_message(
                (self.rank, contribution, self._state.clock))
            station.post(self._members[0], ("coll", self.id, seq, wire))
            result, exit_clock = station.wait_result(self.id, seq)
        self._state.clock = max(self._state.clock, exit_clock)
        if _obs.on:
            _obs.complete(f"mpi.{label}", "mpi", t0, size=self.size,
                          vt=self._state.clock)
            _obs_registry().counter("mpi.collectives", op=label,
                                    rank=self.global_rank).inc()
        return result

    # barrier/bcast/reduce/allreduce/gather/allgather/scatter/alltoall
    # are inherited from CollectiveMixin, driven by _collective above.

    # -- communicator management -----------------------------------------
    def split(self, color: int, key: int | None = None) -> "MPComm":
        """Partition members by ``color``; order within a group by
        ``key``.  Comm ids are agreed *deterministically*: every member
        derives ``parent_id/split_seq:color`` locally — all members call
        split collectively, so their per-comm split counters agree and
        no central id allocator is needed across processes."""
        key = self.rank if key is None else key
        triples = self.allgather((color, key, self.rank, self.global_rank))
        self._split_seq += 1
        mine = sorted(
            (k, r, g) for (c, k, r, g) in triples if c == color)
        new_rank = [r for (_, r, _) in mine].index(self.rank)
        members = [g for (_, _, g) in mine]
        new_id = f"{self.id}/{self._split_seq}:{color}"
        child = MPComm(self._station, new_id, new_rank, len(members),
                       self.global_rank, members)
        child._state = self._state  # one clock per rank, as on threads
        return child

    def dup(self) -> "MPComm":
        """Duplicate this communicator (fresh message/collective space)."""
        return self.split(color=0, key=self.rank)

    def abort(self, reason: str = "user abort") -> None:
        """Abort the whole world."""
        self._station.abort.set()
        raise CommAbortedError(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MPComm(id={self.id!r}, rank={self.rank}/{self.size}, "
                f"global={self.global_rank})")


# ---------------------------------------------------------------- worker
def _obs_ship_enabled() -> bool:
    """``REPRO_OBS_SHIP=0`` disables worker observability shipping (the
    overhead bench uses it to isolate the shipping cost)."""
    return os.environ.get("REPRO_OBS_SHIP", "1").strip().lower() not in (
        "0", "false", "no", "off")


def _child_obs_setup(trace_ctx: dict | None) -> None:
    """Post-fork observability bootstrap for a worker rank.

    The fork hands the worker the parent's trace buffers, metrics
    values, and profiler ring *by value* — all of which the parent will
    keep and re-absorb, so the worker must drop them or every parent
    event would come home duplicated.  The session origin ``_t0`` and
    the enabled flags are kept (that is what makes the worker's events
    land on the parent's timeline), the launching thread's trace
    context is re-established, and the sampler thread — which did not
    survive the fork — is restarted fresh when ``REPRO_PROFILE`` armed
    the parent.
    """
    if _obs.on:
        _obs.child_reset()
        _obs_registry().reset()
        if trace_ctx:
            _obs._tls.ctx = dict(trace_ctx)
    if _profiler.on and _obs_ship_enabled():
        inherited = _profiler.get()
        _profiler.start(
            interval=inherited.interval if inherited is not None else None)


def _ship_obs(rank: int) -> Any:
    """Drain this worker's observability state into a blob envelope
    (``None`` when there is nothing to ship or shipping is disabled).

    The payload — span events, a metrics-registry snapshot, rank-tagged
    profiler samples — is pickled once and spooled through the shm
    transport when large, so a trace-heavy rank cannot clog the result
    pipe."""
    if not _obs_ship_enabled():
        return None
    prof = _profiler.stop() if _profiler.on else None
    if not _obs.on and prof is None:
        return None
    payload: dict[str, Any] = {"rank": rank}
    if _obs.on:
        payload["events"] = _obs.drain_events()
        payload["metrics"] = _obs_registry().snapshot()
    if prof is not None:
        payload["profile"] = [s._replace(rank=rank)
                              for s in prof.samples()]
    try:
        return _shm.encode_blob(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable span arg: drop the rank's payload
        return None


def _fold_obs(records: dict[int, tuple]) -> None:
    """Parent-side half of obs shipping: decode every worker's payload
    (always — an undecoded blob would leak its shm segment) and fold
    events, metrics, and profiler samples into this process's session."""
    for rank in sorted(records):
        env = records[rank][-1]
        if env is None:
            continue
        try:
            payload = pickle.loads(_shm.decode_blob(env))
        except Exception:
            continue
        evs = payload.get("events")
        if evs:
            _obs.absorb(evs, label=f"mp-rank-{payload.get('rank', rank)}")
        snap = payload.get("metrics")
        if snap:
            _obs_registry().merge_snapshot(snap)
        samples = payload.get("profile")
        if samples:
            prof = _profiler.get()
            if prof is not None:
                prof.absorb(samples)


def _worker(rank: int, nprocs: int, machine: MachineModel,
            main: Callable[..., Any], args: Sequence[Any],
            inboxes: list, result_q, abort_evt,
            trace_ctx: dict | None = None) -> None:
    """Worker-process body for one rank (post-fork)."""
    # The sanitizer's shadow state is meaningless here: this process IS
    # the private address space.  Disarm locally (fork-isolated write).
    _tsan.on = False
    _child_obs_setup(trace_ctx)
    # SAMR patch arrays go into shared segments for this rank's lifetime.
    from repro.samr import dataobject as _dobj
    _dobj.set_array_allocator(_shm.shm_allocator)

    station = _Station(rank, nprocs, inboxes, abort_evt, machine)
    comm = MPComm(station, WORLD_ID, rank, nprocs, rank,
                  list(range(nprocs)))
    record: tuple
    with rlog.rank_context(rank):
        try:
            comm.reset_clock()  # don't charge fork/bootstrap time
            value = main(comm, *args)
            record = ("ok", rank, value, comm.clock, _counts())
        except CommAbortedError as exc:
            record = ("aborted", rank, str(exc), _counts())
        except BaseException as exc:  # noqa: BLE001 - report all
            abort_evt.set()
            record = ("err", rank, type(exc).__name__, str(exc),
                      traceback.format_exc(), _counts())
        obs_env = _ship_obs(rank)
    record = record + (obs_env,)
    # Flush any still-buffered inter-rank messages before reporting:
    # Queue.put hands items to a feeder thread, and a receiver may be
    # blocked on something this rank sent just before finishing.
    for q in inboxes:
        q.close()
        q.join_thread()
    try:
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable per-rank result
        blob = pickle.dumps(
            ("err", rank, type(exc).__name__,
             f"rank result is not picklable: {exc}",
             traceback.format_exc(), _counts(), obs_env),
            protocol=pickle.HIGHEST_PROTOCOL)
    result_q.put(blob)
    result_q.close()
    result_q.join_thread()
    # Unlink this rank's shared patch segments explicitly: os._exit
    # skips finalizers, and unreleased names would survive as tracker
    # "leak" warnings at session shutdown.
    _shm.release_owned()
    # Hard exit: skip the parent's inherited atexit handlers (obs
    # flushers, bench ledger writers) — this is a rank, not the session.
    os._exit(0)


def _counts() -> dict | None:
    return _faults.snapshot_counts() if _faults.on else None


class MPBackend(ExecBackend):
    """P forked worker processes (see module docstring)."""

    name = "mp"
    description = ("forked worker processes + shared-memory arrays "
                   "(real cores)")

    def available(self) -> tuple[bool, str]:
        if "fork" not in multiprocessing.get_all_start_methods():
            return False, ("requires the 'fork' start method, which this "
                           "platform does not provide")
        return True, ""

    def run(self, nprocs: int, main: Callable[..., Any],
            args: Sequence[Any] = (), machine: MachineModel = LOCALHOST,
            return_clocks: bool = False) -> list[Any]:
        from repro.mpi.launcher import RankFailure, RemoteRankError

        if _tsan.on:
            warnings.warn(
                "REPRO_TSAN is armed but the race sanitizer is "
                "thread-backend only: its vector-clock shadow table needs "
                "the shared address space the 'mp' backend exists to "
                "remove. Running this world unsanitized — use "
                "backend='threads' to sanitize.",
                RuntimeWarning, stacklevel=3)

        ctx = multiprocessing.get_context("fork")
        # Spawn the resource tracker *before* forking so every worker
        # shares one tracker process — segments stranded by an abort are
        # then reclaimed when the whole family exits, and a worker's
        # early exit cannot unlink a sibling's in-flight segment.
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()

        inboxes = [ctx.Queue() for _ in range(nprocs)]
        result_q = ctx.Queue()
        abort_evt = ctx.Event()
        fault_base = _counts()
        trace_ctx = _obs.current_context() if _obs.on else None

        procs = [
            ctx.Process(target=_worker,
                        args=(rank, nprocs, machine, main, tuple(args),
                              inboxes, result_q, abort_evt, trace_ctx),
                        name=f"rank-{rank}", daemon=True)
            for rank in range(nprocs)
        ]
        for p in procs:
            p.start()

        records: dict[int, tuple] = {}
        dead_since: dict[int, float] = {}
        try:
            while len(records) < nprocs:
                try:
                    rec = pickle.loads(result_q.get(timeout=_POLL_INTERVAL))
                    records[rec[1]] = rec
                    continue
                except _queue.Empty:
                    pass
                now = time.monotonic()
                for rank, proc in enumerate(procs):
                    if rank in records or proc.is_alive():
                        continue
                    # Dead without a record: grace-wait for a final blob
                    # still in the pipe, then synthesize the failure.
                    first_seen = dead_since.setdefault(rank, now)
                    if now - first_seen < _DEATH_GRACE:
                        continue
                    abort_evt.set()
                    reason = (f"rank {rank} worker process died with exit "
                              f"code {proc.exitcode} before reporting a "
                              f"result")
                    records[rank] = (
                        "err", rank, "WorkerDied", reason,
                        f"WorkerDied: {reason} (killed or segfaulted; no "
                        f"Python traceback exists)", None, None)
        finally:
            for p in procs:
                p.join(timeout=5.0)
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            for q in inboxes + [result_q]:
                q.cancel_join_thread()
                q.close()

        # Fold worker obs payloads before anything can raise: failed
        # runs keep their partial traces, and skipping a decode would
        # leak the payload's shm segment.
        _fold_obs(records)

        if _faults.on and fault_base is not None:
            _faults.merge_counts(
                fault_base,
                [r[-2] for r in records.values() if r[-2] is not None])

        failures: dict[int, BaseException] = {}
        secondary: dict[int, BaseException] = {}
        for rank in sorted(records):
            rec = records[rank]
            if rec[0] == "err":
                failures[rank] = RemoteRankError(rec[2], rec[3], rec[4])
            elif rec[0] == "aborted":
                secondary[rank] = CommAbortedError(rec[2])
        if failures or secondary:
            raise RankFailure(failures or secondary)

        results = [records[r][2] for r in range(nprocs)]
        clocks = [records[r][3] for r in range(nprocs)]
        if _obs.on and nprocs > 1:
            from repro.obs.aggregate import record_rank_clocks
            summary = record_rank_clocks(clocks)
            _obs.instant(
                "mpi.world_teardown", "launcher", nprocs=nprocs,
                imbalance=summary["stats"]["imbalance"],
                clock_max=summary["stats"]["max"],
                clock_mean=summary["stats"]["mean"])
        if return_clocks:
            return [(results[r], clocks[r]) for r in range(nprocs)]
        return results
