"""The ``threads`` backend: in-process rank-threads + virtual clocks.

This is the toolkit's original execution substrate, moved out of
:mod:`repro.mpi.launcher` unchanged in semantics: P rank-threads inside
one Python process, each owning a :class:`~repro.mpi.comm.Comm` onto a
shared :class:`~repro.mpi.comm.World`; compute time is charged from each
thread's CPU clock, communication from the machine model.  Deterministic
shape, instant start-up, full support for the vector-clock race
sanitizer (the only backend with a shared address space to sanitize) —
and GIL-bound wall-clock, which is exactly what the ``mp`` backend
exists to escape.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.errors import CommAbortedError
from repro.exec.base import ExecBackend
from repro.mpi import sanitizer as _tsan
from repro.mpi.comm import Comm, World
from repro.mpi.perfmodel import MachineModel, LOCALHOST
from repro.obs import trace as _trace
from repro.obs.aggregate import record_rank_clocks
from repro.util import logging as rlog


class ThreadsBackend(ExecBackend):
    """P rank-threads in this process (see module docstring)."""

    name = "threads"
    description = ("in-process rank-threads, virtual clocks "
                   "(deterministic; default)")

    def run(self, nprocs: int, main: Callable[..., Any],
            args: Sequence[Any] = (), machine: MachineModel = LOCALHOST,
            return_clocks: bool = False) -> list[Any]:
        from repro.mpi.launcher import RankFailure

        world = World(nprocs, machine)
        results: list[Any] = [None] * nprocs
        clocks: list[float] = [0.0] * nprocs
        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        # Thread-locals don't cross a Thread boundary: re-establish the
        # launching thread's trace context (job/trace ids from
        # repro.serve) inside every rank thread so rank spans stay
        # attributable to the job that spawned them.
        parent_ctx = _trace.current_context() if _trace.on else {}

        def runner(rank: int) -> None:
            comm = Comm(world, comm_id=0, rank=rank, size=nprocs,
                        global_rank=rank)
            # Rank-tag the thread for logging AND repro.obs trace
            # attribution; restored (not cleared) so the inline
            # nprocs == 1 path is safe.
            with rlog.rank_context(rank), _trace.context(**parent_ctx):
                try:
                    comm.reset_clock()  # don't charge thread start-up
                    results[rank] = main(comm, *args)
                    clocks[rank] = comm.clock
                except CommAbortedError as exc:
                    # Secondary failure: this rank was unblocked by a
                    # peer's abort.
                    with failures_lock:
                        failures.setdefault(rank, exc)
                except BaseException as exc:  # noqa: BLE001 - report all
                    with failures_lock:
                        failures[rank] = exc
                    world.abort(
                        f"rank {rank} raised {type(exc).__name__}: {exc}")

        # While the sanitizer is armed, give this world fresh vector
        # clocks and a fresh shadow table — the disabled cost is one
        # flag check.
        if _tsan.on:
            _tsan.world_begin(nprocs)
        try:
            if nprocs == 1:
                # Fast path: run inline (no thread) — keeps unit tests
                # cheap and tracebacks direct.
                runner(0)
            else:
                threads = [
                    threading.Thread(target=runner, args=(rank,),
                                     name=f"rank-{rank}")
                    for rank in range(nprocs)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        finally:
            if _tsan.on:
                _tsan.world_end()

        if failures:
            # Report only primary failures when present; a world-abort
            # cascade otherwise shows every waiting rank as failed.
            primary = {
                r: e for r, e in failures.items()
                if not isinstance(e, CommAbortedError)
            }
            raise RankFailure(primary or failures)
        if _trace.on and nprocs > 1:
            # Teardown aggregation: every traced SCMD run records each
            # rank's final virtual clock plus the reduced summary
            # (max/avg imbalance, p95, ...) into the default registry —
            # the per-rank breakdown the scaling benches and the metrics
            # JSON report.
            summary = record_rank_clocks(clocks)
            _trace.instant(
                "mpi.world_teardown", "launcher", nprocs=nprocs,
                imbalance=summary["stats"]["imbalance"],
                clock_max=summary["stats"]["max"],
                clock_mean=summary["stats"]["mean"])
        if return_clocks:
            return [(results[r], clocks[r]) for r in range(nprocs)]
        return results
