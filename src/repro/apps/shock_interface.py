"""The 2D shock / density-interface application (paper §4.3, Table 3,
Figs. 5-7).

A Mach-1.5 shock in "air" ruptures an oblique (30 deg) interface to a
3x-denser gas ("Freon") inside a shock tube: reflecting walls above and
below, outflow on the right.  Godunov fluxes on a multi-level AMR mesh;
swapping ``GodunovFlux`` for ``EFMFlux`` is one connect line
(``flux_scheme`` parameter here).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.ports.go import GoPort
from repro.components import (
    BoundaryConditions,
    CharacteristicQuantities,
    ConicalInterfaceIC,
    EFMFlux,
    ErrorEstAndRegrid,
    ExplicitIntegratorRK2,
    GasProperties,
    GodunovFlux,
    GrACEComponent,
    InviscidFlux,
    ProlongRestrict,
    StatisticsComponent,
    States,
)
from repro.hydro.diagnostics import hierarchy_interface_circulation
from repro.obs import trace as _trace
from repro.resilience.hooks import CheckpointHook


class _Go(GoPort):
    def __init__(self, owner: "ShockInterfaceDriver") -> None:
        self.owner = owner

    def go(self) -> dict[str, Any]:
        return self.owner.run()


class ShockInterfaceDriver(Component):
    """Drives the shock-interface assembly.

    Uses ``mesh``, ``data``, ``ic``, ``integrator``, ``regrid``, ``gas``,
    ``stats``.  Parameters: ``t_end_over_tau`` (default 2.096 — the
    paper's Fig. 6 time), ``cfl_safety``, ``regrid_interval``,
    ``max_steps``.
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("data", "DataObjectPort")
        services.register_uses_port("ic", "InitialConditionPort")
        services.register_uses_port("integrator", "IntegratorPort")
        services.register_uses_port("regrid", "RegridPort")
        services.register_uses_port("gas", "ParameterPort")
        services.register_uses_port("stats", "StatisticsPort")
        services.add_provides_port(_Go(self), "go")

    def run(self) -> dict[str, Any]:
        services = self.services
        mesh = services.get_port("mesh")
        data = services.get_port("data")
        ic = services.get_port("ic")
        integrator = services.get_port("integrator")
        regrid = services.get_port("regrid")
        gas = services.get_port("gas")
        stats = services.get_port("stats")
        p = services.parameters
        comm = services.get_comm()

        gamma = float(gas.get("gamma", 1.4))
        t_end_over_tau = p.get_float("t_end_over_tau", 2.096)
        regrid_interval = p.get_int("regrid_interval", 4)
        max_steps = p.get_int("max_steps", 100000)
        initial_regrids = p.get_int("initial_regrids", 0)

        mesh.build_base_level()
        dobj = data.declare(
            "U", 5, ["rho", "mx", "my", "E", "rho_zeta"])
        ic.initialize(dobj)
        h = mesh.hierarchy()
        for lev in range(h.nlevels):
            data.exchange_ghosts("U", lev)
        for _ in range(initial_regrids):
            regrid.regrid()
            ic.initialize(dobj)
            for lev in range(h.nlevels):
                data.exchange_ghosts("U", lev)

        # tau: time for the shock to traverse the oblique interface
        # footprint: Delta x = H * tan(angle); shock speed W = M * a1.
        # The t/tau clock starts when the shock first touches the
        # interface foot (the paper's "elapsed time" of the interaction).
        mach = p.get_float("mach", 1.5)
        angle = np.deg2rad(p.get_float("angle_deg", 30.0))
        height = p.get_float("y_extent", 0.5)
        shock_x = p.get_float("shock_x", 0.2)
        interface_x = p.get_float("interface_x", 0.4)
        a1 = np.sqrt(gamma * 1.0 / 1.0)
        w_shock = mach * a1
        tau = height * np.tan(angle) / w_shock
        t_contact = max(interface_x - shock_x, 0.0) / w_shock
        t_end = t_contact + t_end_over_tau * tau

        t, step = 0.0, 0
        gamma_series = []
        hook = CheckpointHook(services)
        resumed = hook.resume()
        if resumed is not None:
            step, t = resumed.step, resumed.t
            dobj = data.data("U")  # adopt() swapped the DataObjects
            h = mesh.hierarchy()
            gamma_series = stats.series("circulation")
        while t < t_end - 1e-12 and step < max_steps:
            # driver.step spans are the flamegraph roots the sampling
            # profiler attributes component time under
            with _trace.span("driver.step", "driver", step=step + 1):
                dt = min(integrator.stable_dt([dobj], t), t_end - t)
                integrator.advance([dobj], t, dt)
                t += dt
                step += 1
                if regrid_interval and h.max_levels > 1 \
                        and step % regrid_interval == 0:
                    regrid.regrid()
                circ = hierarchy_interface_circulation(dobj, gamma,
                                                       comm=comm)
                stats.record("circulation", (t - t_contact) / tau, circ)
                gamma_series.append(((t - t_contact) / tau, circ))
                hook.after_step(step, t)

        return {
            "t_final": t,
            "tau": tau,
            "steps": step,
            "nlevels": h.nlevels,
            "total_cells": h.total_cells(),
            "circulation": gamma_series,
            "circulation_final": gamma_series[-1][1] if gamma_series else 0.0,
            "circulation_min": (min(c for _, c in gamma_series)
                                if gamma_series else 0.0),
        }


SHOCK_COMPONENTS = [
    GrACEComponent,
    ConicalInterfaceIC,
    GasProperties,
    States,
    GodunovFlux,
    EFMFlux,
    InviscidFlux,
    CharacteristicQuantities,
    ExplicitIntegratorRK2,
    BoundaryConditions,
    ErrorEstAndRegrid,
    ProlongRestrict,
    StatisticsComponent,
    ShockInterfaceDriver,
]


def build_shock_interface(
    framework: Framework,
    nx: int = 64,
    ny: int = 32,
    x_extent: float = 1.0,
    y_extent: float = 0.5,
    max_levels: int = 2,
    mach: float = 1.5,
    density_ratio: float = 3.0,
    angle_deg: float = 30.0,
    flux_scheme: str = "godunov",
    t_end_over_tau: float = 2.096,
    regrid_interval: int = 4,
    threshold: float = 0.12,
    initial_regrids: int = 0,
    cfl: float = 0.4,
) -> None:
    """Instantiate and wire the shock-interface assembly (Fig. 5).

    ``flux_scheme``: ``godunov`` or ``efm`` — the component swap of the
    paper's conclusion item 3.
    """
    framework.registry.register_many(SHOCK_COMPONENTS)
    for cls, name in [
        (GrACEComponent, "AMRMesh"),
        (ConicalInterfaceIC, "ConicalInterfaceIC"),
        (GasProperties, "GasProperties"),
        (States, "States"),
        (GodunovFlux, "GodunovFlux"),
        (EFMFlux, "EFMFlux"),
        (InviscidFlux, "InviscidFlux"),
        (CharacteristicQuantities, "Characteristics"),
        (ExplicitIntegratorRK2, "ExplicitIntegratorRK2"),
        (BoundaryConditions, "BoundaryConditions"),
        (ErrorEstAndRegrid, "ErrEstimator"),
        (ProlongRestrict, "ProlongRestrict"),
        (StatisticsComponent, "StatisticsComponent"),
        (ShockInterfaceDriver, "Driver"),
    ]:
        framework.instantiate(cls.__name__, name)

    fp = framework.set_parameter
    fp("AMRMesh", "nx", nx)
    fp("AMRMesh", "ny", ny)
    fp("AMRMesh", "x_extent", x_extent)
    fp("AMRMesh", "y_extent", y_extent)
    fp("AMRMesh", "max_levels", max_levels)
    fp("ConicalInterfaceIC", "mach", mach)
    fp("ConicalInterfaceIC", "density_ratio", density_ratio)
    fp("ConicalInterfaceIC", "angle_deg", angle_deg)
    fp("ConicalInterfaceIC", "shock_x", 0.2 * x_extent)
    fp("ConicalInterfaceIC", "interface_x", 0.4 * x_extent)
    # shock tube walls: reflecting above/below, outflow right (paper §4.3)
    fp("BoundaryConditions", "y_low", "reflecting")
    fp("BoundaryConditions", "y_high", "reflecting")
    fp("BoundaryConditions", "x_high", "outflow")
    fp("BoundaryConditions", "x_low", "outflow")
    fp("ErrEstimator", "dataobject", "U")
    fp("ErrEstimator", "variables", "0,3")  # density + energy gradients
    fp("ErrEstimator", "threshold", threshold)
    fp("ExplicitIntegratorRK2", "cfl", cfl)
    fp("Driver", "t_end_over_tau", t_end_over_tau)
    fp("Driver", "regrid_interval", regrid_interval)
    fp("Driver", "mach", mach)
    fp("Driver", "angle_deg", angle_deg)
    fp("Driver", "y_extent", y_extent)
    fp("Driver", "shock_x", 0.2 * x_extent)
    fp("Driver", "interface_x", 0.4 * x_extent)
    fp("Driver", "initial_regrids", initial_regrids)

    fc = framework.connect
    fc("ConicalInterfaceIC", "gas", "GasProperties", "properties")
    flux_provider = "GodunovFlux" if flux_scheme == "godunov" else "EFMFlux"
    fc("InviscidFlux", "states", "States", "states")
    fc("InviscidFlux", "flux", flux_provider, "flux")
    fc("InviscidFlux", "gas", "GasProperties", "properties")
    fc("InviscidFlux", "mesh", "AMRMesh", "mesh")
    fc("Characteristics", "data", "AMRMesh", "data")
    fc("Characteristics", "gas", "GasProperties", "properties")
    fc("ExplicitIntegratorRK2", "rhs", "InviscidFlux", "rhs")
    fc("ExplicitIntegratorRK2", "speeds", "Characteristics", "speeds")
    fc("ExplicitIntegratorRK2", "data", "AMRMesh", "data")
    fc("AMRMesh", "bc", "BoundaryConditions", "bc")
    fc("ErrEstimator", "mesh", "AMRMesh", "mesh")
    fc("ErrEstimator", "data", "AMRMesh", "data")
    fc("Driver", "mesh", "AMRMesh", "mesh")
    fc("Driver", "data", "AMRMesh", "data")
    fc("Driver", "ic", "ConicalInterfaceIC", "ic")
    fc("Driver", "integrator", "ExplicitIntegratorRK2", "integrator")
    fc("Driver", "regrid", "ErrEstimator", "regrid")
    fc("Driver", "gas", "GasProperties", "properties")
    fc("Driver", "stats", "StatisticsComponent", "stats")


def run_shock_interface(comm=None, **kwargs) -> dict[str, Any]:
    """One-call run (serial by default; pass a Comm for SCMD)."""
    framework = Framework(comm=comm)
    build_shock_interface(framework, **kwargs)
    return framework.go("Driver")
