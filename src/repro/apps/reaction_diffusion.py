"""The 2D reaction-diffusion flame application (paper §4.2, Table 2,
Figs. 2-4).

Operator splitting (Strang): a half step of implicit chemistry per cell,
one full explicit RKC diffusion step, another half step of chemistry.
SAMR adaptivity through ``ErrorEstAndRegrid``; all ranks run the same
assembly (SCMD) with the mesh distributed by ``GrACEComponent``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.ports.go import GoPort
from repro.obs import trace as _trace
from repro.components import (
    CvodeComponent,
    DRFMComponent,
    ErrorEstAndRegrid,
    ExplicitIntegrator,
    DiffusionPhysics,
    GrACEComponent,
    ImplicitIntegrator,
    InitialCondition,
    MaxDiffCoeffEvaluator,
    StatisticsComponent,
    ThermoChemistry,
)
from repro.resilience.hooks import CheckpointHook


class _Go(GoPort):
    def __init__(self, owner: "ReactionDiffusionDriver") -> None:
        self.owner = owner

    def go(self) -> dict[str, Any]:
        return self.owner.run()


class ReactionDiffusionDriver(Component):
    """Drives the flame assembly.

    Uses ``mesh``, ``data``, ``ic``, ``explicit`` + ``implicit``
    (IntegratorPorts), ``regrid`` (RegridPort), ``chem``, ``stats``.

    Parameters: ``n_steps``, ``dt`` (0 = dynamic from the RKC stage
    budget), ``regrid_interval`` (0 = adaptivity off), ``chemistry_on``
    (default 1), ``initial_regrids``; plus the checkpoint/restart set
    read by :class:`repro.resilience.hooks.CheckpointHook`.
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("data", "DataObjectPort")
        services.register_uses_port("ic", "InitialConditionPort")
        services.register_uses_port("explicit", "IntegratorPort")
        services.register_uses_port("implicit", "IntegratorPort")
        services.register_uses_port("regrid", "RegridPort")
        services.register_uses_port("chem", "ChemistryPort")
        services.register_uses_port("stats", "StatisticsPort")
        services.add_provides_port(_Go(self), "go")

    def run(self) -> dict[str, Any]:
        services = self.services
        mesh = services.get_port("mesh")
        data = services.get_port("data")
        ic = services.get_port("ic")
        explicit = services.get_port("explicit")
        implicit = services.get_port("implicit")
        regrid = services.get_port("regrid")
        chem = services.get_port("chem")
        stats = services.get_port("stats")
        p = services.parameters

        n_steps = p.get_int("n_steps", 5)
        dt_fixed = p.get_float("dt", 0.0)
        regrid_interval = p.get_int("regrid_interval", 0)
        chemistry_on = p.get_bool("chemistry_on", True)
        initial_regrids = p.get_int("initial_regrids", 0)

        mesh.build_base_level()
        mech = chem.mechanism()
        dobj = data.declare("flow", mech.n_species + 1,
                            ["T"] + [f"Y_{nm}" for nm in mech.names])
        ic.initialize(dobj)
        h = mesh.hierarchy()
        for lev in range(h.nlevels):
            data.exchange_ghosts("flow", lev)
        for _ in range(initial_regrids):
            regrid.regrid()
            ic.initialize(dobj)  # re-impose the exact IC on the new levels
            for lev in range(h.nlevels):
                data.exchange_ghosts("flow", lev)

        t, start_step = 0.0, 0
        hook = CheckpointHook(services)
        resumed = hook.resume()
        if resumed is not None:
            start_step, t = resumed.step, resumed.t
            dobj = data.data("flow")  # adopt() swapped the DataObjects
            h = mesh.hierarchy()
        for step in range(start_step + 1, n_steps + 1):
            # driver.step spans are the flamegraph roots the sampling
            # profiler attributes component time under
            with _trace.span("driver.step", "driver", step=step):
                dt = dt_fixed if dt_fixed > 0.0 else \
                    explicit.stable_dt([dobj], t)
                if chemistry_on:
                    implicit.advance([dobj], t, 0.5 * dt)
                explicit.advance([dobj], t, dt)
                if chemistry_on:
                    implicit.advance([dobj], t + 0.5 * dt, 0.5 * dt)
                t += dt
                if regrid_interval and step % regrid_interval == 0:
                    regrid.regrid()
                stats.record("T_max", t, dobj.max_norm(
                    comm=services.get_comm(), k=0))
                stats.record("ncells", t, float(h.total_cells()))
                hook.after_step(step, t)

        return {
            "t_final": t,
            "n_steps": n_steps,
            "T_max": dobj.max_norm(comm=services.get_comm(), k=0),
            "nlevels": h.nlevels,
            "total_cells": h.total_cells(),
            "history_T_max": stats.series("T_max"),
        }


RD_COMPONENTS = [
    GrACEComponent,
    InitialCondition,
    ThermoChemistry,
    CvodeComponent,
    ImplicitIntegrator,
    ExplicitIntegrator,
    DiffusionPhysics,
    DRFMComponent,
    MaxDiffCoeffEvaluator,
    ErrorEstAndRegrid,
    StatisticsComponent,
    ReactionDiffusionDriver,
]


def build_reaction_diffusion(
    framework: Framework,
    nx: int = 32,
    ny: int = 32,
    extent: float = 0.01,      # the paper's 10 mm square domain
    max_levels: int = 2,
    n_steps: int = 5,
    dt: float = 0.0,
    regrid_interval: int = 0,
    chemistry_mode: str = "cvode",
    chemistry_on: bool = True,
    threshold: float = 0.1,
    initial_regrids: int = 0,
) -> None:
    """Instantiate and wire the reaction-diffusion assembly (Fig. 2)."""
    framework.registry.register_many(RD_COMPONENTS)
    instances = [
        (GrACEComponent, "AMR_Mesh"),
        (InitialCondition, "InitialCondition"),
        (ThermoChemistry, "ReactionTerms"),
        (CvodeComponent, "CvodeSolver"),
        (ImplicitIntegrator, "ImplicitIntegrator"),
        (ExplicitIntegrator, "ExplicitIntegrator"),
        (DiffusionPhysics, "DiffusionPhysics"),
        (DRFMComponent, "DRFM"),
        (MaxDiffCoeffEvaluator, "MaxDiffCoeff"),
        (ErrorEstAndRegrid, "ErrEstAndRegrid"),
        (StatisticsComponent, "Statistics"),
        (ReactionDiffusionDriver, "Driver"),
    ]
    for cls, name in instances:
        framework.instantiate(cls.__name__, name)

    fp = framework.set_parameter
    fp("AMR_Mesh", "nx", nx)
    fp("AMR_Mesh", "ny", ny)
    fp("AMR_Mesh", "x_extent", extent)
    fp("AMR_Mesh", "y_extent", extent)
    fp("AMR_Mesh", "max_levels", max_levels)
    fp("InitialCondition", "x_extent", extent)
    fp("InitialCondition", "y_extent", extent)
    fp("InitialCondition", "spot_radius", 0.08 * extent)
    fp("ImplicitIntegrator", "mode", chemistry_mode)
    fp("ImplicitIntegrator", "skip_below_T", 600.0)
    fp("ErrEstAndRegrid", "dataobject", "flow")
    fp("ErrEstAndRegrid", "variables", "0")  # flag on temperature
    fp("ErrEstAndRegrid", "threshold", threshold)
    fp("Driver", "n_steps", n_steps)
    fp("Driver", "dt", dt)
    fp("Driver", "regrid_interval", regrid_interval)
    fp("Driver", "chemistry_on", 1 if chemistry_on else 0)
    fp("Driver", "initial_regrids", initial_regrids)

    fc = framework.connect
    fc("InitialCondition", "chem", "ReactionTerms", "chemistry")
    fc("CvodeSolver", "rhs", "ReactionTerms", "source")
    fc("ImplicitIntegrator", "solver", "CvodeSolver", "solver")
    fc("ImplicitIntegrator", "chem", "ReactionTerms", "chemistry")
    fc("ImplicitIntegrator", "data", "AMR_Mesh", "data")
    fc("DRFM", "chem", "ReactionTerms", "chemistry")
    fc("DiffusionPhysics", "transport", "DRFM", "transport")
    fc("DiffusionPhysics", "chem", "ReactionTerms", "chemistry")
    fc("DiffusionPhysics", "mesh", "AMR_Mesh", "mesh")
    fc("MaxDiffCoeff", "mesh", "AMR_Mesh", "mesh")
    fc("MaxDiffCoeff", "data", "AMR_Mesh", "data")
    fc("MaxDiffCoeff", "transport", "DRFM", "transport")
    fc("MaxDiffCoeff", "chem", "ReactionTerms", "chemistry")
    fc("ExplicitIntegrator", "rhs", "DiffusionPhysics", "rhs")
    fc("ExplicitIntegrator", "bound", "MaxDiffCoeff", "bound")
    fc("ExplicitIntegrator", "mesh", "AMR_Mesh", "mesh")
    fc("ExplicitIntegrator", "data", "AMR_Mesh", "data")
    fc("ErrEstAndRegrid", "mesh", "AMR_Mesh", "mesh")
    fc("ErrEstAndRegrid", "data", "AMR_Mesh", "data")
    fc("Driver", "mesh", "AMR_Mesh", "mesh")
    fc("Driver", "data", "AMR_Mesh", "data")
    fc("Driver", "ic", "InitialCondition", "ic")
    fc("Driver", "explicit", "ExplicitIntegrator", "integrator")
    fc("Driver", "implicit", "ImplicitIntegrator", "integrator")
    fc("Driver", "regrid", "ErrEstAndRegrid", "regrid")
    fc("Driver", "chem", "ReactionTerms", "chemistry")
    fc("Driver", "stats", "Statistics", "stats")


def run_reaction_diffusion(comm=None, **kwargs) -> dict[str, Any]:
    """One-call run (serial by default; pass a Comm for SCMD)."""
    framework = Framework(comm=comm)
    build_reaction_diffusion(framework, **kwargs)
    return framework.go("Driver")
