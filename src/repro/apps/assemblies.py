"""Assembly scripts and subsystem -> component maps (paper Tables 1-3).

``IGNITION0D_SCRIPT`` shows the rc-script path end to end; the SAMR
applications are wired programmatically (their builders take numeric
options), and ``describe_assembly`` dumps any framework's wiring — the
textual analog of the GUI "arena" screenshots (Figs. 1, 2, 5).
"""

from __future__ import annotations

from repro.cca.framework import Framework

#: rc-script for the 0D ignition code (Fig. 1).
IGNITION0D_SCRIPT = """\
#!ccaffeine bootstrap file
repository get-global Initializer
repository get-global ThermoChemistry
repository get-global ProblemModeler
repository get-global DPDt
repository get-global CvodeComponent
repository get-global StatisticsComponent
repository get-global Ignition0DDriver

instantiate Initializer Initializer
instantiate ThermoChemistry ThermoChemistry
instantiate ProblemModeler problemModeler
instantiate DPDt dPdt
instantiate CvodeComponent CvodeComponent
instantiate StatisticsComponent Statistics
instantiate Ignition0DDriver Driver

parameter ThermoChemistry mechanism h2-air
parameter Initializer T0 1000.0
parameter Initializer P0 101325.0
parameter CvodeComponent rtol 1e-8
parameter CvodeComponent atol 1e-12
parameter Driver t_end 0.001

connect Initializer chem ThermoChemistry chemistry
connect dPdt chem ThermoChemistry chemistry
connect problemModeler chem ThermoChemistry chemistry
connect problemModeler dpdt dPdt dpdt
connect CvodeComponent rhs problemModeler model
connect Driver ic Initializer ic
connect Driver solver CvodeComponent solver
connect Driver model problemModeler model
connect Driver chem ThermoChemistry chemistry
connect Driver stats Statistics stats

go Driver
"""

#: paper Table 1 — 0D ignition component design.
TABLE1_0D_IGNITION = {
    "Mesh": ["N/A"],
    "Data Object": ["N/A"],
    "Initial Condition": ["Initializer"],
    "Explicit Integration": ["N/A"],
    "Implicit Integration": ["CvodeComponent", "ThermoChemistry"],
    "Boundary Condition": ["problemModeler", "dPdt"],
    "Database": ["ThermoChemistry"],
    "Adaptors": ["problemModeler"],
}

#: paper Table 2 — reaction-diffusion component design.
TABLE2_REACTION_DIFFUSION = {
    "Mesh": ["GrACEComponent"],
    "Data Object": ["GrACEComponent"],
    "Initial Condition": ["InitialCondition"],
    "Explicit Integration": ["ExplicitIntegrator", "DiffusionPhysics",
                             "DRFMComponent"],
    "Implicit Integration": ["CvodeComponent", "ThermoChemistry"],
    "Boundary Condition": ["GrACEComponent"],
    "Database": ["ThermoChemistry"],
    "Adaptors": ["ImplicitIntegrator"],
}

#: paper Table 3 — shock-interface component design.
TABLE3_SHOCK_INTERFACE = {
    "Mesh": ["GrACEComponent"],
    "Data Object": ["GrACEComponent"],
    "Initial Condition": ["ConicalInterfaceIC"],
    "Explicit Integration": ["ExplicitIntegratorRK2", "GodunovFlux",
                             "States"],
    "Implicit Integration": ["N/A"],
    "Boundary Condition": ["BoundaryConditions"],
    "Database": ["GasProperties"],
    "Adaptors": ["InviscidFlux"],
}

_TABLES = {
    "ignition0d": TABLE1_0D_IGNITION,
    "reaction_diffusion": TABLE2_REACTION_DIFFUSION,
    "shock_interface": TABLE3_SHOCK_INTERFACE,
}


def assembly_table(app: str) -> dict[str, list[str]]:
    """The subsystem -> component map for an application (Tables 1-3)."""
    try:
        return dict(_TABLES[app])
    except KeyError:
        raise KeyError(
            f"unknown app {app!r}; have {sorted(_TABLES)}") from None


def format_assembly_table(app: str) -> str:
    """Render a Table-1/2/3-style text table."""
    table = assembly_table(app)
    width = max(len(k) for k in table)
    lines = [f"{'Software Subsystem':<{width}}  Component Instance(s)",
             "-" * (width + 25)]
    for subsystem, comps in table.items():
        lines.append(f"{subsystem:<{width}}  {', '.join(comps)}")
    return "\n".join(lines)


def describe_assembly(framework: Framework) -> str:
    """Wiring dump of a live framework (the Fig. 1/2/5 'arena')."""
    return framework.describe()
