"""The 0D ignition application (paper §4.1, Table 1, Fig. 1).

Component assembly::

    Initializer ──ic──▶ Ignition0DDriver ◀──solver── CvodeComponent
                                                          │ rhs
                                                          ▼
    dPdt ──dpdt──▶ ProblemModeler ◀──chem── ThermoChemistry

``CvodeComponent`` integrates the constant-volume Φ-equation assembled by
``ProblemModeler`` (chemistry from ``ThermoChemistry``, pressure closure
from ``DPDt``); the driver seeds Φ0 from ``Initializer`` and marches to
``t_end`` recording the ignition history.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.ports.go import GoPort
from repro.errors import CCAError
from repro.components import (
    CvodeComponent,
    DPDt,
    Initializer,
    ProblemModeler,
    StatisticsComponent,
    ThermoChemistry,
)
from repro.obs import trace as _trace
from repro.resilience.hooks import CheckpointHook


class _Go(GoPort):
    def __init__(self, owner: "Ignition0DDriver") -> None:
        self.owner = owner

    def go(self) -> dict[str, Any]:
        return self.owner.run()


class Ignition0DDriver(Component):
    """Drives the 0D ignition assembly.

    Uses ``ic`` (VectorICPort), ``solver`` (ODESolverPort), ``model``
    (VectorRHSPort, the ProblemModeler), ``chem`` (ChemistryPort),
    ``stats`` (StatisticsPort).  Parameters: ``t_end`` (1e-3 s),
    ``n_output`` (20 history points).
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("ic", "VectorICPort")
        services.register_uses_port("solver", "ODESolverPort")
        services.register_uses_port("model", "VectorRHSPort")
        services.register_uses_port("chem", "ChemistryPort")
        services.register_uses_port("stats", "StatisticsPort")
        services.add_provides_port(_Go(self), "go")

    def run(self) -> dict[str, Any]:
        services = self.services
        ic = services.get_port("ic")
        solver = services.get_port("solver")
        model = services.get_port("model")
        chem = services.get_port("chem")
        stats = services.get_port("stats")
        mech = chem.mechanism()
        t_end = float(services.get_parameter("t_end", 1e-3))
        n_out = int(services.get_parameter("n_output", 20))

        y = ic.initial_state()  # [T, Y..., P]
        T0, P0 = float(y[0]), float(y[-1])
        rho = model.configure(T0, P0, y[1:-1])
        t = 0.0
        nfe = 0
        start_k = 0
        # mesh-less assembly: the state vector rides in checkpoint extras
        hook = CheckpointHook(services, mesh_uses=None)
        resumed = hook.resume()
        if resumed is not None:
            start_k, t = resumed.step, resumed.t
            y = np.asarray(resumed.extras["y"], dtype=float)
            nfe = int(resumed.extras["nfe"])
        else:
            stats.record("T", 0.0, T0)
            stats.record("P", 0.0, P0)
        for k in range(start_k + 1, n_out + 1):
            # driver.step spans are the flamegraph roots the sampling
            # profiler attributes component time under
            with _trace.span("driver.step", "driver", step=k):
                t_next = t_end * k / n_out
                y = solver.integrate(t, y, t_next)
                nfe += solver.last_nfe()
                t = t_next
                stats.record("T", t, float(y[0]))
                stats.record("P", t, float(y[-1]))
                hook.after_step(k, t, extras={"y": [float(v) for v in y],
                                              "nfe": nfe})
        T_final, Y_final, P_final = float(y[0]), y[1:-1], float(y[-1])
        i_h2o = mech.species_index("H2O")
        return {
            "T0": T0,
            "P0": P0,
            "rho": rho,
            "T_final": T_final,
            "P_final": P_final,
            "Y_final": Y_final,
            "Y_H2O_final": float(Y_final[i_h2o]),
            "nfe": nfe,
            "history_T": stats.series("T"),
            "history_P": stats.series("P"),
        }


#: component classes of this assembly
IGNITION0D_COMPONENTS = [
    Initializer,
    ThermoChemistry,
    ProblemModeler,
    DPDt,
    CvodeComponent,
    StatisticsComponent,
    Ignition0DDriver,
]


def build_ignition0d(framework: Framework, mechanism: str = "h2-air",
                     T0: float = 1000.0, P0: float = 101325.0,
                     t_end: float = 1e-3, rtol: float = 1e-8,
                     atol: float = 1e-12) -> None:
    """Instantiate and wire the 0D ignition assembly (Fig. 1)."""
    framework.registry.register_many(IGNITION0D_COMPONENTS)
    for cls, name in [
        (Initializer, "Initializer"),
        (ThermoChemistry, "ThermoChemistry"),
        (ProblemModeler, "problemModeler"),
        (DPDt, "dPdt"),
        (CvodeComponent, "CvodeComponent"),
        (StatisticsComponent, "Statistics"),
        (Ignition0DDriver, "Driver"),
    ]:
        framework.instantiate(cls.__name__, name)
    framework.set_parameter("ThermoChemistry", "mechanism", mechanism)
    framework.set_parameter("Initializer", "T0", T0)
    framework.set_parameter("Initializer", "P0", P0)
    framework.set_parameter("CvodeComponent", "rtol", rtol)
    framework.set_parameter("CvodeComponent", "atol", atol)
    framework.set_parameter("Driver", "t_end", t_end)

    framework.connect("Initializer", "chem", "ThermoChemistry", "chemistry")
    framework.connect("dPdt", "chem", "ThermoChemistry", "chemistry")
    framework.connect("problemModeler", "chem", "ThermoChemistry",
                      "chemistry")
    framework.connect("problemModeler", "dpdt", "dPdt", "dpdt")
    framework.connect("CvodeComponent", "rhs", "problemModeler", "model")
    framework.connect("Driver", "ic", "Initializer", "ic")
    framework.connect("Driver", "solver", "CvodeComponent", "solver")
    framework.connect("Driver", "model", "problemModeler", "model")
    framework.connect("Driver", "chem", "ThermoChemistry", "chemistry")
    framework.connect("Driver", "stats", "Statistics", "stats")


def run_ignition0d(**kwargs) -> dict[str, Any]:
    """One-call serial run (builds a fresh framework)."""
    framework = Framework()
    build_ignition0d(framework, **kwargs)
    return framework.go("Driver")


#: Per-condition keys :func:`run_ignition0d_batch` accepts (everything
#: else is a shared setting) — the parameter family the serve batch
#: planner may vary inside one coalesced solve.
BATCH_CONDITION_KEYS = ("T0", "P0", "phi", "rate_scale")


def run_ignition0d_batch(conditions: list[dict[str, float]],
                         mechanism: str = "h2-air", t_end: float = 1e-3,
                         n_output: int = 20, rtol: float = 1e-8,
                         atol: float = 1e-12,
                         method: str = "bdf") -> list[dict[str, Any]]:
    """Solve many 0D-ignition conditions in one batched call.

    Each entry of ``conditions`` may set ``T0``, ``P0``, ``phi`` and
    ``rate_scale`` (defaults match the component parameters:
    1000 K, 1 atm, stoichiometric, unperturbed rates); everything else —
    mechanism, tolerances, output grid — is shared across the batch.

    Returns one result dict per condition, **bitwise identical** to what
    :func:`run_ignition0d` / the rc-script assembly produces for the
    same condition: the batch replays exactly the driver's arithmetic
    (the ``Initializer`` fill, ``ProblemModeler.configure`` density, a
    fresh CVODE per output interval via
    :func:`repro.chemistry.zerod.advance_batch`).  That equivalence is
    what lets :mod:`repro.serve` answer per-job requests from a
    coalesced solve — and cache the demultiplexed results under the same
    keys a sequential run would produce.
    """
    from repro.chemistry.h2_air import h2_air_phi
    from repro.chemistry.zerod import advance_batch
    from repro.components.thermochem import _MECHS

    n_out = int(n_output)
    nbatch = len(conditions)
    if nbatch == 0:
        return []
    try:
        base_mech = _MECHS[mechanism]()
    except KeyError:
        raise CCAError(
            f"unknown mechanism {mechanism!r}; have {sorted(_MECHS)}"
        ) from None
    # one scaled mechanism per distinct rate perturbation in the batch
    mechs = {1.0: base_mech}
    rows: list[np.ndarray] = []
    rhos: list[float] = []
    scales: list[float] = []
    for cond in conditions:
        unknown = set(cond) - set(BATCH_CONDITION_KEYS)
        if unknown:
            raise CCAError(
                f"unknown batch condition keys {sorted(unknown)} "
                f"(have: {list(BATCH_CONDITION_KEYS)})")
        T0 = float(cond.get("T0", 1000.0))
        P0 = float(cond.get("P0", 101325.0))
        phi = float(cond.get("phi", 1.0))
        scale = float(cond.get("rate_scale", 1.0))
        if scale not in mechs:
            mechs[scale] = base_mech.scaled(scale)
        mech = mechs[scale]
        # the Initializer fill, operation for operation
        Y = np.zeros(mech.n_species)
        for nm, val in h2_air_phi(phi).items():
            if nm in mech.names:
                Y[mech.species_index(nm)] = val
        Y /= Y.sum()
        rows.append(np.concatenate(([T0], Y, [P0])))
        # ProblemModeler.configure: rho fixed from the initial fill
        rhos.append(float(mech.density(T0, P0, Y)))
        scales.append(scale)

    states = np.array(rows)
    rho_arr = np.asarray(rhos, dtype=float)
    nfe = np.zeros(nbatch, dtype=int)
    hist_T: list[list[tuple[float, float]]] = [
        [(0.0, float(r[0]))] for r in rows]
    hist_P: list[list[tuple[float, float]]] = [
        [(0.0, float(r[-1]))] for r in rows]
    groups: dict[float, list[int]] = {}
    for i, scale in enumerate(scales):
        groups.setdefault(scale, []).append(i)

    t = 0.0
    for k in range(1, n_out + 1):
        with _trace.span("driver.step", "driver", step=k, batch=nbatch):
            t_next = t_end * k / n_out
            for scale, idx in groups.items():
                res = advance_batch(mechs[scale], rho_arr[idx], states[idx],
                                    t, t_next, rtol=rtol, atol=atol,
                                    method=method)
                states[idx] = res.states
                nfe[idx] += res.nfe
            t = t_next
            for i in range(nbatch):
                hist_T[i].append((t, float(states[i][0])))
                hist_P[i].append((t, float(states[i][-1])))

    results: list[dict[str, Any]] = []
    for i in range(nbatch):
        y = states[i]
        mech = mechs[scales[i]]
        i_h2o = mech.species_index("H2O")
        Y_final = y[1:-1]
        results.append({
            "T0": float(rows[i][0]),
            "P0": float(rows[i][-1]),
            "rho": rhos[i],
            "T_final": float(y[0]),
            "P_final": float(y[-1]),
            "Y_final": Y_final,
            "Y_H2O_final": float(Y_final[i_h2o]),
            "nfe": int(nfe[i]),
            "history_T": hist_T[i],
            "history_P": hist_P[i],
        })
    return results
