"""The three applications assembled from the component set.

* :mod:`repro.apps.ignition0d` — 0D homogeneous H2-air ignition (paper
  §4.1, Table 1, Fig. 1).
* :mod:`repro.apps.reaction_diffusion` — 2D reaction-diffusion flame with
  SAMR (§4.2, Table 2, Figs. 2-4).
* :mod:`repro.apps.shock_interface` — 2D shock / density-interface
  interaction (§4.3, Table 3, Figs. 5-7).
* :mod:`repro.apps.assemblies` — rc-script texts and the subsystem ->
  component maps (the paper's Tables 1-3).
"""

from repro.apps.ignition0d import (
    Ignition0DDriver,
    build_ignition0d,
    run_ignition0d,
    run_ignition0d_batch,
)
from repro.apps.reaction_diffusion import (
    ReactionDiffusionDriver,
    build_reaction_diffusion,
    run_reaction_diffusion,
)
from repro.apps.shock_interface import (
    ShockInterfaceDriver,
    build_shock_interface,
    run_shock_interface,
)
from repro.apps.assemblies import (
    IGNITION0D_SCRIPT,
    assembly_table,
    describe_assembly,
)

__all__ = [
    "Ignition0DDriver",
    "build_ignition0d",
    "run_ignition0d",
    "run_ignition0d_batch",
    "ReactionDiffusionDriver",
    "build_reaction_diffusion",
    "run_reaction_diffusion",
    "ShockInterfaceDriver",
    "build_shock_interface",
    "run_shock_interface",
    "IGNITION0D_SCRIPT",
    "assembly_table",
    "describe_assembly",
]
