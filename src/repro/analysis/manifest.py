"""Declarative component manifests + the RA40x drift pass.

The Cactus Configuration Language declares each thorn's parameters with
types and ranges and its schedule, so an assembly is validated before a
single step runs; FLASH selects among alternative implementations from
exactly such metadata.  This module gives ``repro`` components the same
shape: a :class:`ComponentManifest` per shipped component class,
serialized as JSON under ``src/repro/manifests/``, declaring

* the provides/uses ports with their port types (and, for uses ports,
  whether the component *requires* a connection to run),
* every rc-script parameter with name/type/default and optional
  range/choices/required annotations,
* whether the component carries checkpointable state
  (``checkpoint_state``/``restore_state``) and which class attributes
  are deliberately SCMD-shared (the ``# scmd: shared`` pragma).

Manifests are *generated* from the source by :func:`extract_manifest`
(sandbox port harvest + an AST scan of the parameter reads), then
hand-annotated with ranges and choices; :func:`emit_manifest` merges a
re-extraction into an existing file without losing those annotations.
The RA40x **drift pass** (:func:`check_drift`) keeps the committed
manifests honest against the code forever:

* ``RA401`` — source declares a port the manifest omits.
* ``RA402`` — source reads a parameter the manifest omits.
* ``RA403`` — manifest port/parameter with no source counterpart.
* ``RA404`` — manifest type/default disagrees with the source.
* ``RA405`` — checkpoint/scmd state declaration drift.
* ``RA406`` — a shipped component has no manifest at all.

The contract pass (:mod:`repro.analysis.contracts`, RA41x) consumes the
loaded manifests to validate assemblies and ``repro.serve`` jobs.  This
module deliberately imports nothing from :mod:`repro.cca` at module
level so :meth:`repro.cca.framework.Framework.set_parameter` can borrow
:func:`known_parameter` without an import cycle.
"""

from __future__ import annotations

import ast
import inspect
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analysis.findings import Finding, finding
from repro.analysis.scmd_safety import _PRAGMA_RE, shared_bindings

#: JSON schema version of a manifest document.
MANIFEST_SCHEMA = 1

#: the parameter type vocabulary ("any" = not statically typed).
PARAM_TYPES = ("any", "int", "float", "bool", "str")

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


def default_manifest_dir() -> str:
    """The committed manifest tree: ``src/repro/manifests``."""
    import repro

    return os.path.join(os.path.dirname(os.path.abspath(repro.__file__)),
                        "manifests")


# --------------------------------------------------------------------------
# model
# --------------------------------------------------------------------------
@dataclass
class PortSpec:
    """One declared provides/uses port."""

    name: str
    type: str
    #: uses ports only: the component fetches it unguarded, so an
    #: assembly that ``go``-reaches the component must connect it.
    required: bool = False

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name, "type": self.type}
        if self.required:
            doc["required"] = True
        return doc

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "PortSpec":
        return PortSpec(name=str(doc["name"]), type=str(doc["type"]),
                        required=bool(doc.get("required", False)))


@dataclass
class ParamSpec:
    """One declared rc-script parameter."""

    name: str
    type: str = "any"
    default: Any = None
    min: float | None = None
    max: float | None = None
    choices: list[Any] | None = None
    required: bool = False
    #: read outside the component's own module (e.g. the driver-level
    #: checkpoint knobs consumed by repro.resilience.hooks) — exempt
    #: from the RA403 no-source-counterpart drift check.
    extern: bool = False
    doc: str = ""

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name, "type": self.type}
        if self.default is not None:
            doc["default"] = self.default
        if self.min is not None:
            doc["min"] = self.min
        if self.max is not None:
            doc["max"] = self.max
        if self.choices is not None:
            doc["choices"] = list(self.choices)
        if self.required:
            doc["required"] = True
        if self.extern:
            doc["extern"] = True
        if self.doc:
            doc["doc"] = self.doc
        return doc

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "ParamSpec":
        return ParamSpec(
            name=str(doc["name"]), type=str(doc.get("type", "any")),
            default=doc.get("default"), min=doc.get("min"),
            max=doc.get("max"),
            choices=(list(doc["choices"]) if doc.get("choices") is not None
                     else None),
            required=bool(doc.get("required", False)),
            extern=bool(doc.get("extern", False)),
            doc=str(doc.get("doc", "")))


@dataclass
class ComponentManifest:
    """The declarative contract of one component class."""

    class_name: str
    module: str = ""
    provides: list[PortSpec] = field(default_factory=list)
    uses: list[PortSpec] = field(default_factory=list)
    parameters: list[ParamSpec] = field(default_factory=list)
    #: implements checkpoint_state/restore_state (stateful across steps).
    checkpoint: bool = False
    #: reads parameters under computed keys (a key-value database
    #: component) — the contract pass accepts any parameter name.
    open_parameters: bool = False
    #: class attributes deliberately shared across SCMD rank-threads
    #: (carry the ``# scmd: shared`` pragma in the source).
    scmd_shared: list[str] = field(default_factory=list)

    def param(self, name: str) -> ParamSpec | None:
        for p in self.parameters:
            if p.name == name:
                return p
        return None

    def uses_port(self, name: str) -> PortSpec | None:
        for p in self.uses:
            if p.name == name:
                return p
        return None

    def provides_port(self, name: str) -> PortSpec | None:
        for p in self.provides:
            if p.name == name:
                return p
        return None

    def param_names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "class": self.class_name,
            "module": self.module,
            "provides": [p.to_json() for p in
                         sorted(self.provides, key=lambda p: p.name)],
            "uses": [p.to_json() for p in
                     sorted(self.uses, key=lambda p: p.name)],
            "parameters": [p.to_json() for p in
                           sorted(self.parameters, key=lambda p: p.name)],
            "checkpoint": self.checkpoint,
            "open_parameters": self.open_parameters,
            "scmd_shared": sorted(self.scmd_shared),
        }

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "ComponentManifest":
        return ComponentManifest(
            class_name=str(doc["class"]),
            module=str(doc.get("module", "")),
            provides=[PortSpec.from_json(d)
                      for d in doc.get("provides", [])],
            uses=[PortSpec.from_json(d) for d in doc.get("uses", [])],
            parameters=[ParamSpec.from_json(d)
                        for d in doc.get("parameters", [])],
            checkpoint=bool(doc.get("checkpoint", False)),
            open_parameters=bool(doc.get("open_parameters", False)),
            scmd_shared=[str(s) for s in doc.get("scmd_shared", [])])


# --------------------------------------------------------------------------
# value typing (shared with the RA41x contract pass)
# --------------------------------------------------------------------------
def value_type_ok(ptype: str, value: Any) -> bool:
    """Does ``value`` (an rc-parsed or override scalar) fit ``ptype``?

    ``str`` and ``any`` accept every scalar (components coerce with
    ``str()``); ``float`` accepts ints; ``bool`` accepts 0/1 and the
    usual true/false spellings.
    """
    if ptype in ("any", "str"):
        return isinstance(value, (bool, int, float, str))
    if ptype == "bool":
        if isinstance(value, bool):
            return True
        if isinstance(value, int):
            return value in (0, 1)
        if isinstance(value, str):
            return value.strip().lower() in (_TRUE_STRINGS | _FALSE_STRINGS)
        return False
    if isinstance(value, bool):
        return False  # True is not an acceptable int/float
    if ptype == "float":
        return isinstance(value, (int, float))
    if ptype == "int":
        return isinstance(value, int)
    return True


def coerce_value(ptype: str, value: Any) -> Any:
    """``value`` as the declared type (assumes :func:`value_type_ok`).

    This is what makes a ``"1100"`` string override on a float
    parameter key the cache identically to ``1100.0``.
    """
    if not value_type_ok(ptype, value):
        return value
    if ptype == "float":
        return float(value)
    if ptype == "int":
        return int(value)
    if ptype == "bool":
        if isinstance(value, str):
            return value.strip().lower() in _TRUE_STRINGS
        return bool(value)
    if ptype == "str":
        return str(value)
    return value


# --------------------------------------------------------------------------
# source facts: the AST scan behind extraction and drift
# --------------------------------------------------------------------------
@dataclass
class ParamRead:
    """One statically visible parameter read in a class."""

    name: str
    type: str = "any"
    default: Any = None
    has_default: bool = False
    line: int = 0


@dataclass
class ClassFacts:
    """What the AST scan learned about one class's parameter traffic."""

    name: str
    line: int = 0
    has_set_services: bool = False
    params: dict[str, ParamRead] = field(default_factory=dict)
    #: a read under a computed key was seen (f-strings, variables)
    dynamic_reads: bool = False
    #: mutable class attributes carrying the ``# scmd: shared`` pragma
    scmd_shared: list[str] = field(default_factory=list)
    #: names of same-module classes instantiated inside this class body
    helper_calls: set[str] = field(default_factory=set)


#: Options/Services accessor -> declared-type implied by the accessor.
_ACCESSOR_TYPES = {
    "get_float": "float", "get_int": "int", "get_bool": "bool",
    "get_str": "str", "get_parameter": "any", "get": "any",
    "require": "any",
}

#: builtins whose wrapping call pins the read's type.
_CAST_TYPES = {"float": "float", "int": "int", "str": "str", "bool": "bool"}


def _receiver_is_parameters(node: ast.expr,
                            param_names: set[str]) -> bool:
    """Is the accessor receiver a parameters bag (``...parameters`` or a
    local name bound from one)?"""
    if isinstance(node, ast.Attribute):
        return node.attr == "parameters"
    if isinstance(node, ast.Name):
        return node.id in param_names
    return False


def _literal_type(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return "any"


def _call_arg(call: ast.Call, pos: int, kw: str) -> ast.expr | None:
    if len(call.args) > pos:
        return call.args[pos]
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    return None


class _ParamScanner:
    """Collects parameter reads for one class body."""

    def __init__(self, facts: ClassFacts, class_names: set[str],
                 cast_of: dict[int, str]) -> None:
        self.facts = facts
        self.class_names = class_names
        self.cast_of = cast_of

    def walk_class(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "set_services":
                    self.facts.has_set_services = True
                self._walk_function(stmt)

    def _walk_function(self, fn: ast.AST) -> None:
        # names locally bound from a ``...parameters`` expression
        param_names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Attribute) and \
                    node.value.attr == "parameters":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        param_names.add(target.id)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                self._record_call(node, param_names)

    def _record_call(self, call: ast.Call, param_names: set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self.class_names:
            self.facts.helper_calls.add(func.id)
            return
        if not isinstance(func, ast.Attribute):
            return
        accessor = func.attr
        if accessor not in _ACCESSOR_TYPES:
            return
        if accessor in ("get", "require") and \
                not _receiver_is_parameters(func.value, param_names):
            return  # a dict/other .get, not a parameters bag
        key_node = _call_arg(call, 0, "key")
        if not (isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)):
            self.facts.dynamic_reads = True
            return
        name = key_node.value
        ptype = _ACCESSOR_TYPES[accessor]
        if ptype == "any":
            ptype = self.cast_of.get(id(call), "any")
        default: Any = None
        has_default = False
        default_node = _call_arg(call, 1, "default")
        if isinstance(default_node, ast.Constant) and \
                default_node.value is not None:
            default = default_node.value
            has_default = True
            if ptype == "any":
                ptype = _literal_type(default)
        read = ParamRead(name=name, type=ptype, default=default,
                         has_default=has_default, line=call.lineno)
        prior = self.facts.params.get(name)
        if prior is None:
            self.facts.params[name] = read
        else:
            # merge: keep the most specific type, first literal default
            if prior.type == "any" and read.type != "any":
                prior.type = read.type
            if not prior.has_default and read.has_default:
                prior.default, prior.has_default = read.default, True


def scan_module_params(text: str,
                       path: str = "<source>") -> dict[str, ClassFacts]:
    """Per-class parameter facts for one module's source.

    Helper-class reads (the port implementations that close over
    ``owner.services``) are attributed to the component class that
    instantiates them; a helper no component instantiates falls back to
    every component class in the file.
    """
    tree = ast.parse(text, filename=path)
    lines = text.splitlines()
    # pre-pass: casts wrapping a call — float(services.get_parameter(...))
    cast_of: dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _CAST_TYPES and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Call):
            cast_of[id(node.args[0])] = _CAST_TYPES[node.func.id]

    class_defs = {node.name: node for node in ast.walk(tree)
                  if isinstance(node, ast.ClassDef)}
    _mods, class_mutables = shared_bindings(tree)
    facts: dict[str, ClassFacts] = {}
    for name, node in class_defs.items():
        f = ClassFacts(name=name, line=node.lineno)
        _ParamScanner(f, set(class_defs), cast_of).walk_class(node)
        for attr, lineno in class_mutables.get(name, {}).items():
            span = range(lineno, lineno + 1)
            if any(1 <= ln <= len(lines)
                   and _PRAGMA_RE.search(lines[ln - 1]) for ln in span):
                f.scmd_shared.append(attr)
        facts[name] = f

    components = [f for f in facts.values() if f.has_set_services]
    owners: dict[str, list[ClassFacts]] = {}
    for comp in components:
        for helper in comp.helper_calls:
            owners.setdefault(helper, []).append(comp)
    for helper_name, helper in facts.items():
        if helper.has_set_services:
            continue
        targets = owners.get(helper_name)
        if targets is None:
            targets = components  # unmapped helper: conservative union
        for comp in targets:
            for name, read in helper.params.items():
                prior = comp.params.get(name)
                if prior is None:
                    comp.params[name] = ParamRead(**vars(read))
                else:
                    if prior.type == "any" and read.type != "any":
                        prior.type = read.type
                    if not prior.has_default and read.has_default:
                        prior.default = read.default
                        prior.has_default = True
            comp.dynamic_reads = comp.dynamic_reads or helper.dynamic_reads
    return facts


_MODULE_FACTS_CACHE: dict[str, dict[str, ClassFacts]] = {}


def class_facts(cls: type) -> ClassFacts | None:
    """The AST facts for a component class (module-level cache)."""
    module = inspect.getmodule(cls)
    if module is None:
        return None
    path = getattr(module, "__file__", None)
    if path is None:
        return None
    if path not in _MODULE_FACTS_CACHE:
        try:
            text = inspect.getsource(module)
            _MODULE_FACTS_CACHE[path] = scan_module_params(text, path)
        except (OSError, TypeError, SyntaxError):
            _MODULE_FACTS_CACHE[path] = {}
    return _MODULE_FACTS_CACHE[path].get(cls.__name__)


# --------------------------------------------------------------------------
# extraction + emission
# --------------------------------------------------------------------------
def extract_manifest(cls: type) -> ComponentManifest:
    """Derive a draft manifest from a component class's source.

    Ports come from the sandbox harvest (``__init__`` + ``set_services``
    only, per the CCA contract); parameters from the AST scan;
    checkpoint/scmd declarations from the class surface.  The draft is
    the starting point for hand annotation — ranges and choices cannot
    be inferred.
    """
    from repro.analysis.wiring import harvest_port_table

    table = harvest_port_table(cls)
    facts = class_facts(cls)
    provides = [PortSpec(name=n, type=t)
                for n, t in sorted(table.provides.items())]
    uses = [PortSpec(name=n, type=t,
                     required=table.fetch_guarded.get(n) is False)
            for n, t in sorted(table.uses.items())]
    params: list[ParamSpec] = []
    dynamic = False
    scmd_shared: list[str] = []
    if facts is not None:
        dynamic = facts.dynamic_reads
        scmd_shared = sorted(facts.scmd_shared)
        for name in sorted(facts.params):
            read = facts.params[name]
            params.append(ParamSpec(name=name, type=read.type,
                                    default=read.default))
    return ComponentManifest(
        class_name=cls.__name__,
        module=cls.__module__,
        provides=provides,
        uses=uses,
        parameters=params,
        checkpoint=callable(getattr(cls, "checkpoint_state", None)),
        open_parameters=dynamic,
        scmd_shared=scmd_shared)


def merge_manifest(old: ComponentManifest,
                   new: ComponentManifest) -> ComponentManifest:
    """A re-extraction layered under an annotated manifest.

    The source is authoritative for the port set, port types, checkpoint
    and scmd declarations; the old manifest is authoritative for every
    hand annotation (ranges, choices, required, extern, docs, the
    open-parameters override) and for extern parameters the source
    cannot see.
    """
    params: list[ParamSpec] = []
    for p in new.parameters:
        prior = old.param(p.name)
        if prior is None:
            params.append(p)
            continue
        params.append(ParamSpec(
            name=p.name,
            type=prior.type if prior.type != "any" else p.type,
            default=p.default if p.default is not None else prior.default,
            min=prior.min, max=prior.max, choices=prior.choices,
            required=prior.required, extern=prior.extern, doc=prior.doc))
    new_names = {p.name for p in new.parameters}
    for prior in old.parameters:
        if prior.name in new_names:
            continue
        if prior.extern or new.open_parameters or old.open_parameters:
            params.append(prior)  # invisible to the scan, deliberately
    uses: list[PortSpec] = []
    for p in new.uses:
        prior = old.uses_port(p.name)
        uses.append(PortSpec(name=p.name, type=p.type,
                             required=prior.required if prior is not None
                             else p.required))
    return ComponentManifest(
        class_name=new.class_name,
        module=new.module or old.module,
        provides=list(new.provides),
        uses=uses,
        parameters=params,
        checkpoint=new.checkpoint,
        open_parameters=old.open_parameters,
        scmd_shared=list(new.scmd_shared))


def manifest_path(directory: str, class_name: str) -> str:
    return os.path.join(directory, f"{class_name}.json")


def write_manifest(manifest: ComponentManifest, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = manifest_path(directory, manifest.class_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_json(), fh, indent=2)
        fh.write("\n")
    return path


def emit_manifest(cls: type, directory: str | None = None,
                  merge: bool = True) -> str:
    """Write (or merge-refresh) one class's manifest; returns the path."""
    directory = directory or default_manifest_dir()
    manifest = extract_manifest(cls)
    path = manifest_path(directory, cls.__name__)
    if merge and os.path.isfile(path):
        old = load_manifest_file(path)
        manifest = merge_manifest(old, manifest)
    return write_manifest(manifest, directory)


# --------------------------------------------------------------------------
# loading
# --------------------------------------------------------------------------
def load_manifest_file(path: str) -> ComponentManifest:
    with open(path, encoding="utf-8") as fh:
        return ComponentManifest.from_json(json.load(fh))


def load_manifest_dir(directory: str | None = None
                      ) -> dict[str, ComponentManifest]:
    """Every ``*.json`` manifest under ``directory``, keyed by class."""
    directory = directory or default_manifest_dir()
    out: dict[str, ComponentManifest] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            m = load_manifest_file(os.path.join(directory, name))
        except (OSError, ValueError, KeyError):
            continue  # unreadable manifests surface via the drift pass
        out[m.class_name] = m
    return out


_DEFAULT_MANIFESTS: dict[str, ComponentManifest] | None = None


def load_manifests(refresh: bool = False) -> dict[str, ComponentManifest]:
    """The committed manifest set (cached; ``refresh=True`` re-reads)."""
    global _DEFAULT_MANIFESTS
    if _DEFAULT_MANIFESTS is None or refresh:
        _DEFAULT_MANIFESTS = load_manifest_dir()
    return _DEFAULT_MANIFESTS


def known_parameter(class_name: str, key: str) -> bool | None:
    """Is ``key`` a declared parameter of ``class_name``?

    Returns None when no judgement is possible (no manifest for the
    class, or the class accepts computed keys).  Used by
    ``Framework.set_parameter`` to surface typo'd keys at set time.
    """
    m = load_manifests().get(class_name)
    if m is None or m.open_parameters:
        return None
    return m.param(key) is not None


# --------------------------------------------------------------------------
# the RA40x drift pass
# --------------------------------------------------------------------------
def _drift_one(cls: type, manifest: ComponentManifest,
               path: str) -> list[Finding]:
    """Compare one class's source against its committed manifest."""
    out: list[Finding] = []
    cname = cls.__name__
    try:
        extracted = extract_manifest(cls)
    except Exception as exc:  # noqa: BLE001 - report, keep going
        return [finding(
            "RA406",
            f"{cname}: could not re-extract the source contract "
            f"({type(exc).__name__}: {exc}) — manifest unverifiable",
            path=path, context=cname)]

    src_file = getattr(inspect.getmodule(cls), "__file__", None)
    facts = class_facts(cls)

    # -- ports -------------------------------------------------------------
    for kind, src_ports, man_ports in (
            ("provides", extracted.provides, manifest.provides),
            ("uses", extracted.uses, manifest.uses)):
        man_by_name = {p.name: p for p in man_ports}
        src_by_name = {p.name: p for p in src_ports}
        for p in src_ports:
            declared = man_by_name.get(p.name)
            if declared is None:
                out.append(finding(
                    "RA401",
                    f"{cname} registers {kind} port {p.name!r} "
                    f"[{p.type}] but the manifest does not declare it",
                    path=src_file, context=cname))
            elif declared.type != p.type:
                out.append(finding(
                    "RA404",
                    f"{cname}.{p.name}: manifest declares {kind} port "
                    f"type {declared.type!r}, source registers "
                    f"{p.type!r}",
                    path=path, context=cname))
        for p in man_ports:
            if p.name not in src_by_name:
                out.append(finding(
                    "RA403",
                    f"{cname}: manifest declares {kind} port "
                    f"{p.name!r} [{p.type}] the source never registers",
                    path=path, context=cname))

    # -- parameters --------------------------------------------------------
    dynamic = facts.dynamic_reads if facts is not None else True
    man_params = {p.name: p for p in manifest.parameters}
    src_params = {p.name: p for p in extracted.parameters}
    for name, read in src_params.items():
        declared = man_params.get(name)
        if declared is None:
            if not manifest.open_parameters:
                out.append(finding(
                    "RA402",
                    f"{cname} reads parameter {name!r} "
                    f"(type {read.type}) the manifest does not declare",
                    path=src_file, context=cname))
            continue
        if read.type != "any" and declared.type != "any" and \
                declared.type != read.type:
            out.append(finding(
                "RA404",
                f"{cname}.{name}: manifest declares type "
                f"{declared.type!r}, source reads it as {read.type!r}",
                path=path, context=cname))
        if read.default is not None and declared.default is not None and \
                read.default != declared.default:
            out.append(finding(
                "RA404",
                f"{cname}.{name}: manifest default "
                f"{declared.default!r} != source default "
                f"{read.default!r}",
                path=path, context=cname))
    if not (manifest.open_parameters or dynamic):
        for name, declared in man_params.items():
            if name in src_params or declared.extern:
                continue
            out.append(finding(
                "RA403",
                f"{cname}: manifest declares parameter {name!r} the "
                f"source never reads (mark it extern if it is consumed "
                f"elsewhere)",
                path=path, context=cname))

    # -- state declarations ------------------------------------------------
    if extracted.checkpoint and not manifest.checkpoint:
        out.append(finding(
            "RA405",
            f"{cname} implements checkpoint_state but the manifest "
            f"declares checkpoint: false — stateful components must "
            f"declare their checkpoint contract",
            path=path, context=cname))
    elif manifest.checkpoint and not extracted.checkpoint:
        out.append(finding(
            "RA405",
            f"{cname}: manifest declares checkpoint: true but the "
            f"source implements no checkpoint_state",
            path=path, context=cname))
    if sorted(extracted.scmd_shared) != sorted(manifest.scmd_shared):
        out.append(finding(
            "RA405",
            f"{cname}: scmd-shared declaration drift — source pragmas "
            f"{sorted(extracted.scmd_shared)}, manifest declares "
            f"{sorted(manifest.scmd_shared)}",
            path=path, context=cname))
    return out


def check_drift(classes: Iterable[type] | None = None,
                directory: str | None = None) -> list[Finding]:
    """Run RA401-RA406 over ``classes`` against the committed manifests.

    Default scan set: every shipped component plus the three application
    drivers (:func:`repro.analysis.wiring.default_classes`).  Manifest
    files naming no scanned class are reported too, so deleted
    components cannot leave stale contracts behind.
    """
    if classes is None:
        from repro.analysis.wiring import default_classes

        classes = default_classes()
    classes = list(classes)
    directory = directory or default_manifest_dir()
    manifests = load_manifest_dir(directory)
    out: list[Finding] = []
    seen: set[str] = set()
    for cls in classes:
        cname = cls.__name__
        seen.add(cname)
        manifest = manifests.get(cname)
        if manifest is None:
            out.append(finding(
                "RA406",
                f"{cname} has no manifest under {directory} — run "
                f"`python -m repro.analysis manifest emit` and annotate "
                f"the draft",
                path=getattr(inspect.getmodule(cls), "__file__", None),
                context=cname))
            continue
        out.extend(_drift_one(cls, manifest,
                              manifest_path(directory, cname)))
    for cname, manifest in manifests.items():
        if cname not in seen:
            out.append(finding(
                "RA403",
                f"manifest {cname}.json names a class not in the scan "
                f"set — delete it or register the component",
                path=manifest_path(directory, cname), context=cname))
    return out


__all__ = [
    "MANIFEST_SCHEMA", "PARAM_TYPES",
    "ComponentManifest", "PortSpec", "ParamSpec",
    "ParamRead", "ClassFacts",
    "default_manifest_dir", "scan_module_params", "class_facts",
    "extract_manifest", "merge_manifest", "emit_manifest",
    "write_manifest", "manifest_path",
    "load_manifest_file", "load_manifest_dir", "load_manifests",
    "known_parameter", "value_type_ok", "coerce_value",
    "check_drift",
]
