"""CLI: ``python -m repro.analysis [options] [target ...]``.

Exit codes (CI semantics):

* ``0`` — nothing at or above the gate severity (``error`` by default,
  ``warning`` with ``--strict``).
* ``1`` — findings at the gate.
* ``2`` — usage error / unresolvable target.

Manifest subcommand::

    python -m repro.analysis manifest emit  [--dir DIR] [CLASS ...]
    python -m repro.analysis manifest check [--dir DIR] [--format ...]

``emit`` (re)generates component manifests from the source,
merge-preserving hand annotations; ``check`` runs the RA40x drift pass
with the exit semantics above.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    Report,
    Severity,
    analyze_targets,
    codes_table,
    default_targets,
)
from repro.analysis.manifest import (check_drift, default_manifest_dir,
                                     emit_manifest)
from repro.analysis.scmd_safety import DEFAULT_ALLOWLIST
from repro.errors import AnalysisError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically validate CCA assemblies and components "
                    "without executing them.")
    parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="rc-script file, .py file, directory, importable package, "
             "or assembly name (ignition0d, reaction_diffusion, "
             "shock_interface).  Default: "
             + " ".join(default_targets()) + " + IGNITION0D_SCRIPT")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not only errors")
    parser.add_argument(
        "--races", action="store_true",
        help="also run the RA3xx SCMD race pass (happens-before "
             "approximation over shared read/write sets and rc-script "
             "wiring)")
    parser.add_argument(
        "--contracts", action="store_true",
        help="also run the RA41x manifest contract pass (parameter "
             "names/types/ranges and schedule checks against the "
             "committed component manifests)")
    parser.add_argument(
        "--min-severity", choices=("info", "warning", "error"),
        default="info",
        help="lowest severity shown in text output (default: info)")
    parser.add_argument(
        "--allow", action="append", default=[], metavar="NAME",
        help="extra allowlisted shared-singleton name for the SCMD "
             "pass (repeatable)")
    parser.add_argument(
        "--codes", action="store_true",
        help="print the finding-code table and exit")
    return parser


def build_manifest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis manifest",
        description="Generate and drift-check declarative component "
                    "manifests (src/repro/manifests/).")
    sub = parser.add_subparsers(dest="action", required=True)
    emit = sub.add_parser(
        "emit", help="(re)generate manifests from the component source, "
                     "merge-preserving hand annotations")
    emit.add_argument(
        "classes", nargs="*", metavar="CLASS",
        help="component class names to emit (default: every shipped "
             "component + driver)")
    emit.add_argument("--dir", default=None,
                      help="manifest directory (default: the committed "
                           "src/repro/manifests tree)")
    emit.add_argument("--no-merge", action="store_true",
                      help="overwrite instead of merging annotations "
                           "from an existing manifest")
    check = sub.add_parser(
        "check", help="run the RA40x drift pass over the shipped "
                      "components against the committed manifests")
    check.add_argument("--dir", default=None,
                       help="manifest directory to check against")
    check.add_argument("--format", choices=("text", "json"),
                       default="text")
    check.add_argument("--strict", action="store_true",
                       help="fail (exit 1) on warnings too")
    check.add_argument("--min-severity",
                       choices=("info", "warning", "error"),
                       default="info")
    return parser


def manifest_main(argv: list[str]) -> int:
    args = build_manifest_parser().parse_args(argv)
    from repro.analysis.wiring import default_classes

    classes = default_classes()
    if args.action == "emit":
        if args.classes:
            by_name = {cls.__name__: cls for cls in classes}
            unknown = [n for n in args.classes if n not in by_name]
            if unknown:
                print(f"error: unknown component class(es): "
                      f"{', '.join(unknown)}", file=sys.stderr)
                return 2
            classes = [by_name[n] for n in args.classes]
        directory = args.dir or default_manifest_dir()
        for cls in classes:
            path = emit_manifest(cls, directory, merge=not args.no_merge)
            print(path)
        return 0
    report = Report(check_drift(classes, args.dir))
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(Severity.parse(args.min_severity)))
    gate = Severity.WARNING if args.strict else Severity.ERROR
    return report.exit_code(gate)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "manifest":
        return manifest_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.codes:
        print(codes_table())
        return 0
    allowlist = DEFAULT_ALLOWLIST | frozenset(args.allow)
    try:
        report = analyze_targets(args.targets or None, allowlist=allowlist,
                                 check_races=args.races,
                                 check_contracts=args.contracts)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(Severity.parse(args.min_severity)))
    gate = Severity.WARNING if args.strict else Severity.ERROR
    return report.exit_code(gate)


if __name__ == "__main__":
    sys.exit(main())
