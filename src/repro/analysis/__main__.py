"""CLI: ``python -m repro.analysis [options] [target ...]``.

Exit codes (CI semantics):

* ``0`` — nothing at or above the gate severity (``error`` by default,
  ``warning`` with ``--strict``).
* ``1`` — findings at the gate.
* ``2`` — usage error / unresolvable target.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    Severity,
    analyze_targets,
    codes_table,
    default_targets,
)
from repro.analysis.scmd_safety import DEFAULT_ALLOWLIST
from repro.errors import AnalysisError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically validate CCA assemblies and components "
                    "without executing them.")
    parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="rc-script file, .py file, directory, importable package, "
             "or assembly name (ignition0d, reaction_diffusion, "
             "shock_interface).  Default: "
             + " ".join(default_targets()) + " + IGNITION0D_SCRIPT")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not only errors")
    parser.add_argument(
        "--races", action="store_true",
        help="also run the RA3xx SCMD race pass (happens-before "
             "approximation over shared read/write sets and rc-script "
             "wiring)")
    parser.add_argument(
        "--min-severity", choices=("info", "warning", "error"),
        default="info",
        help="lowest severity shown in text output (default: info)")
    parser.add_argument(
        "--allow", action="append", default=[], metavar="NAME",
        help="extra allowlisted shared-singleton name for the SCMD "
             "pass (repeatable)")
    parser.add_argument(
        "--codes", action="store_true",
        help="print the finding-code table and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.codes:
        print(codes_table())
        return 0
    allowlist = DEFAULT_ALLOWLIST | frozenset(args.allow)
    try:
        report = analyze_targets(args.targets or None, allowlist=allowlist,
                                 check_races=args.races)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(Severity.parse(args.min_severity)))
    gate = Severity.WARNING if args.strict else Severity.ERROR
    return report.exit_code(gate)


if __name__ == "__main__":
    sys.exit(main())
