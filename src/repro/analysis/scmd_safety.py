"""SCMD shared-state analyzer.

:func:`repro.mpi.launcher.mpirun` runs the P "processors" of an SCMD job
as rank-threads inside one Python process.  Real MPI ranks get private
address spaces for free; our rank-threads do **not** — any module-level
mutable object or mutated class attribute is silently shared across
ranks, the exact hazard the paper's per-process frameworks avoid.  This
AST pass flags that state without importing anything:

* ``RA201`` — module-level mutable bound to a non-constant-style name.
* ``RA202`` — mutable class attribute (shared by every instance on every
  rank-thread).
* ``RA203`` — class attribute or module global *mutated* inside a
  ``go``/``run``/``step``-style method — the write races across ranks.
* ``RA204`` — module-level mutable bound to a CONSTANT_STYLE name
  (read-only by convention; reported as info so reviewers see it).

Allowlist: intentionally shared singletons — loggers, the tracing
module, metric registries — are exempt by name
(:data:`DEFAULT_ALLOWLIST`), and any flagged line can carry the pragma
comment ``# scmd: shared`` to opt in deliberately (document why next to
it).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.findings import Finding, finding

#: names whose module-level bindings are deliberately process-wide —
#: the obs registry/tracer and logging singletons the subsystems share.
DEFAULT_ALLOWLIST = frozenset({
    "_log", "log", "logger", "_logger",
    "_trace", "trace",
    "registry", "_registry", "_REGISTRY", "REGISTRY",
    "__all__", "__path__",
})

#: the pragma that marks a line as intentionally shared.
PRAGMA = "# scmd: shared"

#: rank-executed entry points whose writes to shared state race.
STEP_METHODS = frozenset({
    "go", "run", "step", "advance", "integrate", "apply", "exchange",
    "regrid", "initialize",
})

_CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

#: constructor names producing mutable containers.
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
    "zeros", "ones", "empty", "full", "array", "arange", "linspace",
    "zeros_like", "ones_like", "empty_like", "full_like",
})

#: method calls that mutate their receiver.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse", "fill",
})


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # [0] * n style preallocation
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    return False


def _assign_names(node: ast.stmt) -> list[tuple[str, ast.expr | None]]:
    """(name, value) pairs for plain-name assignments in a statement."""
    if isinstance(node, ast.Assign):
        return [(t.id, node.value) for t in node.targets
                if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [(node.target.id, node.value)]
    return []


@dataclass
class _Ctx:
    path: str
    lines: list[str]
    allowlist: frozenset[str]

    def pragma(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            return PRAGMA in self.lines[lineno - 1]
        return False


def analyze_source(text: str, path: str = "<source>",
                   allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                   ) -> list[Finding]:
    """Run the SCMD shared-state pass over one Python source text."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [finding("RA001", f"not parseable as Python: {exc.msg}",
                        path=path, line=exc.lineno)]
    ctx = _Ctx(path=path, lines=text.splitlines(), allowlist=allowlist)
    out: list[Finding] = []
    module_mutables: set[str] = set()

    # -- pass 1: module-level and class-level bindings ----------------------
    for node in tree.body:
        for name, value in _assign_names(node):
            if value is None or not _is_mutable_value(value):
                continue
            module_mutables.add(name)
            if name in ctx.allowlist or ctx.pragma(node.lineno):
                continue
            if _CONSTANT_NAME.match(name):
                out.append(finding(
                    "RA204",
                    f"module-level mutable {name!r} is shared across "
                    f"SCMD rank-threads (constant-style name: treated "
                    f"as read-only)",
                    path=path, line=node.lineno, context=name))
            else:
                out.append(finding(
                    "RA201",
                    f"module-level mutable {name!r} is shared across "
                    f"SCMD rank-threads; make it per-instance, rename "
                    f"it CONSTANT_STYLE, or mark it '{PRAGMA}'",
                    path=path, line=node.lineno, context=name))

    class_names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        class_names.add(node.name)
        for stmt in node.body:
            for name, value in _assign_names(stmt):
                if value is None or not _is_mutable_value(value):
                    continue
                if name in ctx.allowlist or ctx.pragma(stmt.lineno):
                    continue
                out.append(finding(
                    "RA202",
                    f"{node.name}.{name} is a mutable class attribute — "
                    f"one object shared by every instance on every "
                    f"rank-thread; initialise it in __init__ or "
                    f"set_services",
                    path=path, line=stmt.lineno, context=node.name))

    # -- pass 2: mutations inside rank-executed methods --------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name not in STEP_METHODS:
                continue
            out.extend(_scan_method(ctx, node.name, method,
                                    module_mutables, class_names))
    return out


def _scan_method(ctx: _Ctx, class_name: str, method: ast.FunctionDef,
                 module_mutables: set[str],
                 class_names: set[str]) -> list[Finding]:
    out: list[Finding] = []
    globals_declared: set[str] = set()

    def flag(lineno: int, what: str, target: str) -> None:
        if ctx.pragma(lineno) or target in ctx.allowlist:
            return
        out.append(finding(
            "RA203",
            f"{class_name}.{method.name} {what} — rank-threads share "
            f"this object in SCMD mode; move it to instance state or "
            f"mark it '{PRAGMA}'",
            path=ctx.path, line=lineno, context=class_name))

    for node in ast.walk(method):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        # ClassName.attr = ... / self.__class__.attr = ...
        targets: list[ast.expr] = []
        if isinstance(node, (ast.Assign,)):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Attribute):
                base = t.value
                if isinstance(base, ast.Name) and base.id in class_names:
                    flag(node.lineno,
                         f"assigns class attribute {base.id}.{t.attr}",
                         t.attr)
                elif isinstance(base, ast.Attribute) and \
                        base.attr == "__class__":
                    flag(node.lineno,
                         f"assigns class attribute via __class__.{t.attr}",
                         t.attr)
            elif isinstance(t, ast.Name) and t.id in globals_declared:
                flag(node.lineno, f"rebinds module global {t.id!r}", t.id)
            elif isinstance(t, ast.Subscript):
                base = t.value
                if isinstance(base, ast.Name) and \
                        base.id in module_mutables:
                    flag(node.lineno,
                         f"writes into module-level {base.id!r}", base.id)
                elif isinstance(base, ast.Attribute):
                    owner = base.value
                    if isinstance(owner, ast.Name) and \
                            owner.id in class_names:
                        flag(node.lineno,
                             f"writes into class attribute "
                             f"{owner.id}.{base.attr}", base.attr)
                    elif isinstance(owner, ast.Attribute) and \
                            owner.attr == "__class__":
                        flag(node.lineno,
                             f"writes into class attribute via "
                             f"__class__.{base.attr}", base.attr)
        # _CACHE.append(...) style mutation of module-level containers
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id in module_mutables:
            flag(node.lineno,
                 f"calls {node.func.value.id}.{node.func.attr}() on "
                 f"module-level state", node.func.value.id)
    return out


def analyze_file(path: str,
                 allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                 ) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_source(fh.read(), path, allowlist)
