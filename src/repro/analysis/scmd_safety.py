"""SCMD shared-state analyzer.

:func:`repro.mpi.launcher.mpirun` runs the P "processors" of an SCMD job
as rank-threads inside one Python process.  Real MPI ranks get private
address spaces for free; our rank-threads do **not** — any module-level
mutable object or mutated class attribute is silently shared across
ranks, the exact hazard the paper's per-process frameworks avoid.  This
AST pass flags that state without importing anything:

* ``RA201`` — module-level mutable bound to a non-constant-style name.
* ``RA202`` — mutable class attribute (shared by every instance on every
  rank-thread).
* ``RA203`` — class attribute or module global *mutated* inside a
  ``go``/``run``/``step``-style method — the write races across ranks.
  Mutation is caught in every spelling: direct assignment, subscript
  stores, augmented assignment (``Cls.cache += ...``,
  ``self.tallies[k] += 1`` on a class-level dict), and mutating method
  calls (``Cls.seen.add(...)``, ``self.history.append(...)``,
  ``__class__.cfg.update(...)``).
* ``RA204`` — module-level mutable bound to a CONSTANT_STYLE name
  (read-only by convention; reported as info so reviewers see it).

Allowlist: intentionally shared singletons — loggers, the tracing
module, metric registries — are exempt by name
(:data:`DEFAULT_ALLOWLIST`), and any flagged statement can carry the
pragma comment ``# scmd: shared`` to opt in deliberately (document why
next to it).  The pragma matches anywhere on any line the statement
spans (so multi-line literals and lines with trailing commentary after
the pragma opt out too), with flexible spacing (``#scmd:shared`` works).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.findings import Finding, finding

#: names whose module-level bindings are deliberately process-wide —
#: the obs registry/tracer and logging singletons the subsystems share.
DEFAULT_ALLOWLIST = frozenset({
    "_log", "log", "logger", "_logger",
    "_trace", "trace",
    "registry", "_registry", "_REGISTRY", "REGISTRY",
    "__all__", "__path__",
})

#: the pragma that marks a statement as intentionally shared (canonical
#: spelling; matching is done by :data:`_PRAGMA_RE` so spacing varies).
PRAGMA = "# scmd: shared"

#: tolerant pragma matcher: optional space after ``#`` and around the
#: colon, and anything may follow (a why-comment on the same line).
_PRAGMA_RE = re.compile(r"#\s*scmd\s*:\s*shared\b")

#: rank-executed entry points whose writes to shared state race.
STEP_METHODS = frozenset({
    "go", "run", "step", "advance", "integrate", "apply", "exchange",
    "regrid", "initialize",
})

_CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

#: constructor names producing mutable containers.
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
    "zeros", "ones", "empty", "full", "array", "arange", "linspace",
    "zeros_like", "ones_like", "empty_like", "full_like",
})

#: method calls that mutate their receiver.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse", "fill",
})


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # [0] * n style preallocation
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    return False


def _assign_names(node: ast.stmt) -> list[tuple[str, ast.expr | None]]:
    """(name, value) pairs for plain-name assignments in a statement."""
    if isinstance(node, ast.Assign):
        return [(t.id, node.value) for t in node.targets
                if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [(node.target.id, node.value)]
    return []


@dataclass
class _Ctx:
    path: str
    lines: list[str]
    allowlist: frozenset[str]

    def pragma(self, node: ast.AST | int) -> bool:
        """True when the pragma appears on *any* line the statement
        spans — a multi-line literal can carry it on its closing brace
        just as well as on the opening line."""
        if isinstance(node, int):
            first = last = node
        else:
            first = getattr(node, "lineno", 0)
            last = getattr(node, "end_lineno", None) or first
        for lineno in range(first, last + 1):
            if 1 <= lineno <= len(self.lines) and \
                    _PRAGMA_RE.search(self.lines[lineno - 1]):
                return True
        return False


def shared_bindings(tree: ast.Module) -> tuple[dict[str, int],
                                               dict[str, dict[str, int]]]:
    """The file's shared-object model, reused by the RA3xx race pass.

    Returns ``(module_mutables, class_mutables)`` where the first maps a
    module-level mutable binding to its line and the second maps a class
    name to its mutable class attributes (``attr -> line``).
    """
    module_mutables: dict[str, int] = {}
    for node in tree.body:
        for name, value in _assign_names(node):
            if value is not None and _is_mutable_value(value):
                module_mutables.setdefault(name, node.lineno)
    class_mutables: dict[str, dict[str, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs = class_mutables.setdefault(node.name, {})
        for stmt in node.body:
            for name, value in _assign_names(stmt):
                if value is not None and _is_mutable_value(value):
                    attrs.setdefault(name, stmt.lineno)
    return module_mutables, class_mutables


def analyze_source(text: str, path: str = "<source>",
                   allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                   ) -> list[Finding]:
    """Run the SCMD shared-state pass over one Python source text."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [finding("RA001", f"not parseable as Python: {exc.msg}",
                        path=path, line=exc.lineno)]
    ctx = _Ctx(path=path, lines=text.splitlines(), allowlist=allowlist)
    out: list[Finding] = []
    module_mutables_map, class_mutables = shared_bindings(tree)
    module_mutables = set(module_mutables_map)

    # -- pass 1: module-level and class-level bindings ----------------------
    for node in tree.body:
        for name, value in _assign_names(node):
            if value is None or not _is_mutable_value(value):
                continue
            if name in ctx.allowlist or ctx.pragma(node):
                continue
            if _CONSTANT_NAME.match(name):
                out.append(finding(
                    "RA204",
                    f"module-level mutable {name!r} is shared across "
                    f"SCMD rank-threads (constant-style name: treated "
                    f"as read-only)",
                    path=path, line=node.lineno, context=name))
            else:
                out.append(finding(
                    "RA201",
                    f"module-level mutable {name!r} is shared across "
                    f"SCMD rank-threads; make it per-instance, rename "
                    f"it CONSTANT_STYLE, or mark it '{PRAGMA}'",
                    path=path, line=node.lineno, context=name))

    class_names: set[str] = set(class_mutables)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            for name, value in _assign_names(stmt):
                if value is None or not _is_mutable_value(value):
                    continue
                if name in ctx.allowlist or ctx.pragma(stmt):
                    continue
                out.append(finding(
                    "RA202",
                    f"{node.name}.{name} is a mutable class attribute — "
                    f"one object shared by every instance on every "
                    f"rank-thread; initialise it in __init__ or "
                    f"set_services",
                    path=path, line=stmt.lineno, context=node.name))

    # -- pass 2: mutations inside rank-executed methods --------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name not in STEP_METHODS:
                continue
            out.extend(_scan_method(
                ctx, node.name, method, module_mutables, class_names,
                class_mutables.get(node.name, {})))
    return out


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _scan_method(ctx: _Ctx, class_name: str, method: ast.FunctionDef,
                 module_mutables: set[str],
                 class_names: set[str],
                 own_mutables: dict[str, int] | None = None,
                 ) -> list[Finding]:
    out: list[Finding] = []
    globals_declared: set[str] = set()
    own_mutables = own_mutables or {}
    # ``self.attr = ...`` plain stores shadow the class attribute with an
    # instance attribute — after one, later ``self.attr`` uses are private.
    shadowed: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Attribute) and _is_self(t.value):
                    shadowed.add(t.attr)

    def flag(node: ast.AST, what: str, target: str) -> None:
        if ctx.pragma(node) or target in ctx.allowlist:
            return
        out.append(finding(
            "RA203",
            f"{class_name}.{method.name} {what} — rank-threads share "
            f"this object in SCMD mode; move it to instance state or "
            f"mark it '{PRAGMA}'",
            path=ctx.path, line=node.lineno, context=class_name))

    def is_class_shared_self_attr(attr: str) -> bool:
        return attr in own_mutables and attr not in shadowed

    for node in ast.walk(method):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        # ClassName.attr = ... / self.__class__.attr = ...
        targets: list[ast.expr] = []
        if isinstance(node, (ast.Assign,)):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Attribute):
                base = t.value
                if isinstance(base, ast.Name) and base.id in class_names:
                    flag(node,
                         f"assigns class attribute {base.id}.{t.attr}",
                         t.attr)
                elif isinstance(base, ast.Attribute) and \
                        base.attr == "__class__":
                    flag(node,
                         f"assigns class attribute via __class__.{t.attr}",
                         t.attr)
                elif isinstance(node, ast.AugAssign) and \
                        _is_self(base) and \
                        is_class_shared_self_attr(t.attr):
                    # self.attr += ... mutates the shared class-level
                    # container in place (no instance shadow is created
                    # for lists/arrays; dict += is a TypeError anyway)
                    flag(node,
                         f"augments self.{t.attr} — a class-level "
                         f"mutable of {class_name}", t.attr)
            elif isinstance(t, ast.Name) and t.id in globals_declared:
                flag(node, f"rebinds module global {t.id!r}", t.id)
            elif isinstance(t, ast.Subscript):
                base = t.value
                if isinstance(base, ast.Name) and \
                        base.id in module_mutables:
                    flag(node,
                         f"writes into module-level {base.id!r}", base.id)
                elif isinstance(base, ast.Attribute):
                    owner = base.value
                    if isinstance(owner, ast.Name) and \
                            owner.id in class_names:
                        flag(node,
                             f"writes into class attribute "
                             f"{owner.id}.{base.attr}", base.attr)
                    elif isinstance(owner, ast.Attribute) and \
                            owner.attr == "__class__":
                        flag(node,
                             f"writes into class attribute via "
                             f"__class__.{base.attr}", base.attr)
                    elif _is_self(owner) and \
                            is_class_shared_self_attr(base.attr):
                        flag(node,
                             f"writes into self.{base.attr} — a "
                             f"class-level mutable of {class_name}",
                             base.attr)
        # mutating-method calls on shared containers, in every spelling:
        # _CACHE.append(...), Cls.seen.add(...), __class__.cfg.update(...),
        # self.history.append(...) when ``history`` is a class-level mutable
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS:
            recv = node.func.value
            meth = node.func.attr
            if isinstance(recv, ast.Name) and recv.id in module_mutables:
                flag(node,
                     f"calls {recv.id}.{meth}() on module-level state",
                     recv.id)
            elif isinstance(recv, ast.Attribute):
                owner = recv.value
                if isinstance(owner, ast.Name) and owner.id in class_names:
                    flag(node,
                         f"calls {owner.id}.{recv.attr}.{meth}() on a "
                         f"class-level mutable", recv.attr)
                elif isinstance(owner, ast.Attribute) and \
                        owner.attr == "__class__":
                    flag(node,
                         f"calls __class__.{recv.attr}.{meth}() on a "
                         f"class-level mutable", recv.attr)
                elif _is_self(owner) and \
                        is_class_shared_self_attr(recv.attr):
                    flag(node,
                         f"calls self.{recv.attr}.{meth}() on a "
                         f"class-level mutable of {class_name}",
                         recv.attr)
    return out


def analyze_file(path: str,
                 allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                 ) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_source(fh.read(), path, allowlist)
