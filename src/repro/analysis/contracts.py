"""The RA41x assembly contract pass: manifests vs actual assemblies.

Where the RA40x drift pass (:mod:`repro.analysis.manifest`) keeps the
committed manifests honest against the component *source*, this pass
turns them around and validates *assemblies* — rc-scripts, built
frameworks, and ``repro.serve`` job submissions — against the declared
contracts, the way the Cactus Configuration Language vets a parameter
file before a single step runs:

* ``RA411`` — parameter name the instance's class never declared
  (with a did-you-mean suggestion when one is close).
* ``RA412`` — value outside the declared ``min``/``max`` range.
* ``RA413`` — value not among the declared ``choices``.
* ``RA414`` — value of the wrong type for the declaration.
* ``RA415`` — a ``required: true`` parameter never set.
* ``RA416`` — (warning) parameter set on an instance whose class never
  reads it, while another instance in the same assembly would.
* ``RA417`` — a manifest-required uses port left unconnected on an
  instance the ``go`` directive reaches.
* ``RA418`` — a connection pairing incompatible manifest port types
  (catches what RA006 cannot when sandbox introspection fails).
* ``RA419`` — a serve job requesting an execution backend the
  :mod:`repro.exec` registry does not know (with a did-you-mean
  suggestion from the registry itself).

Everything here is manifest-driven and static: no component is
instantiated, so the pass is cheap enough to run inline on every
``serve`` submission (:func:`check_job` / :func:`coerce_job_params` are
the admission-control entry points used by
:meth:`repro.serve.service.SimulationService.submit`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.analysis.findings import Finding, finding
from repro.analysis.manifest import (ComponentManifest, coerce_value,
                                     load_manifests, value_type_ok)
from repro.cca.script import _parse_value, parse_script_tolerant


# --------------------------------------------------------------------------
# the assembly model both entry points reduce to
# --------------------------------------------------------------------------
@dataclass
class AssemblyModel:
    """The contract-relevant facts of one assembly."""

    path: str = "<assembly>"
    #: instance -> class name (first instantiate wins, as in RA003)
    instances: dict[str, str] = field(default_factory=dict)
    #: (instance, key, parsed value, line or None)
    parameters: list[tuple[str, str, Any, int | None]] = \
        field(default_factory=list)
    #: (user, uses_port, provider, provides_port, line or None)
    connections: list[tuple[str, str, str, str, int | None]] = \
        field(default_factory=list)
    #: go targets; empty = library assembly, RA417 is skipped
    go_targets: list[str] = field(default_factory=list)
    #: instances to treat as go-reachable even without a go directive
    #: (built frameworks carry no schedule, so everything counts)
    assume_reachable: bool = False
    #: rc syntax errors, surfaced only by :func:`check_job`
    syntax_errors: list[tuple[int, str]] = field(default_factory=list)

    def reachable(self) -> set[str]:
        """Instances the schedule can touch: BFS over uses->provider
        edges from every ``go`` target."""
        if self.assume_reachable:
            return set(self.instances)
        edges: dict[str, set[str]] = {}
        for user, _up, provider, _pp, _line in self.connections:
            edges.setdefault(user, set()).add(provider)
        seen: set[str] = set()
        frontier = [t for t in self.go_targets if t in self.instances]
        while frontier:
            inst = frontier.pop()
            if inst in seen:
                continue
            seen.add(inst)
            frontier.extend(edges.get(inst, ()))
        return seen


def model_from_script(text: str, path: str = "<script>") -> AssemblyModel:
    """Reduce an rc-script to its :class:`AssemblyModel` (tolerant: bad
    lines are recorded, good ones still contribute)."""
    directives, errors = parse_script_tolerant(text)
    model = AssemblyModel(path=path, syntax_errors=list(errors))
    for d in directives:
        if d.verb == "instantiate":
            model.instances.setdefault(d.args[1], d.args[0])
        elif d.verb == "parameter":
            model.parameters.append(
                (d.args[0], d.args[1], _parse_value(list(d.args[2:])),
                 d.line_no))
        elif d.verb == "connect":
            model.connections.append(
                (d.args[0], d.args[1], d.args[2], d.args[3], d.line_no))
        elif d.verb == "go":
            model.go_targets.append(d.args[0])
    return model


def model_from_framework(fw, path: str = "<assembly>") -> AssemblyModel:
    """Reduce a built :class:`~repro.cca.framework.Framework`.

    Built assemblies carry no ``go`` schedule (the builder returns
    before running), so every instance is treated as reachable — the
    shipped builders wire everything they instantiate.
    """
    model = AssemblyModel(path=path, assume_reachable=True)
    for name in fw.instance_names():
        model.instances[name] = type(fw.get_component(name)).__name__
        for key, value in sorted(fw.services_of(name).parameters.items()):
            model.parameters.append((name, key, value, None))
    for (user, uport), (provider, pport) in sorted(fw.connections().items()):
        model.connections.append((user, uport, provider, pport, None))
    return model


# --------------------------------------------------------------------------
# the checks
# --------------------------------------------------------------------------
def _check_value(manifest: ComponentManifest, instance: str, key: str,
                 value: Any, *, path: str, line: int | None,
                 declared_elsewhere: Mapping[str, list[tuple[str, str]]],
                 ) -> list[Finding]:
    """RA411-RA414 + RA416 for one ``parameter`` setting."""
    cname = manifest.class_name
    spec = manifest.param(key)
    if spec is None:
        if manifest.open_parameters:
            return []
        near = difflib.get_close_matches(key, manifest.param_names(),
                                         n=1, cutoff=0.6)
        if near:
            return [finding(
                "RA411",
                f"{instance} ({cname}) has no parameter {key!r} — did "
                f"you mean {near[0]!r}?",
                path=path, line=line, context=f"{instance}.{key}")]
        owners = [(i, c) for i, c in declared_elsewhere.get(key, [])
                  if i != instance]
        if owners:
            inst2, cls2 = owners[0]
            return [finding(
                "RA416",
                f"parameter {key!r} set on {instance} ({cname}), whose "
                f"class never reads it — {inst2} ({cls2}) declares it; "
                f"the setting is silently ignored",
                path=path, line=line, context=f"{instance}.{key}")]
        return [finding(
            "RA411",
            f"{instance} ({cname}) has no parameter {key!r} (declares: "
            f"{', '.join(manifest.param_names()) or '<none>'})",
            path=path, line=line, context=f"{instance}.{key}")]
    if not value_type_ok(spec.type, value):
        return [finding(
            "RA414",
            f"{instance}.{key} = {value!r}: declared type is "
            f"{spec.type!r}, got {type(value).__name__}",
            path=path, line=line, context=f"{instance}.{key}")]
    out: list[Finding] = []
    v = coerce_value(spec.type, value)
    if spec.choices is not None and v not in spec.choices and \
            str(v) not in {str(c) for c in spec.choices}:
        out.append(finding(
            "RA413",
            f"{instance}.{key} = {v!r} is not one of the declared "
            f"choices {spec.choices}",
            path=path, line=line, context=f"{instance}.{key}"))
    if isinstance(v, (int, float)) and not isinstance(v, bool):
        if spec.min is not None and v < spec.min:
            out.append(finding(
                "RA412",
                f"{instance}.{key} = {v!r} is below the declared "
                f"minimum {spec.min!r}",
                path=path, line=line, context=f"{instance}.{key}"))
        if spec.max is not None and v > spec.max:
            out.append(finding(
                "RA412",
                f"{instance}.{key} = {v!r} is above the declared "
                f"maximum {spec.max!r}",
                path=path, line=line, context=f"{instance}.{key}"))
    return out


def check_model(model: AssemblyModel,
                manifests: Mapping[str, ComponentManifest] | None = None,
                *, include_syntax: bool = False) -> list[Finding]:
    """Run RA411-RA418 over one :class:`AssemblyModel`.

    Instances whose class has no manifest are skipped — the drift pass
    (RA406) is what forces shipped components to have one; ad-hoc test
    components simply opt out of contract checking.
    """
    manifests = manifests if manifests is not None else load_manifests()
    out: list[Finding] = []
    if include_syntax:
        for line_no, message in model.syntax_errors:
            out.append(finding("RA001", message, path=model.path,
                               line=line_no))

    def manifest_of(instance: str) -> ComponentManifest | None:
        cls = model.instances.get(instance)
        return manifests.get(cls) if cls is not None else None

    # which instances' classes declare each parameter name (for RA416)
    declared_elsewhere: dict[str, list[tuple[str, str]]] = {}
    for instance, cls in model.instances.items():
        m = manifests.get(cls)
        if m is None:
            continue
        for p in m.parameters:
            declared_elsewhere.setdefault(p.name, []).append(
                (instance, cls))

    set_keys: dict[str, set[str]] = {i: set() for i in model.instances}
    for instance, key, value, line in model.parameters:
        set_keys.setdefault(instance, set()).add(key)
        m = manifest_of(instance)
        if m is None:
            continue
        out.extend(_check_value(m, instance, key, value, path=model.path,
                                line=line,
                                declared_elsewhere=declared_elsewhere))

    # RA415: required parameters never set
    for instance, cls in model.instances.items():
        m = manifests.get(cls)
        if m is None:
            continue
        for p in m.parameters:
            if p.required and p.name not in set_keys.get(instance, ()):
                out.append(finding(
                    "RA415",
                    f"{instance} ({cls}) requires parameter "
                    f"{p.name!r} but the assembly never sets it",
                    path=model.path, context=f"{instance}.{p.name}"))

    # RA418: manifest port-type pairing on every connection
    connected: set[tuple[str, str]] = set()
    for user, uport, provider, pport, line in model.connections:
        connected.add((user, uport))
        um, pm = manifest_of(user), manifest_of(provider)
        uspec = um.uses_port(uport) if um is not None else None
        pspec = pm.provides_port(pport) if pm is not None else None
        if uspec is not None and pspec is not None and \
                uspec.type != pspec.type:
            out.append(finding(
                "RA418",
                f"connect {user}.{uport} [{uspec.type}] -> "
                f"{provider}.{pport} [{pspec.type}]: manifest port "
                f"types are incompatible",
                path=model.path, line=line,
                context=f"{user}.{uport}"))

    # RA417: required uses ports of go-reachable instances
    if model.go_targets or model.assume_reachable:
        for instance in sorted(model.reachable()):
            m = manifest_of(instance)
            if m is None:
                continue
            for p in m.uses:
                if p.required and (instance, p.name) not in connected:
                    out.append(finding(
                        "RA417",
                        f"{instance} ({m.class_name}) is go-reachable "
                        f"but its required uses port {p.name!r} "
                        f"[{p.type}] is unconnected",
                        path=model.path,
                        context=f"{instance}.{p.name}"))
    return out


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------
def analyze_script_contracts(
        text: str, path: str = "<script>",
        manifests: Mapping[str, ComponentManifest] | None = None,
        *, include_syntax: bool = False) -> list[Finding]:
    """RA41x over an rc-script (syntax errors only when asked — the
    wiring pass already owns RA001 in the combined CLI run)."""
    return check_model(model_from_script(text, path), manifests,
                       include_syntax=include_syntax)


def analyze_script_file_contracts(
        path: str,
        manifests: Mapping[str, ComponentManifest] | None = None,
        ) -> list[Finding]:
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        return [finding("RA001", f"cannot read {path!r}: {exc}",
                        path=path)]
    return analyze_script_contracts(text, path, manifests)


def analyze_framework_contracts(
        fw, path: str = "<assembly>",
        manifests: Mapping[str, ComponentManifest] | None = None,
        ) -> list[Finding]:
    """RA41x over a built framework (builder-produced assemblies)."""
    return check_model(model_from_framework(fw, path), manifests)


def analyze_assembly_contracts(name: str) -> list[Finding]:
    """RA41x over a shipped builder assembly by name."""
    from repro.analysis.wiring import _builders
    from repro.cca.framework import Framework

    builders = _builders()
    if name not in builders:
        return [finding(
            "RA002",
            f"unknown assembly {name!r} (have: "
            f"{', '.join(sorted(builders))})", path=name)]
    fw = Framework()
    builders[name](fw)
    return analyze_framework_contracts(fw, path=f"<assembly:{name}>")


# --------------------------------------------------------------------------
# serve admission control
# --------------------------------------------------------------------------
def _override_findings(model: AssemblyModel,
                       manifests: Mapping[str, ComponentManifest],
                       params: Mapping[str, Any],
                       path: str) -> list[Finding]:
    out: list[Finding] = []
    declared_elsewhere: dict[str, list[tuple[str, str]]] = {}
    for instance, cls in model.instances.items():
        m = manifests.get(cls)
        if m is None:
            continue
        for p in m.parameters:
            declared_elsewhere.setdefault(p.name, []).append(
                (instance, cls))
    for dotted, value in sorted(params.items()):
        instance, _, key = dotted.partition(".")
        cls = model.instances.get(instance)
        if cls is None:
            near = difflib.get_close_matches(
                instance, list(model.instances), n=1, cutoff=0.6)
            hint = f" — did you mean {near[0]!r}?" if near else ""
            out.append(finding(
                "RA411",
                f"override {dotted!r} targets an instance the script "
                f"never instantiates{hint}",
                path=path, context=dotted))
            continue
        m = manifests.get(cls)
        if m is None:
            continue
        out.extend(_check_value(m, instance, key, value, path=path,
                                line=None,
                                declared_elsewhere=declared_elsewhere))
    return out


def check_backend(backend: str, path: str = "<job>") -> list[Finding]:
    """RA419: the job's execution backend must exist in the
    :mod:`repro.exec` registry.  The finding's message is the registry's
    own error — including its did-you-mean suggestion (``"mp2"`` ->
    ``did you mean 'mp'?``) and the list of registered names."""
    if not backend:
        return []
    from repro.errors import MPIError
    from repro.exec import resolve_name
    try:
        resolve_name(backend)
    except MPIError as exc:
        return [finding("RA419", str(exc), path=path,
                        context=f"backend={backend}")]
    return []


def check_job(script: str, params: Mapping[str, Any] | None = None,
              *, manifests: Mapping[str, ComponentManifest] | None = None,
              path: str = "<job>", backend: str = "") -> list[Finding]:
    """The serve admission gate: RA41x over (script + overrides).

    Override keys count as "set" for the RA415 required-parameter check.
    Syntax errors are included (an unparseable script must be rejected
    at submit, not discovered by a worker).  ``backend`` (the job's
    execution-backend request, "" = service default) is validated
    against the :mod:`repro.exec` registry (RA419).
    """
    manifests = manifests if manifests is not None else load_manifests()
    model = model_from_script(script, path)
    out = _check_job_model(model, manifests, dict(params or {}), path)
    out.extend(check_backend(backend, path))
    return out


def _check_job_model(model: AssemblyModel,
                     manifests: Mapping[str, ComponentManifest],
                     params: Mapping[str, Any],
                     path: str) -> list[Finding]:
    # script-side checks, with override keys satisfying RA415
    override_keys: dict[str, set[str]] = {}
    for dotted in params:
        instance, _, key = dotted.partition(".")
        override_keys.setdefault(instance, set()).add(key)
    base = check_model(model, manifests, include_syntax=True)
    kept: list[Finding] = []
    for f in base:
        if f.code == "RA415" and f.context:
            instance, _, key = f.context.partition(".")
            if key in override_keys.get(instance, ()):
                continue  # satisfied by an override
        kept.append(f)
    kept.extend(_override_findings(model, manifests, params, path))
    return kept


def coerce_job_params(script: str, params: Mapping[str, Any] | None,
                      manifests: Mapping[str, ComponentManifest] | None
                      = None) -> dict[str, Any]:
    """Override values coerced to their declared types.

    ``{"Initializer.T0": "1100"}`` becomes ``1100.0`` when the manifest
    declares T0 a float — so string-typed CLI overrides key the result
    cache identically to their numeric form.  Values that do not fit
    the declared type (or target undeclared parameters) pass through
    unchanged; :func:`check_job` is where they are rejected.
    """
    manifests = manifests if manifests is not None else load_manifests()
    model = model_from_script(script)
    out: dict[str, Any] = {}
    for dotted, value in (params or {}).items():
        instance, _, key = dotted.partition(".")
        m = manifests.get(model.instances.get(instance, ""))
        spec = m.param(key) if m is not None else None
        if spec is not None and value_type_ok(spec.type, value):
            out[dotted] = coerce_value(spec.type, value)
        else:
            out[dotted] = value
    return out


__all__ = [
    "AssemblyModel", "model_from_script", "model_from_framework",
    "check_model", "analyze_script_contracts",
    "analyze_script_file_contracts", "analyze_framework_contracts",
    "analyze_assembly_contracts", "check_job", "coerce_job_params",
]
