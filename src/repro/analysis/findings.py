"""The findings model: stable codes, severities, reports.

Every analyzer pass reduces to a list of :class:`Finding` objects with a
stable ``RAxxx`` code, a severity, and (where known) a file path and line
number — the shape CI gates and editors consume.  The code table below is
the contract: codes are never renumbered, only added.

Code ranges
-----------
``RA0xx``
    Assembly/wiring analysis (rc-scripts and built frameworks).
``RA1xx``
    Component lifecycle linting (AST over component source).
``RA2xx``
    SCMD shared-state analysis (rank-threads share one address space).
``RA3xx``
    SCMD race detection (happens-before approximation over shared
    read/write sets and the rc-script wiring graph).
``RA40x``
    Manifest drift (declarative component manifests vs the source).
``RA41x``
    Assembly contract checks (rc-script parameters/schedule and serve
    job overrides validated against component manifests).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" in reports, not "Severity.ERROR"
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (have: "
                f"{[s.name.lower() for s in cls]})") from None


#: code -> (default severity, one-line title).  The README's finding-code
#: table is generated from this dict (``python -m repro.analysis --codes``).
CODES: dict[str, tuple[Severity, str]] = {
    # -- RA0xx: assembly / wiring ------------------------------------------
    "RA001": (Severity.ERROR, "rc-script syntax error"),
    "RA002": (Severity.ERROR, "unknown component class"),
    "RA003": (Severity.ERROR, "duplicate instance name"),
    "RA004": (Severity.ERROR, "reference to unknown instance"),
    "RA005": (Severity.ERROR, "unknown uses/provides port name"),
    "RA006": (Severity.ERROR, "provides/uses port_type mismatch"),
    "RA007": (Severity.ERROR, "use before instantiate"),
    "RA008": (Severity.ERROR, "duplicate connection on a uses port"),
    "RA009": (Severity.ERROR, "go before connect (wiring after go)"),
    "RA010": (Severity.ERROR, "go target provides no go port"),
    "RA011": (Severity.ERROR,
              "unconnected uses port fetched without a guard"),
    "RA012": (Severity.INFO, "unconnected uses port (optional or unused)"),
    "RA013": (Severity.WARNING, "cycle in the port graph"),
    "RA014": (Severity.WARNING, "component class could not be introspected"),
    # -- RA1xx: component lifecycle ----------------------------------------
    "RA101": (Severity.ERROR, "get_port on a name never registered"),
    "RA102": (Severity.WARNING, "port registration outside set_services"),
    "RA103": (Severity.INFO, "get_port with no matching release_port"),
    "RA104": (Severity.ERROR,
              "port name drift between registration and use"),
    "RA105": (Severity.INFO, "uses port registered but never fetched"),
    "RA106": (Severity.INFO, "non-literal port name (not statically "
                             "checkable)"),
    # -- RA2xx: SCMD shared state ------------------------------------------
    "RA201": (Severity.WARNING, "module-level mutable state"),
    "RA202": (Severity.WARNING, "mutable class attribute"),
    "RA203": (Severity.WARNING,
              "class/module state mutated in a go/step method"),
    "RA204": (Severity.INFO,
              "module-level mutable bound to a constant-style name"),
    # -- RA3xx: SCMD race detection ----------------------------------------
    "RA301": (Severity.ERROR,
              "unguarded shared write from every rank-thread"),
    "RA302": (Severity.ERROR,
              "reduction into a shared object outside a collective"),
    "RA303": (Severity.WARNING,
              "rank-guarded shared write never published by a collective"),
    "RA304": (Severity.WARNING,
              "patch-array write in an all-patches loop without an "
              "owner guard"),
    "RA305": (Severity.ERROR,
              "collective call inside a rank-dependent branch"),
    "RA306": (Severity.ERROR,
              "parameter directive after go (config mutated mid-run)"),
    "RA307": (Severity.WARNING,
              "shared object written through multiple go-reachable "
              "instances"),
    "RA308": (Severity.INFO, "rank code reads a shared mutable"),
    # -- RA40x: manifest drift (declared contract vs component source) -----
    "RA401": (Severity.ERROR,
              "source declares a port the manifest omits"),
    "RA402": (Severity.ERROR,
              "source reads a parameter the manifest omits"),
    "RA403": (Severity.ERROR,
              "manifest port/parameter with no source counterpart"),
    "RA404": (Severity.ERROR,
              "manifest type/default disagrees with the source"),
    "RA405": (Severity.ERROR,
              "checkpoint declaration drift for a stateful component"),
    "RA406": (Severity.ERROR, "shipped component has no manifest"),
    # -- RA41x: assembly contract checks (rc-scripts + serve jobs) ---------
    "RA411": (Severity.ERROR, "unknown parameter name for the component"),
    "RA412": (Severity.ERROR, "parameter value outside the declared range"),
    "RA413": (Severity.ERROR,
              "parameter value not among the declared choices"),
    "RA414": (Severity.ERROR, "parameter value has the wrong type"),
    "RA415": (Severity.ERROR, "required parameter never set"),
    "RA416": (Severity.WARNING,
              "parameter set on an instance whose class never reads it"),
    "RA417": (Severity.ERROR,
              "required uses port of a go-reachable instance unconnected"),
    "RA418": (Severity.ERROR,
              "connection pairs incompatible manifest port types"),
    "RA419": (Severity.ERROR,
              "unknown execution backend for the job"),
}


@dataclass(frozen=True)
class Finding:
    """One analyzer result, pinned to a code from :data:`CODES`."""

    code: str
    message: str
    path: str | None = None
    line: int | None = None
    context: str | None = None  # instance/class/port the finding is about
    severity: Severity = field(default=Severity.ERROR)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown finding code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def format(self) -> str:
        """Compiler-style one-liner: ``path:line: RAxxx error: message``."""
        where = self.path or "<unknown>"
        if self.line is not None:
            where += f":{self.line}"
        return f"{where}: {self.code} {self.severity}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "title": self.title,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "context": self.context,
        }


def finding(code: str, message: str, *, path: str | None = None,
            line: int | None = None, context: str | None = None,
            severity: Severity | None = None) -> Finding:
    """Build a :class:`Finding`, defaulting severity from :data:`CODES`."""
    sev = severity if severity is not None else CODES[code][0]
    return Finding(code=code, message=message, path=path, line=line,
                   context=context, severity=sev)


class Report:
    """A collection of findings with gate/formatting helpers."""

    #: JSON schema version of :meth:`to_json`.
    SCHEMA = 1

    def __init__(self, findings: list[Finding] | None = None) -> None:
        self.findings: list[Finding] = list(findings or [])

    def extend(self, more: list[Finding]) -> None:
        self.findings.extend(more)

    def sorted(self) -> list[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (f.path or "", f.line or 0, f.code, f.message))

    def counts(self) -> dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for f in self.findings:
            out[str(f.severity)] += 1
        return out

    def at_least(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity >= severity]

    def exit_code(self, gate: Severity = Severity.ERROR) -> int:
        """0 when nothing at/above ``gate``, 1 otherwise (CI semantics)."""
        return 1 if self.at_least(gate) else 0

    # -- rendering -------------------------------------------------------------
    def format_text(self, min_severity: Severity = Severity.INFO) -> str:
        shown = [f for f in self.sorted() if f.severity >= min_severity]
        lines = [f.format() for f in shown]
        c = self.counts()
        lines.append(
            f"{c['error']} error(s), {c['warning']} warning(s), "
            f"{c['info']} info note(s)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "schema": self.SCHEMA,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted()],
        }, indent=2)


def codes_table() -> str:
    """The finding-code table (``--codes``; also pasted into README)."""
    lines = [f"{'code':<7} {'severity':<8} title",
             "-" * 60]
    for code in sorted(CODES):
        sev, title = CODES[code]
        lines.append(f"{code:<7} {str(sev):<8} {title}")
    return "\n".join(lines)
