"""Component lifecycle linter: an ``ast`` pass over component source.

CCAFFEINE's contract is that a component declares its ports in
``setServices`` and only calls through names it declared.  This pass
checks that contract without importing or executing anything:

* ``RA101`` — ``get_port`` on a string literal never passed to
  ``register_uses_port`` in the same scope.
* ``RA102`` — ``register_uses_port`` / ``add_provides_port`` called
  outside a ``set_services`` method (ports must exist before wiring).
* ``RA103`` — ``get_port`` with no matching ``release_port`` anywhere on
  the scope's paths (a checkout the runtime counterpart in
  :meth:`repro.cca.services.Services.release_port` would report leaked).
* ``RA104`` — registration/use *drift*: the fetched literal is a near
  miss of a registered name (``"mish"`` vs ``"mesh"``).
* ``RA105`` — a uses port registered but never fetched.
* ``RA106`` — a non-literal port name (not statically checkable).

Scoping rules: a class with a ``set_services`` method is a *component
class* and its fetches resolve against its own registrations; classes
without one (the little port-implementation helpers that close over
``owner.services``) resolve against the union of the file's component
registrations.  A ``get_port`` wrapped in ``try/except
PortNotConnectedError`` (or guarded by ``is_connected``) is *guarded* —
the port is optional by design and the wiring analyzer will not demand a
connection for it.
"""

from __future__ import annotations

import ast
import difflib
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, finding

#: exception names accepted as a get_port guard in ``except`` clauses.
_GUARD_EXCEPTIONS = {
    "PortNotConnectedError", "CCAError", "ReproError", "Exception",
}


@dataclass
class Fetch:
    """One ``get_port`` occurrence."""

    name: str
    line: int
    guarded: bool


@dataclass
class ClassScan:
    """Port traffic of one class."""

    name: str
    line: int
    has_set_services: bool = False
    uses: dict[str, int] = field(default_factory=dict)       # name -> line
    provides: dict[str, int] = field(default_factory=dict)   # name -> line
    fetches: list[Fetch] = field(default_factory=list)
    releases: set[str] = field(default_factory=set)
    #: (kind, name, line, method) registrations outside set_services
    stray_registrations: list[tuple[str, str, int, str]] = \
        field(default_factory=list)
    nonliteral_fetches: list[int] = field(default_factory=list)


@dataclass
class FileScan:
    """Everything the linter learned about one source file."""

    path: str
    classes: list[ClassScan] = field(default_factory=list)

    def component_classes(self) -> list[ClassScan]:
        return [c for c in self.classes if c.has_set_services]

    def union_uses(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.component_classes():
            out.update(c.uses)
        return out

    def union_fetches(self) -> list[Fetch]:
        return [f for c in self.classes for f in c.fetches]

    def union_releases(self) -> set[str]:
        return {r for c in self.classes for r in c.releases}


def _str_arg(call: ast.Call, pos: int, kw: str) -> str | None:
    """The string literal at positional ``pos`` or keyword ``kw``."""
    node: ast.expr | None = None
    if len(call.args) > pos:
        node = call.args[pos]
    else:
        for k in call.keywords:
            if k.arg == kw:
                node = k.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _method_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _catches_guard(handler: ast.ExceptHandler) -> bool:
    """Does this except clause catch a port-not-connected style error?"""
    t = handler.type
    if t is None:  # bare except
        return True
    names = []
    targets = t.elts if isinstance(t, ast.Tuple) else [t]
    for node in targets:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return bool(_GUARD_EXCEPTIONS & set(names))


def _is_connected_names(test: ast.expr) -> set[str]:
    """Port literals appearing in ``is_connected("x")`` calls in a test."""
    out: set[str] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and \
                _method_name(node) == "is_connected":
            name = _str_arg(node, 0, "port_name")
            if name:
                out.add(name)
    return out


class _ClassVisitor:
    """Walks one class body tracking guard context."""

    def __init__(self, scan: ClassScan) -> None:
        self.scan = scan

    def walk_class(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "set_services":
                    self.scan.has_set_services = True
                self._walk(stmt, method=stmt.name, guarded=False,
                           in_set_services=(stmt.name == "set_services"),
                           guarded_names=frozenset())

    # -- recursive statement walk ------------------------------------------
    def _walk(self, node: ast.AST, *, method: str, guarded: bool,
              in_set_services: bool, guarded_names: frozenset[str]) -> None:
        if isinstance(node, ast.Try):
            has_guard = any(_catches_guard(h) for h in node.handlers)
            for stmt in node.body:
                self._walk(stmt, method=method,
                           guarded=guarded or has_guard,
                           in_set_services=in_set_services,
                           guarded_names=guarded_names)
            for part in node.handlers + node.orelse + node.finalbody:
                self._walk(part, method=method, guarded=guarded,
                           in_set_services=in_set_services,
                           guarded_names=guarded_names)
            return
        if isinstance(node, ast.If):
            cond_names = _is_connected_names(node.test)
            for stmt in node.body:
                self._walk(stmt, method=method, guarded=guarded,
                           in_set_services=in_set_services,
                           guarded_names=guarded_names | cond_names)
            for stmt in node.orelse:
                self._walk(stmt, method=method, guarded=guarded,
                           in_set_services=in_set_services,
                           guarded_names=guarded_names)
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes are scanned as their own scope
        if isinstance(node, ast.Call):
            self._record_call(node, method=method, guarded=guarded,
                              in_set_services=in_set_services,
                              guarded_names=guarded_names)
        for child in ast.iter_child_nodes(node):
            self._walk(child, method=method, guarded=guarded,
                       in_set_services=in_set_services,
                       guarded_names=guarded_names)

    def _record_call(self, call: ast.Call, *, method: str, guarded: bool,
                     in_set_services: bool,
                     guarded_names: frozenset[str]) -> None:
        kind = _method_name(call)
        scan = self.scan
        if kind == "register_uses_port":
            name = _str_arg(call, 0, "port_name")
            if name is not None:
                scan.uses.setdefault(name, call.lineno)
                if not in_set_services:
                    scan.stray_registrations.append(
                        (kind, name, call.lineno, method))
        elif kind == "add_provides_port":
            name = _str_arg(call, 1, "port_name")
            if name is not None:
                scan.provides.setdefault(name, call.lineno)
                if not in_set_services:
                    scan.stray_registrations.append(
                        (kind, name, call.lineno, method))
        elif kind == "get_port":
            name = _str_arg(call, 0, "port_name")
            if name is None:
                scan.nonliteral_fetches.append(call.lineno)
            else:
                scan.fetches.append(Fetch(
                    name, call.lineno,
                    guarded or name in guarded_names))
        elif kind == "release_port":
            name = _str_arg(call, 0, "port_name")
            if name is not None:
                scan.releases.add(name)


def scan_source(text: str, path: str = "<source>") -> FileScan:
    """Parse ``text`` and collect per-class port traffic."""
    tree = ast.parse(text, filename=path)
    scan = FileScan(path=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            cscan = ClassScan(name=node.name, line=node.lineno)
            _ClassVisitor(cscan).walk_class(node)
            scan.classes.append(cscan)
    return scan


def analyze_source(text: str, path: str = "<source>") -> list[Finding]:
    """Run the lifecycle lint over one Python source text."""
    try:
        scan = scan_source(text, path)
    except SyntaxError as exc:
        return [finding("RA001", f"not parseable as Python: {exc.msg}",
                        path=path, line=exc.lineno)]
    out: list[Finding] = []
    union_uses = scan.union_uses()
    union_releases = scan.union_releases()
    fetched_names = {f.name for f in scan.union_fetches()}
    leak_reported: set[str] = set()

    for cls in scan.classes:
        # RA102: registrations outside set_services
        for kind, name, line, method in cls.stray_registrations:
            out.append(finding(
                "RA102",
                f"{cls.name}.{method} calls {kind}({name!r}) outside "
                f"set_services — ports must be declared at instantiation",
                path=path, line=line, context=cls.name))
        # RA106: dynamic port names
        for line in cls.nonliteral_fetches:
            out.append(finding(
                "RA106",
                f"{cls.name}: get_port with a non-literal port name "
                f"cannot be statically checked",
                path=path, line=line, context=cls.name))
        # RA101/RA104: fetches against the visible registrations.  A
        # component class sees its own table; helper port classes see the
        # union of the file's component tables.
        if cls.has_set_services:
            visible = cls.uses
        elif scan.component_classes():
            visible = union_uses
        else:
            visible = None  # nothing registered in this file: unresolvable
        if visible is not None:
            for fetch in cls.fetches:
                if fetch.name in visible:
                    continue
                near = difflib.get_close_matches(
                    fetch.name, visible, n=1, cutoff=0.6)
                if near:
                    out.append(finding(
                        "RA104",
                        f"{cls.name}: get_port({fetch.name!r}) does not "
                        f"match any registered uses port — did you mean "
                        f"{near[0]!r}?",
                        path=path, line=fetch.line, context=cls.name))
                else:
                    out.append(finding(
                        "RA101",
                        f"{cls.name}: get_port({fetch.name!r}) but no "
                        f"register_uses_port({fetch.name!r}) "
                        f"(registered: {sorted(visible) or '-'})",
                        path=path, line=fetch.line, context=cls.name))
        # RA103: checkout without release (one note per file+name)
        for fetch in cls.fetches:
            if fetch.name in union_releases or \
                    fetch.name in leak_reported:
                continue
            leak_reported.add(fetch.name)
            out.append(finding(
                "RA103",
                f"{cls.name}: get_port({fetch.name!r}) is never "
                f"release_port-ed on any path (leaked checkout)",
                path=path, line=fetch.line, context=cls.name))
        # RA105: registered but never fetched anywhere in the file
        if cls.has_set_services:
            for name, line in cls.uses.items():
                if name not in fetched_names:
                    out.append(finding(
                        "RA105",
                        f"{cls.name}: uses port {name!r} is registered "
                        f"but never fetched with get_port",
                        path=path, line=line, context=cls.name))
    return out


def analyze_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_source(fh.read(), path)


def class_fetch_profile(cls: type) -> dict[str, bool]:
    """``{port_name: all_fetches_guarded}`` for a component class.

    Used by the wiring analyzer to decide whether an unconnected uses
    port is an error (fetched unguarded somewhere) or merely optional.
    Fetches in same-module helper classes (the port implementations that
    close over ``owner.services``) are attributed to the component too —
    conservative in the right direction.  Returns ``{}`` when the source
    is unavailable (dynamically created classes).
    """
    try:
        module = inspect.getmodule(cls)
        text = inspect.getsource(module) if module else \
            textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    try:
        scan = scan_source(text, getattr(module, "__file__", "<class>")
                           or "<class>")
    except SyntaxError:  # pragma: no cover - module already imported
        return {}
    own = next((c for c in scan.classes if c.name == cls.__name__), None)
    if own is None:
        return {}
    fetches = list(own.fetches)
    for helper in scan.classes:
        if helper is own or helper.has_set_services:
            continue
        fetches.extend(f for f in helper.fetches if f.name in own.uses)
    profile: dict[str, bool] = {}
    for f in fetches:
        profile[f.name] = profile.get(f.name, True) and f.guarded
    return profile
