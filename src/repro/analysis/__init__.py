"""``repro.analysis`` — static validation of assemblies and components.

The paper's argument is that a component assembly is a *checkable
artifact*: ports are typed, wiring is declared in an rc-script, and the
framework refuses bad compositions before the simulation runs.  This
package is that pre-flight check for our reproduction, three passes
sharing one findings model (:mod:`repro.analysis.findings`):

* :mod:`repro.analysis.wiring` — rc-scripts and built frameworks,
  validated without executing ``go``.
* :mod:`repro.analysis.lifecycle` — AST lint of component source for
  port registration/fetch/release discipline.
* :mod:`repro.analysis.scmd_safety` — AST lint for state that aliases
  across SCMD rank-threads.
* :mod:`repro.analysis.manifest` / :mod:`repro.analysis.contracts` —
  declarative per-component manifests (RA40x drift pass keeps them
  honest against the source; RA41x validates assemblies and serve
  jobs against them).

CLI::

    python -m repro.analysis [--format text|json] [--strict] \
        [<rc-script|.py file|directory|package|assembly> ...]

With no targets the stock surface is analyzed: the three paper
assemblies, the shipped ``IGNITION0D_SCRIPT``, and the
``repro.components`` / ``repro.apps`` packages.  Exit code 0 means
nothing at the gate severity (error, or warning with ``--strict``).
"""

from __future__ import annotations

import importlib.util
import os
from typing import Sequence, Type

from repro.analysis import (contracts, lifecycle, manifest, races,
                            scmd_safety, wiring)
from repro.analysis.findings import (
    CODES,
    Finding,
    Report,
    Severity,
    codes_table,
    finding,
)
from repro.cca.component import Component
from repro.errors import AnalysisError

__all__ = [
    "CODES",
    "Finding",
    "Report",
    "Severity",
    "codes_table",
    "finding",
    "analyze_python_file",
    "analyze_rc_file",
    "analyze_target",
    "analyze_targets",
    "default_targets",
    "contracts",
    "lifecycle",
    "manifest",
    "races",
    "scmd_safety",
    "wiring",
]


def analyze_python_file(path: str,
                        allowlist=scmd_safety.DEFAULT_ALLOWLIST,
                        check_races: bool = False,
                        ) -> list[Finding]:
    """Lifecycle + SCMD passes (and optionally the RA3xx race pass)
    over one Python source file."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    out = (lifecycle.analyze_source(text, path)
           + scmd_safety.analyze_source(text, path, allowlist))
    if check_races:
        out += races.analyze_source_races(text, path, allowlist)
    return out


def analyze_rc_file(path: str,
                    classes: Sequence[Type[Component]] | None = None,
                    check_races: bool = False,
                    check_contracts: bool = False,
                    ) -> list[Finding]:
    """Wiring analysis (and optionally the RA3xx happens-before checks
    and/or the RA41x manifest contract pass) of an rc-script file."""
    out = wiring.analyze_script_file(path, classes)
    if check_races:
        out += races.analyze_script_file_races(path, classes)
    if check_contracts:
        out += contracts.analyze_script_file_contracts(path)
    return out


def _module_dir(name: str) -> str | None:
    """Directory (package) or file backing an importable module name."""
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError, ModuleNotFoundError):
        return None
    if spec is None or spec.origin is None:
        return None
    if spec.submodule_search_locations:
        return list(spec.submodule_search_locations)[0]
    return spec.origin


def analyze_target(target: str,
                   classes: Sequence[Type[Component]] | None = None,
                   allowlist=scmd_safety.DEFAULT_ALLOWLIST,
                   check_races: bool = False,
                   check_contracts: bool = False,
                   ) -> list[Finding]:
    """Analyze one CLI target; raises :class:`AnalysisError` when the
    target cannot be resolved.

    Resolution order: paper assembly name, filesystem path (``.py`` →
    lifecycle+SCMD, directory → recurse, anything else → rc-script),
    importable module/package name.
    """
    if target in wiring.assembly_names():
        out = wiring.analyze_assembly(target)
        if check_contracts:
            out = out + contracts.analyze_assembly_contracts(target)
        return out
    if os.path.isdir(target):
        out = []
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith((".", "__")))
            for fn in sorted(filenames):
                full = os.path.join(dirpath, fn)
                if fn.endswith(".py"):
                    out.extend(analyze_python_file(full, allowlist,
                                                   check_races))
                elif fn.endswith(".rc"):
                    out.extend(analyze_rc_file(full, classes, check_races,
                                               check_contracts))
        return out
    if os.path.isfile(target):
        if target.endswith(".py"):
            return analyze_python_file(target, allowlist, check_races)
        return analyze_rc_file(target, classes, check_races,
                               check_contracts)
    resolved = _module_dir(target)
    if resolved is not None:
        return analyze_target(resolved, classes, allowlist, check_races,
                              check_contracts)
    raise AnalysisError(
        f"cannot resolve target {target!r}: not an assembly name "
        f"({', '.join(wiring.assembly_names())}), file, directory, or "
        f"importable module")


def default_targets() -> list[str]:
    """The stock analysis surface used when the CLI gets no targets."""
    return wiring.assembly_names() + ["repro.components", "repro.apps"]


def analyze_targets(targets: Sequence[str] | None = None,
                    classes: Sequence[Type[Component]] | None = None,
                    allowlist=scmd_safety.DEFAULT_ALLOWLIST,
                    check_races: bool = False,
                    check_contracts: bool = False) -> Report:
    """Analyze many targets into one :class:`Report`.

    With no targets, covers :func:`default_targets` plus the shipped
    ``IGNITION0D_SCRIPT`` rc-script text.
    """
    report = Report()
    if targets:
        for target in targets:
            report.extend(analyze_target(target, classes, allowlist,
                                         check_races, check_contracts))
        return report
    for target in default_targets():
        report.extend(analyze_target(target, classes, allowlist,
                                     check_races, check_contracts))
    from repro.apps.assemblies import IGNITION0D_SCRIPT

    report.extend(wiring.analyze_script(
        IGNITION0D_SCRIPT, classes, path="<IGNITION0D_SCRIPT>"))
    if check_races:
        report.extend(races.analyze_script_races(
            IGNITION0D_SCRIPT, classes, path="<IGNITION0D_SCRIPT>"))
    if check_contracts:
        report.extend(contracts.analyze_script_contracts(
            IGNITION0D_SCRIPT, path="<IGNITION0D_SCRIPT>"))
    return report
