"""SCMD race detector, static layer (RA301–RA308).

:mod:`repro.analysis.scmd_safety` lints for state that *aliases* across
rank-threads; this pass goes one step further and reasons about the
*ordering* of accesses with a happens-before approximation tuned to the
SCMD execution model of :func:`repro.mpi.launcher.mpirun`:

* All P rank-threads execute the same component code, so a write that is
  **not** guarded by a rank test executes on every rank-thread.  Inside
  one address space, barriers and collectives do **not** help such a
  write: every rank writes the same shared object between the same pair
  of collectives, i.e. concurrently.  Only a rank guard
  (``if comm.rank == 0:``) serializes it — followed by a collective to
  publish the result.
* A *rank-guarded* write is ordered, but other ranks only observe it
  after an ordering collective; a guarded write with no subsequent
  collective in the same method is a stale-read hazard.
* A collective inside a rank-dependent branch is executed by a subset of
  ranks — the others never arrive, and the rendezvous in
  ``repro.mpi.comm`` deadlocks (then times out).

The per-component read/write sets come from the AST: module/class shared
state reuses the RA2xx model (:func:`repro.analysis.scmd_safety.shared_bindings`),
and patch arrays are tracked through the GrACE/Hierarchy accessor
surface (``dobj.array(p)`` writes inside loops over ``.patches``).

Findings
--------
* ``RA301`` (error) — unguarded write to a shared object in rank code:
  every rank-thread races on one object; no collective orders it.
* ``RA302`` (error) — reduction/accumulation (``+=``, ``.append``,
  ``.update`` …) into a shared object outside a collective; use
  ``comm.allreduce``/``comm.reduce`` instead.
* ``RA303`` (warning) — rank-guarded shared write never published by a
  later collective in the same method (stale reads on other ranks).
* ``RA304`` (warning) — patch-array write inside a loop over *all*
  patches with no owner guard; iterate ``owned_patches()`` or test
  ``patch.owner == rank``.
* ``RA305`` (error) — collective call inside a rank-dependent branch:
  only a subset of ranks arrives, so the rendezvous hangs.
* ``RA306`` (error) — rc-script ``parameter`` directive after ``go``:
  connect-time configuration mutated after the run started (the wiring
  pass's RA009 covers late ``connect``; this covers late ``parameter``).
* ``RA307`` (warning) — the same shared object is written through two
  or more instances reachable from the script's ``go`` targets.
* ``RA308`` (info) — rank code reads a shared mutable; benign until
  someone writes it, so it is surfaced for review only.

The ``# scmd: shared`` pragma and the SCMD allowlist suppress RA30x on
the same terms as the RA2xx pass.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Sequence, Type

from repro.analysis.findings import Finding, finding
from repro.analysis.scmd_safety import (
    DEFAULT_ALLOWLIST,
    PRAGMA,
    STEP_METHODS,
    _CONSTANT_NAME,
    _MUTATING_METHODS,
    _Ctx,
    shared_bindings,
)
from repro.cca.component import Component
from repro.cca.script import parse_script_tolerant

#: rendezvous operations in :class:`repro.mpi.comm.Comm` — every rank
#: must arrive, and arrival orders the participants' clocks.
COLLECTIVES = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "alltoall", "scatter",
})

#: accumulate-style mutators: their use on a shared object is a
#: hand-rolled reduction (RA302) rather than a plain racy store (RA301).
_ACCUMULATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
})

#: accessor method names that hand back owner-filtered patch sequences —
#: loops over these need no explicit owner guard.
_OWNED_ITERATORS = frozenset({"owned_patches"})


def _mentions_rank(expr: ast.AST) -> bool:
    """Does the expression read a rank id (``comm.rank``, ``self.rank()``,
    a bare ``rank`` local)?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if isinstance(node, ast.Name) and node.id == "rank":
            return True
    return False


def _is_owner_guard(test: ast.expr) -> bool:
    """``p.owner == rank`` style test (any compare touching ``.owner``)."""
    return any(isinstance(n, ast.Attribute) and n.attr == "owner"
               for n in ast.walk(test))


@dataclass
class _SharedModel:
    """Shared-object universe of one source file."""

    module_mutables: dict[str, int]
    class_mutables: dict[str, dict[str, int]]
    class_names: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.class_names = set(self.class_mutables)


def _classify_write(node: ast.stmt, model: _SharedModel,
                    class_name: str, globals_declared: set[str],
                    shadowed: set[str]) -> list[tuple[str, bool]]:
    """Shared-object targets written by one statement.

    Returns ``(name, is_accumulation)`` pairs where ``name`` is the
    shared binding (module global or class attribute) being written.
    """
    own = model.class_mutables.get(class_name, {})
    out: list[tuple[str, bool]] = []
    accum = isinstance(node, ast.AugAssign)
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for t in targets:
        if isinstance(t, ast.Attribute):
            base = t.value
            if isinstance(base, ast.Name) and base.id in model.class_names:
                out.append((t.attr, accum))
            elif isinstance(base, ast.Attribute) and \
                    base.attr == "__class__":
                out.append((t.attr, accum))
            elif accum and isinstance(base, ast.Name) and \
                    base.id == "self" and t.attr in own and \
                    t.attr not in shadowed:
                out.append((t.attr, True))
        elif isinstance(t, ast.Name) and t.id in globals_declared:
            out.append((t.id, accum))
        elif isinstance(t, ast.Subscript):
            base = t.value
            if isinstance(base, ast.Name) and \
                    base.id in model.module_mutables:
                out.append((base.id, accum))
            elif isinstance(base, ast.Attribute):
                owner = base.value
                if isinstance(owner, ast.Name) and \
                        owner.id in model.class_names:
                    out.append((base.attr, accum))
                elif isinstance(owner, ast.Attribute) and \
                        owner.attr == "__class__":
                    out.append((base.attr, accum))
                elif isinstance(owner, ast.Name) and owner.id == "self" \
                        and base.attr in own and base.attr not in shadowed:
                    out.append((base.attr, accum))
    return out


def _classify_mutating_call(node: ast.Call, model: _SharedModel,
                            class_name: str,
                            shadowed: set[str]) -> tuple[str, str] | None:
    """``(name, method)`` when the call mutates a shared object."""
    if not isinstance(node.func, ast.Attribute) or \
            node.func.attr not in _MUTATING_METHODS:
        return None
    own = model.class_mutables.get(class_name, {})
    recv = node.func.value
    meth = node.func.attr
    if isinstance(recv, ast.Name) and recv.id in model.module_mutables:
        return recv.id, meth
    if isinstance(recv, ast.Attribute):
        owner = recv.value
        if isinstance(owner, ast.Name) and owner.id in model.class_names:
            return recv.attr, meth
        if isinstance(owner, ast.Attribute) and owner.attr == "__class__":
            return recv.attr, meth
        if isinstance(owner, ast.Name) and owner.id == "self" and \
                recv.attr in own and recv.attr not in shadowed:
            return recv.attr, meth
    return None


def _is_collective_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Attribute) and \
        node.func.attr in COLLECTIVES


class _MethodScanner:
    """One rank-executed method: write/read sets vs. ordering points."""

    def __init__(self, ctx: _Ctx, model: _SharedModel, class_name: str,
                 method: ast.FunctionDef) -> None:
        self.ctx = ctx
        self.model = model
        self.class_name = class_name
        self.method = method
        self.out: list[Finding] = []
        self.globals_declared: set[str] = set()
        self.shadowed: set[str] = set()
        #: linenos of collectives executed by *all* ranks (unguarded)
        self.uniform_collectives: list[int] = []
        #: (lineno, name) of rank-guarded shared writes, for RA303
        self.guarded_writes: list[tuple[int, str]] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Attribute) and \
                            isinstance(t.value, ast.Name) and \
                            t.value.id == "self":
                        self.shadowed.add(t.attr)

    # -- emit helpers ------------------------------------------------------
    def flag(self, code: str, node: ast.AST, message: str,
             target: str | None = None) -> None:
        if self.ctx.pragma(node):
            return
        if target is not None and target in self.ctx.allowlist:
            return
        self.out.append(finding(
            code, message, path=self.ctx.path, line=node.lineno,
            context=self.class_name))

    # -- walk --------------------------------------------------------------
    def scan(self) -> list[Finding]:
        self._scan_block(self.method.body, rank_guarded=False,
                         patch_var=None, owner_ok=False)
        self._check_unpublished()
        return self.out

    def _scan_block(self, stmts: Sequence[ast.stmt], *, rank_guarded: bool,
                    patch_var: str | None, owner_ok: bool) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, rank_guarded=rank_guarded,
                            patch_var=patch_var, owner_ok=owner_ok)

    def _scan_stmt(self, stmt: ast.stmt, *, rank_guarded: bool,
                   patch_var: str | None, owner_ok: bool) -> None:
        if isinstance(stmt, ast.If):
            # The owner-guard test comes first: `p.owner == rank` mentions
            # rank too, but it is the sanctioned RA304 fix, not a
            # rank-subset branch.
            if patch_var is not None and _is_owner_guard(stmt.test):
                self._scan_block(stmt.body, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=True)
                self._scan_block(stmt.orelse, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
            elif _mentions_rank(stmt.test):
                self._flag_collectives_in_branch(stmt)
                self._scan_block(stmt.body, rank_guarded=True,
                                 patch_var=patch_var, owner_ok=owner_ok)
                self._scan_block(stmt.orelse, rank_guarded=True,
                                 patch_var=patch_var, owner_ok=owner_ok)
            else:
                self._scan_block(stmt.body, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
                self._scan_block(stmt.orelse, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
            self._scan_expr_parts(stmt.test, rank_guarded)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            pv, po = patch_var, owner_ok
            it = stmt.iter
            if isinstance(it, ast.Attribute) and it.attr == "patches" and \
                    isinstance(stmt.target, ast.Name):
                pv, po = stmt.target.id, False
            elif isinstance(it, ast.Call) and \
                    isinstance(it.func, ast.Attribute) and \
                    it.func.attr in _OWNED_ITERATORS and \
                    isinstance(stmt.target, ast.Name):
                pv, po = stmt.target.id, True
            self._scan_block(stmt.body, rank_guarded=rank_guarded,
                             patch_var=pv, owner_ok=po)
            self._scan_block(stmt.orelse, rank_guarded=rank_guarded,
                             patch_var=patch_var, owner_ok=owner_ok)
            return
        if isinstance(stmt, (ast.While, ast.With, ast.AsyncWith)):
            body = stmt.body
            self._scan_block(body, rank_guarded=rank_guarded,
                             patch_var=patch_var, owner_ok=owner_ok)
            if isinstance(stmt, ast.While):
                self._scan_block(stmt.orelse, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
            return
        if isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                self._scan_block(block, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
            for handler in stmt.handlers:
                self._scan_block(handler.body, rank_guarded=rank_guarded,
                                 patch_var=patch_var, owner_ok=owner_ok)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are not rank-path statements

        # -- leaf statement: shared writes, patch writes, collectives ------
        written: set[str] = set()
        for name, accum in _classify_write(
                stmt, self.model, self.class_name, self.globals_declared,
                self.shadowed):
            written.add(name)
            self._record_write(stmt, name, accum, rank_guarded)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                hit = _classify_mutating_call(
                    node, self.model, self.class_name, self.shadowed)
                if hit is not None:
                    name, meth = hit
                    written.add(name)
                    self._record_write(
                        node, name, meth in _ACCUMULATORS, rank_guarded,
                        spelled=f".{meth}()")
                if _is_collective_call(node) and not rank_guarded:
                    self.uniform_collectives.append(node.lineno)
        self._check_patch_write(stmt, patch_var, owner_ok)
        self._check_shared_reads(stmt, written)

    def _scan_expr_parts(self, expr: ast.expr, rank_guarded: bool) -> None:
        # a collective used *inside* a rank test is itself rank-dependent
        # only for the branch body; the test runs on every rank.
        for node in ast.walk(expr):
            if _is_collective_call(node) and not rank_guarded:
                self.uniform_collectives.append(node.lineno)

    # -- checks ------------------------------------------------------------
    def _record_write(self, node: ast.AST, name: str, accum: bool,
                      rank_guarded: bool, spelled: str = "") -> None:
        if name in self.ctx.allowlist:
            return
        where = f"{self.class_name}.{self.method.name}"
        if rank_guarded:
            self.guarded_writes.append((node.lineno, name))
            return
        if accum:
            self.flag(
                "RA302", node,
                f"{where} accumulates into shared {name!r}{spelled} on "
                f"every rank-thread — a hand-rolled reduction outside a "
                f"collective; use comm.allreduce/comm.reduce, or guard "
                f"with a rank test and publish via bcast",
                target=name)
        else:
            self.flag(
                "RA301", node,
                f"{where} writes shared {name!r} from every rank-thread "
                f"with no ordering — barriers cannot serialize identical "
                f"writes; guard with a rank test or make it per-rank "
                f"state (or mark '{PRAGMA}')",
                target=name)

    def _flag_collectives_in_branch(self, stmt: ast.If) -> None:
        for block in (stmt.body, stmt.orelse):
            for inner in block:
                for node in ast.walk(inner):
                    if _is_collective_call(node):
                        assert isinstance(node, ast.Call)
                        assert isinstance(node.func, ast.Attribute)
                        self.flag(
                            "RA305", node,
                            f"collective {node.func.attr}() inside a "
                            f"rank-dependent branch of "
                            f"{self.class_name}.{self.method.name} — "
                            f"ranks not taking this branch never arrive "
                            f"and the rendezvous deadlocks; hoist the "
                            f"collective out of the rank test")

    def _check_unpublished(self) -> None:
        for lineno, name in self.guarded_writes:
            if any(c > lineno for c in self.uniform_collectives):
                continue
            if self.ctx.pragma(lineno):
                continue
            self.out.append(finding(
                "RA303",
                f"{self.class_name}.{self.method.name} writes shared "
                f"{name!r} under a rank guard but no collective follows "
                f"in this method — other ranks can read the stale value; "
                f"publish with bcast/allreduce or a barrier",
                path=self.ctx.path, line=lineno,
                context=self.class_name))

    def _check_patch_write(self, stmt: ast.stmt, patch_var: str | None,
                           owner_ok: bool) -> None:
        if patch_var is None or owner_ok:
            return
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for t in targets:
            if not isinstance(t, ast.Subscript):
                continue
            base = t.value
            # dobj.array(p)[...] = ...  — writing through the accessor
            if isinstance(base, ast.Call) and \
                    isinstance(base.func, ast.Attribute) and \
                    base.func.attr == "array" and \
                    any(isinstance(a, ast.Name) and a.id == patch_var
                        for a in base.args):
                self.flag(
                    "RA304", stmt,
                    f"{self.class_name}.{self.method.name} writes a "
                    f"patch array inside a loop over *all* patches with "
                    f"no owner guard — every rank writes every patch; "
                    f"iterate owned_patches() or test "
                    f"{patch_var}.owner == rank first")

    def _check_shared_reads(self, stmt: ast.stmt,
                            written: set[str]) -> None:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Name) and
                    isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name not in self.model.module_mutables or \
                    name in written or \
                    name in self.ctx.allowlist or \
                    _CONSTANT_NAME.match(name):
                continue
            self.flag(
                "RA308", node,
                f"{self.class_name}.{self.method.name} reads shared "
                f"module-level {name!r} in rank code — benign until "
                f"some rank writes it; consider making it per-instance",
                target=name)
            return  # one note per statement is enough


def analyze_source_races(text: str, path: str = "<source>",
                         allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                         ) -> list[Finding]:
    """Run the static race pass over one Python source text."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError:
        return []  # scmd_safety already reports RA001 for this file
    ctx = _Ctx(path=path, lines=text.splitlines(), allowlist=allowlist)
    module_mutables, class_mutables = shared_bindings(tree)
    model = _SharedModel(module_mutables, class_mutables)
    out: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name not in STEP_METHODS:
                continue
            out.extend(_MethodScanner(ctx, model, node.name,
                                      method).scan())
    return out


def analyze_file_races(path: str,
                       allowlist: frozenset[str] = DEFAULT_ALLOWLIST,
                       ) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_source_races(fh.read(), path, allowlist)


# ---------------------------------------------------------------- rc-scripts
def _class_write_keys(cls: Type[Component]) -> set[str]:
    """Shared-object keys written by ``cls``'s rank-executed methods.

    Keys are ``module:global`` for module-level mutables and
    ``Class.attr`` for class attributes, so two instances of different
    classes in one module still collide on the module global.
    """
    try:
        source = inspect.getsource(inspect.getmodule(cls))
    except (OSError, TypeError):
        return set()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    module_mutables, class_mutables = shared_bindings(tree)
    model = _SharedModel(module_mutables, class_mutables)
    modname = getattr(inspect.getmodule(cls), "__name__", "?")
    keys: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name != cls.__name__:
            continue
        own = class_mutables.get(node.name, {})
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name not in STEP_METHODS:
                continue
            globals_declared: set[str] = set()
            shadowed: set[str] = set()
            for inner in ast.walk(method):
                if isinstance(inner, ast.Global):
                    globals_declared.update(inner.names)
                if isinstance(inner, ast.Assign):
                    for t in inner.targets:
                        if isinstance(t, ast.Attribute) and \
                                isinstance(t.value, ast.Name) and \
                                t.value.id == "self":
                            shadowed.add(t.attr)
            for inner in ast.walk(method):
                if isinstance(inner, ast.stmt):
                    for name, _accum in _classify_write(
                            inner, model, node.name, globals_declared,
                            shadowed):
                        if name in DEFAULT_ALLOWLIST:
                            continue
                        if name in own or name in \
                                {a for attrs in class_mutables.values()
                                 for a in attrs}:
                            keys.add(f"{node.name}.{name}")
                        else:
                            keys.add(f"{modname}:{name}")
                if isinstance(inner, ast.Call):
                    hit = _classify_mutating_call(
                        inner, model, node.name, shadowed)
                    if hit is not None and hit[0] not in DEFAULT_ALLOWLIST:
                        name = hit[0]
                        if name in own:
                            keys.add(f"{node.name}.{name}")
                        elif name in module_mutables:
                            keys.add(f"{modname}:{name}")
    return keys


def analyze_script_races(text: str,
                         classes: Sequence[Type[Component]] | None = None,
                         path: str = "<script>") -> list[Finding]:
    """Happens-before checks over the rc-script wiring graph.

    ``RA306``: ``parameter`` after the first ``go`` mutates connect-time
    configuration the running assembly already consumed.  ``RA307``: the
    same shared object is written by two or more instances reachable
    from the union of all ``go`` targets — in SCMD mode those instances
    run on every rank-thread, so the writes race through two proxies.
    """
    from repro.analysis.wiring import default_classes

    out: list[Finding] = []
    directives, _errors = parse_script_tolerant(text)
    go_lines = [d.line_no for d in directives if d.verb == "go"]
    first_go = min(go_lines) if go_lines else None

    if first_go is not None:
        for d in directives:
            if d.verb == "parameter" and d.line_no > first_go:
                out.append(finding(
                    "RA306",
                    f"parameter {' '.join(d.args)} on line {d.line_no} "
                    f"runs after go (line {first_go}) — connect-time "
                    f"configuration mutated once ranks are stepping",
                    path=path, line=d.line_no, context=d.args[0]))

    # -- RA307: shared write keys reachable through >= 2 instances --------
    registry = {cls.__name__: cls
                for cls in (classes if classes is not None
                            else default_classes())}
    instantiated = {d.args[1]: d.args[0] for d in directives
                    if d.verb == "instantiate"}
    edges: dict[str, set[str]] = {}
    for d in directives:
        if d.verb == "connect":
            user, _uport, provider, _pport = d.args
            edges.setdefault(user, set()).add(provider)
    reachable: set[str] = set()
    frontier = [d.args[0] for d in directives if d.verb == "go"]
    while frontier:
        inst = frontier.pop()
        if inst in reachable:
            continue
        reachable.add(inst)
        frontier.extend(edges.get(inst, ()))

    writers: dict[str, list[str]] = {}
    for inst in sorted(reachable):
        cls = registry.get(instantiated.get(inst, ""))
        if cls is None:
            continue
        for key in _class_write_keys(cls):
            writers.setdefault(key, []).append(inst)
    for key in sorted(writers):
        insts = writers[key]
        if len(insts) < 2:
            continue
        out.append(finding(
            "RA307",
            f"shared object {key} is written through "
            f"{len(insts)} go-reachable instances "
            f"({', '.join(insts)}) — one object, many writers, no "
            f"ordering between their step methods",
            path=path, context=insts[0]))
    return out


def analyze_script_file_races(
        path: str,
        classes: Sequence[Type[Component]] | None = None,
        ) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_script_races(fh.read(), classes, path)
