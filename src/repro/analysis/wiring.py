"""Assembly/wiring analyzer: validate compositions without running them.

The paper's framework refuses bad compositions before the simulation
runs; our reproduction previously discovered wiring mistakes only at
``go`` time.  This pass closes that gap two ways:

* :func:`analyze_script` parses a CCAFFEINE rc-script into its port
  graph (never calling ``go``), *sandbox-instantiates* each referenced
  component class in a throwaway :class:`~repro.cca.framework.Framework`
  to harvest its declared provides/uses tables, and then checks every
  directive: unknown classes/instances/ports, ``port_type`` mismatches,
  duplicate connections, use-before-instantiate and go-before-connect
  ordering, unconnected uses ports that the component's source fetches
  unguarded, and cycles in the port graph.  Findings carry the
  rc-script line number from :attr:`repro.cca.script.Directive.line_no`.
* :func:`analyze_framework` applies the end-state checks (dangling uses
  ports, cycles) to an already-built framework — the path used for the
  programmatic ``apps/assemblies`` builders via :func:`analyze_assembly`.

Sandbox instantiation runs only ``__init__`` and ``set_services`` — by
the CCA contract these register ports and must not start work, so the
harvest is safe and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Type

from repro.analysis.findings import Finding, finding
from repro.analysis.lifecycle import class_fetch_profile
from repro.cca.component import Component
from repro.cca.framework import Framework
from repro.cca.script import Directive, parse_script_tolerant


@dataclass
class PortTable:
    """The harvested provides/uses declaration of one component class."""

    class_name: str
    provides: dict[str, str] = field(default_factory=dict)  # name -> type
    uses: dict[str, str] = field(default_factory=dict)      # name -> type
    go_ports: set[str] = field(default_factory=set)
    #: uses-port name -> True when every get_port of it is guarded
    fetch_guarded: dict[str, bool] = field(default_factory=dict)


def default_classes() -> list[Type[Component]]:
    """The stock registry: every shipped component plus the three
    application drivers (what a default CCAFFEINE repository would hold).
    """
    from repro.apps.ignition0d import Ignition0DDriver
    from repro.apps.reaction_diffusion import ReactionDiffusionDriver
    from repro.apps.shock_interface import ShockInterfaceDriver
    from repro.components import ALL_COMPONENTS

    return list(ALL_COMPONENTS) + [
        Ignition0DDriver, ReactionDiffusionDriver, ShockInterfaceDriver]


def harvest_port_table(cls: Type[Component]) -> PortTable:
    """Sandbox-instantiate ``cls`` and snapshot its declared ports.

    Raises whatever the component's ``__init__``/``set_services`` raises;
    callers turn that into an ``RA014`` finding.
    """
    fw = Framework()
    fw.registry.register(cls)
    fw.instantiate(cls.__name__, "__sandbox__")
    services = fw.services_of("__sandbox__")
    table = PortTable(
        class_name=cls.__name__,
        provides=services.provides_table(),
        uses=services.uses_table(),
        fetch_guarded=class_fetch_profile(cls),
    )
    for name, (port, _ptype) in services.provides.items():
        if callable(getattr(port, "go", None)):
            table.go_ports.add(name)
    return table


class _Tables:
    """Lazy per-class harvest cache shared across one analysis."""

    def __init__(self, classes: Iterable[Type[Component]],
                 path: str) -> None:
        self.classes = {cls.__name__: cls for cls in classes}
        self.path = path
        self._cache: dict[str, PortTable | None] = {}
        self.findings: list[Finding] = []

    def __contains__(self, class_name: str) -> bool:
        return class_name in self.classes

    def get(self, class_name: str,
            line: int | None = None) -> PortTable | None:
        """The class's table, or None if unknown/uninstantiable."""
        if class_name not in self.classes:
            return None
        if class_name not in self._cache:
            try:
                self._cache[class_name] = harvest_port_table(
                    self.classes[class_name])
            except Exception as exc:  # noqa: BLE001 - report, keep going
                self._cache[class_name] = None
                self.findings.append(finding(
                    "RA014",
                    f"could not introspect {class_name}: sandbox "
                    f"set_services raised {type(exc).__name__}: {exc}",
                    path=self.path, line=line, context=class_name))
        return self._cache[class_name]


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Cycles in the user -> provider digraph (one per SCC, plus
    self-loops), via iterative DFS back-edge detection."""
    cycles: list[list[str]] = []
    color: dict[str, int] = {}
    stack_path: list[str] = []

    def dfs(start: str) -> None:
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        color[start] = 1
        stack_path.append(start)
        while stack:
            node, it = stack[-1]
            for nxt in it:
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    stack_path.append(nxt)
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    break
                if color.get(nxt) == 1:  # back edge: a cycle
                    i = stack_path.index(nxt)
                    cycles.append(stack_path[i:] + [nxt])
            else:
                color[node] = 2
                stack_path.pop()
                stack.pop()

    for node in sorted(edges):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


def _end_state_checks(
        path: str,
        instances: dict[str, PortTable | None],
        connections: dict[tuple[str, str], tuple[str, str]],
        lines: dict[str, int] | None = None) -> list[Finding]:
    """Dangling-uses and cycle checks on a finished port graph."""
    out: list[Finding] = []
    lines = lines or {}
    for inst in sorted(instances):
        table = instances[inst]
        if table is None:
            continue
        for port_name in sorted(table.uses):
            if (inst, port_name) in connections:
                continue
            guarded = table.fetch_guarded.get(port_name)
            where = lines.get(inst)
            if guarded is False:
                out.append(finding(
                    "RA011",
                    f"{inst}.{port_name} "
                    f"[{table.uses[port_name]}] is never connected but "
                    f"{table.class_name} fetches it with an unguarded "
                    f"get_port — this assembly raises "
                    f"PortNotConnectedError at run time",
                    path=path, line=where, context=inst))
            else:
                why = ("fetched only behind a not-connected guard"
                       if guarded else "never fetched in the class source")
                out.append(finding(
                    "RA012",
                    f"{inst}.{port_name} [{table.uses[port_name]}] is "
                    f"not connected ({why})",
                    path=path, line=where, context=inst))
    edges: dict[str, set[str]] = {}
    for (user, _uport), (provider, _pport) in connections.items():
        edges.setdefault(user, set()).add(provider)
    for cycle in _find_cycles(edges):
        out.append(finding(
            "RA013",
            f"port graph cycle: {' -> '.join(cycle)} — call chains "
            f"through these uses ports can recurse",
            path=path, context=cycle[0]))
    return out


def analyze_script(text: str,
                   classes: Sequence[Type[Component]] | None = None,
                   path: str = "<script>") -> list[Finding]:
    """Statically validate an rc-script against a component repository.

    Never executes a ``go`` port; the heaviest thing this does is run
    each referenced class's ``set_services`` in a sandbox framework.
    """
    out: list[Finding] = []
    directives, errors = parse_script_tolerant(text)
    for line_no, message in errors:
        out.append(finding("RA001", message, path=path, line=line_no))

    tables = _Tables(classes if classes is not None else default_classes(),
                     path)
    instantiated: dict[str, str] = {}        # instance -> class name
    instance_line: dict[str, int] = {}
    all_instantiations = {d.args[1]: d.line_no for d in directives
                          if d.verb == "instantiate"}
    connections: dict[tuple[str, str], tuple[str, str]] = {}
    go_lines: list[int] = []

    def check_instance(name: str, d: Directive) -> bool:
        """Known at this point in the script?  Emits RA004/RA007."""
        if name in instantiated:
            return True
        later = all_instantiations.get(name)
        if later is not None and later > d.line_no:
            out.append(finding(
                "RA007",
                f"{d.verb} references {name!r} before its instantiate "
                f"on line {later}",
                path=path, line=d.line_no, context=name))
        else:
            out.append(finding(
                "RA004",
                f"{d.verb} references unknown instance {name!r} "
                f"(instantiated so far: {sorted(instantiated) or '-'})",
                path=path, line=d.line_no, context=name))
        return False

    for d in directives:
        if d.verb == "repository":
            if d.args[1] not in tables:
                out.append(finding(
                    "RA002",
                    f"repository get-global {d.args[1]}: class not in "
                    f"the repository",
                    path=path, line=d.line_no, context=d.args[1]))
        elif d.verb == "instantiate":
            class_name, inst = d.args
            if class_name not in tables:
                out.append(finding(
                    "RA002",
                    f"instantiate {class_name}: class not in the "
                    f"repository",
                    path=path, line=d.line_no, context=class_name))
            if inst in instantiated:
                out.append(finding(
                    "RA003",
                    f"instance name {inst!r} already used on line "
                    f"{instance_line[inst]}",
                    path=path, line=d.line_no, context=inst))
            else:
                instantiated[inst] = class_name
                instance_line[inst] = d.line_no
        elif d.verb == "parameter":
            check_instance(d.args[0], d)
        elif d.verb == "connect":
            user, uport, provider, pport = d.args
            ok_user = check_instance(user, d)
            ok_prov = check_instance(provider, d)
            u_table = tables.get(instantiated[user], d.line_no) \
                if ok_user else None
            p_table = tables.get(instantiated[provider], d.line_no) \
                if ok_prov else None
            utype = ptype = None
            if u_table is not None:
                if uport not in u_table.uses:
                    out.append(finding(
                        "RA005",
                        f"{user} ({u_table.class_name}) has no uses "
                        f"port {uport!r} (declares: "
                        f"{sorted(u_table.uses) or '-'})",
                        path=path, line=d.line_no, context=user))
                else:
                    utype = u_table.uses[uport]
            if p_table is not None:
                if pport not in p_table.provides:
                    out.append(finding(
                        "RA005",
                        f"{provider} ({p_table.class_name}) has no "
                        f"provides port {pport!r} (exports: "
                        f"{sorted(p_table.provides) or '-'})",
                        path=path, line=d.line_no, context=provider))
                else:
                    ptype = p_table.provides[pport]
            if utype is not None and ptype is not None and utype != ptype:
                out.append(finding(
                    "RA006",
                    f"type mismatch connecting {user}.{uport} [{utype}] "
                    f"to {provider}.{pport} [{ptype}]",
                    path=path, line=d.line_no, context=user))
            if ok_user:
                if (user, uport) in connections:
                    prev_prov, prev_pport = connections[(user, uport)]
                    out.append(finding(
                        "RA008",
                        f"{user}.{uport} is already connected to "
                        f"{prev_prov}.{prev_pport}",
                        path=path, line=d.line_no, context=user))
                else:
                    connections[(user, uport)] = (provider, pport)
        elif d.verb == "go":
            inst = d.args[0]
            go_lines.append(d.line_no)
            if not check_instance(inst, d):
                continue
            table = tables.get(instantiated[inst], d.line_no)
            if table is None:
                continue
            port = d.args[1] if len(d.args) == 2 else "go"
            if port not in table.provides:
                out.append(finding(
                    "RA010",
                    f"go {inst}: {table.class_name} provides no "
                    f"{port!r} port",
                    path=path, line=d.line_no, context=inst))
            elif port not in table.go_ports:
                out.append(finding(
                    "RA010",
                    f"go {inst}: {inst}.{port} "
                    f"[{table.provides[port]}] has no go() method",
                    path=path, line=d.line_no, context=inst))

    # go-before-connect: wiring after a go directive never affected it
    if go_lines:
        first_go = min(go_lines)
        late = [d for d in directives
                if d.verb == "connect" and d.line_no > first_go]
        if late:
            out.append(finding(
                "RA009",
                f"go on line {first_go} runs before "
                f"{len(late)} connect directive(s) (first on line "
                f"{late[0].line_no}) — wiring after go never took effect",
                path=path, line=first_go))

    instances = {inst: tables.get(cls)
                 for inst, cls in instantiated.items()}
    out.extend(_end_state_checks(path, instances, connections,
                                 instance_line))
    out.extend(tables.findings)
    return out


def analyze_script_file(path: str,
                        classes: Sequence[Type[Component]] | None = None,
                        ) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return analyze_script(fh.read(), classes, path)


def analyze_framework(fw: Framework,
                      path: str = "<assembly>") -> list[Finding]:
    """End-state checks over an already-built (not yet run) framework."""
    instances: dict[str, PortTable | None] = {}
    for inst in fw.instance_names():
        services = fw.services_of(inst)
        cls = type(fw.get_component(inst))
        instances[inst] = PortTable(
            class_name=cls.__name__,
            provides=services.provides_table(),
            uses=services.uses_table(),
            fetch_guarded=class_fetch_profile(cls),
        )
    return _end_state_checks(path, instances, fw.connections())


#: name -> zero-argument builder for the three paper assemblies.
def _builders():
    from repro.apps.ignition0d import build_ignition0d
    from repro.apps.reaction_diffusion import build_reaction_diffusion
    from repro.apps.shock_interface import build_shock_interface

    return {
        "ignition0d": build_ignition0d,
        "reaction_diffusion": build_reaction_diffusion,
        "shock_interface": build_shock_interface,
    }


def assembly_names() -> list[str]:
    return sorted(_builders())


def analyze_assembly(name: str) -> list[Finding]:
    """Build one of the paper assemblies (wiring only — ``go`` is never
    invoked) and run the end-state checks on it."""
    builders = _builders()
    if name not in builders:
        raise KeyError(
            f"unknown assembly {name!r}; have {sorted(builders)}")
    fw = Framework()
    builders[name](fw)
    return analyze_framework(fw, path=f"<assembly:{name}>")
