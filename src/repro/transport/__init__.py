"""Mixture-averaged transport properties (the DRFM analog).

The paper's ``DRFMComponent`` is "a thin C++ wrapper around the Fortran77
DRFM package" (Paul, SAND98-8203) supplying mixture-averaged diffusion
coefficients; ``MaxDiffCoeffEvaluator`` reduces them to the stability
bound the RKC integrator needs.  We implement the same functional role
with kinetic-theory power-law correlations (documented substitution, see
DESIGN.md).
"""

from repro.transport.diffusion import MixtureTransport

__all__ = ["MixtureTransport"]
