"""Mixture-averaged diffusion coefficients and thermal conductivity.

Model (substitution for the proprietary DRFM fits): hard-sphere /
Chapman-Enskog scaling

    D_i(T, P) = D_i^ref * (T / T_ref)^1.7 * (P_ref / P)
    lambda(T) = lambda_ref * (T / T_ref)^0.8

with reference binary-into-air diffusivities at 300 K, 1 atm taken from
standard tables.  The ~T^1.7 exponent is the usual empirical value between
the hard-sphere 1.5 and measured 1.75-1.8 for these gases.  What matters
for the paper's experiments is (a) the magnitude ordering (H and H2
diffuse fastest) and (b) the temperature scaling that drives the RKC
stability bound — both are preserved.
"""

from __future__ import annotations

import numpy as np

from repro.chemistry.mechanism import Mechanism
from repro.errors import ChemistryError

#: Binary diffusion into air at 300 K, 1 atm [m^2/s] (standard tables).
_D_REF_300K = {
    "H2": 7.8e-5,
    "O2": 2.1e-5,
    "O": 4.0e-5,
    "OH": 2.8e-5,
    "H2O": 2.5e-5,
    "H": 1.5e-4,
    "HO2": 2.1e-5,
    "H2O2": 1.9e-5,
    "N2": 2.0e-5,
}

_T_REF = 300.0
_P_REF = 101325.0
_D_EXPONENT = 1.7

#: Air-like thermal conductivity at 300 K [W/(m K)] and its exponent.
_LAMBDA_REF = 0.026
_LAMBDA_EXPONENT = 0.8


class MixtureTransport:
    """Mixture-averaged transport for a mechanism's species set."""

    def __init__(self, mech: Mechanism) -> None:
        self.mech = mech
        missing = [nm for nm in mech.names if nm not in _D_REF_300K]
        if missing:
            raise ChemistryError(
                f"no transport data for species {missing}")
        self._d_ref = np.array([_D_REF_300K[nm] for nm in mech.names])

    def diffusion_coefficients(self, T: np.ndarray,
                               P: np.ndarray | float) -> np.ndarray:
        """Mixture-averaged D_i [m^2/s], shape ``(nsp, *T.shape)``.

        "The species are assumed to diffuse independently into the mixture
        at a mesh point, i.e. the diffusion coefficient D_i of the i-th
        species is mixture averaged."  (paper §4.2)
        """
        T = np.asarray(T, dtype=float)
        scale = (T / _T_REF) ** _D_EXPONENT * (_P_REF / np.asarray(P))
        return self._d_ref.reshape((-1,) + (1,) * T.ndim) * scale

    def conductivity(self, T: np.ndarray) -> np.ndarray:
        """Thermal conductivity lambda(T) [W/(m K)]."""
        T = np.asarray(T, dtype=float)
        return _LAMBDA_REF * (T / _T_REF) ** _LAMBDA_EXPONENT

    def thermal_diffusivity(self, T: np.ndarray, P: np.ndarray | float,
                            Y: np.ndarray) -> np.ndarray:
        """alpha = lambda / (rho cp) [m^2/s]."""
        rho = self.mech.density(T, P, Y)
        cp = self.mech.cp_mass(T, Y)
        return self.conductivity(T) / (rho * cp)

    def max_diffusion_coefficient(self, T: np.ndarray,
                                  P: np.ndarray | float,
                                  Y: np.ndarray) -> float:
        """The domain-wide bound the ``MaxDiffCoeffEvaluator`` component
        hands the RKC integrator: max over species diffusivities and the
        thermal diffusivity."""
        d = self.diffusion_coefficients(T, P)
        alpha = self.thermal_diffusivity(T, P, Y)
        return float(max(d.max(), np.asarray(alpha).max()))
