"""Shared result formatting for the bench harnesses."""

from __future__ import annotations

import os
from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None,
                 floatfmt: str = "{:.4g}") -> str:
    """Render an aligned text table (the bench harnesses' output form)."""
    str_rows = [
        [floatfmt.format(c) if isinstance(c, float) else str(c)
         for c in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_report(name: str, text: str, directory: str | None = None) -> str:
    """Persist a bench report under ``bench_results/`` (repo root by
    default) and return the path."""
    if directory is None:
        directory = os.environ.get(
            "REPRO_BENCH_DIR",
            os.path.join(os.getcwd(), "bench_results"))
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    return path
