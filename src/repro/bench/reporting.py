"""Shared result formatting for the bench harnesses."""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

from repro.bench import trajectory

#: Version tag stamped into every machine-readable bench artifact.
RESULTS_SCHEMA = 1


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None,
                 floatfmt: str = "{:.4g}") -> str:
    """Render an aligned text table (the bench harnesses' output form)."""
    str_rows = [
        [floatfmt.format(c) if isinstance(c, float) else str(c)
         for c in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_report(name: str, text: str, directory: str | None = None) -> str:
    """Persist a bench report under ``bench_results/`` (repo root by
    default) and return the path."""
    if directory is None:
        directory = os.environ.get(
            "REPRO_BENCH_DIR",
            os.path.join(os.getcwd(), "bench_results"))
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    return path


def _json_default(obj: Any) -> Any:
    """Serialize numpy scalars/arrays and other objects JSON can't."""
    if hasattr(obj, "tolist"):     # numpy array or scalar
        return obj.tolist()
    if hasattr(obj, "item"):       # other 0-d array-likes
        return obj.item()
    return str(obj)


def save_json(name: str, payload: dict[str, Any],
              directory: str | None = None,
              metrics: dict[str, float] | None = None) -> str:
    """Machine-readable companion to :func:`save_report`.

    Writes ``bench_results/<name>.json`` (same directory resolution as
    :func:`save_report`, including ``REPRO_BENCH_DIR``) with a
    ``"schema"`` version key injected so downstream tooling can detect
    layout changes, then appends the run to the repo-root
    ``BENCH_<name>.json`` trajectory (:mod:`repro.bench.trajectory`) —
    the history the regression gate ``python -m repro.obs.regress``
    compares against.  ``metrics`` is the run's explicit KPI dict for
    that trajectory (lower = better); omitted, the numeric scalars of
    the payload are used.  Returns the path of the per-run JSON.
    """
    if directory is None:
        directory = os.environ.get(
            "REPRO_BENCH_DIR",
            os.path.join(os.getcwd(), "bench_results"))
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    doc = {"schema": RESULTS_SCHEMA, **payload}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, default=_json_default)
        fh.write("\n")
    if trajectory.enabled():
        trajectory.append_run(name, doc, metrics=metrics)
    return path
