"""Table 4 — single-processor component-overhead study.

"We created a code identical to the one in Sec. 4.1, except that the
utilized mechanism had 8 species and 5 reactions ... The problem was
solved on multiple identical cells ... The numbers are compared with those
of a C-code in which the integrator (Cvode) was implemented as a library."
(paper §5.1)

Two timed variants of exactly the same numerical work:

* **component path** — the 0D assembly: CvodeComponent integrates the
  problemModeler's model port; every RHS evaluation travels through the
  CCA uses-port indirection (our analog of the virtual-function call).
* **library path** — the same CVode class driving the same constant-volume
  reactor as plain function calls, no framework anywhere.

Each of ``n_cells`` identical cells is integrated independently (that is
how the paper racks up per-cell NFE counts); ``t_short``/``t_long`` play
the role of the paper's Δt = 1 / 10, producing two different NFE levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.apps.ignition0d import build_ignition0d
from repro.cca.framework import Framework
from repro.chemistry.h2_lite import h2_lite_mechanism
from repro.chemistry.h2_air import stoichiometric_h2_air
from repro.chemistry.zerod import ConstantVolumeReactor
from repro.integrators.cvode import CVode
from repro.util.timing import Stopwatch
from repro.bench.reporting import format_table
from repro.util.options import fast_mode


@dataclass
class OverheadRow:
    """One Table 4 row."""

    dt_label: str
    n_cells: int
    nfe: int
    t_component: float
    t_library: float

    @property
    def pct_diff(self) -> float:
        return 100.0 * (self.t_component - self.t_library) / self.t_library


def _seeded_mixture(mech) -> np.ndarray:
    """Stoichiometric H2-air with a trace H seed so the lite mechanism
    (which has no initiation channel) actually does work per call."""
    Y = np.zeros(mech.n_species)
    for nm, v in stoichiometric_h2_air().items():
        if nm in mech.names:
            Y[mech.species_index(nm)] = v
    Y[mech.species_index("H")] = 1e-4
    return Y / Y.sum()


class _ComponentCase:
    """One-time assembly; integrates single cells on demand."""

    def __init__(self, T0: float, t_end: float, rtol: float,
                 atol: float) -> None:
        framework = Framework()
        build_ignition0d(framework, mechanism="h2-lite", T0=T0,
                         t_end=t_end, rtol=rtol, atol=atol)
        services = framework.services_of("Driver")
        self.solver = services.get_port("solver")
        model = services.get_port("model")
        y_init = services.get_port("ic").initial_state()
        mech = services.get_port("chem").mechanism()
        y_init[1:-1] = _seeded_mixture(mech)
        model.configure(float(y_init[0]), float(y_init[-1]), y_init[1:-1])
        self.y_init = y_init
        self.t_end = t_end
        self.nfe = 0

    def integrate_cell(self) -> None:
        self.solver.integrate(0.0, self.y_init.copy(), self.t_end)
        self.nfe += self.solver.last_nfe()


class _LibraryCase:
    """Plain library calls: same reactor, same solver class, no ports."""

    def __init__(self, T0: float, t_end: float, rtol: float,
                 atol: float) -> None:
        mech = h2_lite_mechanism()
        self.reactor = ConstantVolumeReactor(
            mech, T0, 101325.0, _seeded_mixture(mech))
        self.y_init = self.reactor.initial_state()
        self.t_end = t_end
        self.rtol, self.atol = rtol, atol
        self.nfe = 0

    def integrate_cell(self) -> None:
        cv = CVode(self.reactor.rhs, 0.0, self.y_init.copy(),
                   rtol=self.rtol, atol=self.atol, method="bdf")
        cv.integrate_to(self.t_end)
        self.nfe += cv.stats.nfe


def _timed_interleaved(comp: _ComponentCase, lib: _LibraryCase,
                       n_cells: int, n_blocks: int = 5
                       ) -> tuple[float, float]:
    """Time both variants in interleaved blocks (CPU time, so background
    load and timer drift affect both paths equally)."""
    sw_comp = Stopwatch(clock=time.process_time)
    sw_lib = Stopwatch(clock=time.process_time)
    block = max(1, n_cells // n_blocks)
    done = 0
    while done < n_cells:
        n = min(block, n_cells - done)
        with sw_comp:
            for _ in range(n):
                comp.integrate_cell()
        with sw_lib:
            for _ in range(n):
                lib.integrate_cell()
        done += n
    return sw_comp.elapsed, sw_lib.elapsed


def run_table4(fast: bool | None = None) -> dict:
    """Regenerate Table 4.

    Returns ``{"rows": [OverheadRow...], "report": str, "max_abs_pct": float}``.

    Note on scale: the paper integrates 1000-10000 cells per row on a
    600 MHz Athlon; a pure-Python per-cell stiff solve costs ~10^3 more,
    so the default row sizes are reduced (the per-cell NFE workload — what
    the overhead is measured against — is preserved).
    """
    fast = fast_mode() if fast is None else fast
    if fast:
        cells_list = [8, 16]
    else:
        cells_list = [20, 50, 100]
    t_short, t_long = 1e-6, 6e-6   # the paper's dt = 1 / 10 analog
    T0 = 1200.0
    rtol, atol = 1e-6, 1e-10
    rows: list[OverheadRow] = []
    for label, t_end in (("1", t_short), ("10", t_long)):
        comp = _ComponentCase(T0, t_end, rtol, atol)
        lib = _LibraryCase(T0, t_end, rtol, atol)
        for n_cells in cells_list:
            comp.nfe = lib.nfe = 0
            t_comp, t_lib = _timed_interleaved(comp, lib, n_cells)
            rows.append(OverheadRow(label, n_cells,
                                    (comp.nfe + lib.nfe) // (2 * n_cells),
                                    t_comp, t_lib))
    table = format_table(
        ["dt", "Ncells", "NFE", "Comp. [s]", "Library [s]", "% diff"],
        [[r.dt_label, r.n_cells, r.nfe, r.t_component, r.t_library,
          f"{r.pct_diff:+.2f}"] for r in rows],
        title=("Table 4 analog: componentized vs library 0D integration "
               "(h2-lite, per-cell CVode)"),
    )
    max_abs = max(abs(r.pct_diff) for r in rows)
    summary = (f"\nmax |% diff| = {max_abs:.2f}%  "
               f"(paper: |diff| <= 1.54%, no trend)")
    return {"rows": rows, "report": table + summary, "max_abs_pct": max_abs}


def run_serial_workload(n_cells: int | None = None,
                        t_end: float = 6e-6) -> float:
    """Time one pass of the Table 4 *component-path* serial workload
    (``n_cells`` independent stiff 0D integrations through the CCA port
    indirection); returns wall seconds.

    The unit of work the profiler-overhead bench
    (``benchmarks/bench_profiler_overhead.py``) times with and without
    the sampling profiler armed.
    """
    if n_cells is None:
        n_cells = 10 if fast_mode() else 30
    comp = _ComponentCase(1200.0, t_end, 1e-6, 1e-10)
    sw = Stopwatch()
    with sw:
        for _ in range(n_cells):
            comp.integrate_cell()
    return sw.elapsed
