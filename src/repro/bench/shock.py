"""Fig 6 / Fig 7 — shock-interface density field and circulation
convergence.

Fig 6: "density field at t/τ = 2.096 ... Reflected shocks are seen.  Note
that regions of steep pressure and density gradients ... are resolved with
Level 3 meshes."

Fig 7: "the circulation on the interface as we increase the levels of
refinement.  We achieve convergence of the interfacial circulation
deposition since there is no appreciable difference between the 2-level
and 3-level runs.  Further, the maximum deposition ... is closest to the
analytical estimate of -0.592 for the 3-level run."  Our domain units and
shock-tube dimensions differ from the paper's (unstated) ones, so the
converged Γ value differs in absolute terms; the *convergence pattern*
(monotone deepening with refinement, 2- vs 3-level agreement) is the
reproduced observable.
"""

from __future__ import annotations

import numpy as np

from repro.apps.shock_interface import run_shock_interface
from repro.bench.reporting import format_table
from repro.cca.framework import Framework
from repro.apps.shock_interface import build_shock_interface
from repro.util.options import fast_mode


def run_fig7(fast: bool | None = None) -> dict:
    """Circulation deposition Γ(t/τ) for 1-, 2- and 3-level hierarchies."""
    fast = fast_mode() if fast is None else fast
    if fast:
        nx, ny = 32, 16
        t_end = 0.8
        levels = [1, 2]
    else:
        nx, ny = 64, 32
        t_end = 1.2
        levels = [1, 2, 3]
    curves = {}
    for nlev in levels:
        res = run_shock_interface(
            nx=nx, ny=ny, max_levels=nlev,
            t_end_over_tau=t_end,
            regrid_interval=3 if nlev > 1 else 0,
            initial_regrids=nlev - 1,
        )
        curves[nlev] = {
            "series": res["circulation"],
            "min": res["circulation_min"],
            "cells": res["total_cells"],
        }
    rows = [
        [f"{nlev} level(s)", c["cells"], c["min"]]
        for nlev, c in curves.items()
    ]
    table = format_table(
        ["hierarchy", "cells (final)", "max |Gamma| deposition (signed)"],
        rows,
        title="Fig 7 analog: interfacial circulation vs refinement depth")
    deps = [curves[nlev]["min"] for nlev in levels]
    # monotone deepening up to convergence noise: once consecutive
    # hierarchies agree to ~2%, the sequence has converged and tiny
    # reversals are discretization noise, not a trend
    monotone = all(b <= a + 0.02 * abs(a)
                   for a, b in zip(deps, deps[1:]))
    if len(deps) >= 2 and abs(deps[-2]) > 0:
        converged = abs(deps[-1] - deps[-2]) / abs(deps[-2])
    else:
        converged = float("nan")
    summary = (
        f"\ndeposition deepens with refinement: {monotone} "
        f"(paper: yes)\nrel. gap between the two finest hierarchies: "
        f"{100 * converged:.1f}% (paper: 'no appreciable difference')")
    return {"curves": curves, "report": table + summary,
            "monotone": monotone, "finest_gap": converged}


def run_fig6(fast: bool | None = None) -> dict:
    """Density field at t/τ = 2.096 (summary statistics + wave census)."""
    fast = fast_mode() if fast is None else fast
    if fast:
        nx, ny, max_levels, t_end = 48, 24, 1, 1.0
    else:
        nx, ny, max_levels, t_end = 48, 24, 3, 2.096
    framework = Framework()
    build_shock_interface(
        framework, nx=nx, ny=ny, max_levels=max_levels,
        t_end_over_tau=t_end,
        regrid_interval=3 if max_levels > 1 else 0,
        initial_regrids=max_levels - 1)
    result = framework.go("Driver")
    data = framework.services_of("Driver").get_port("data")
    mesh = framework.services_of("Driver").get_port("mesh")
    gas = framework.services_of("Driver").get_port("gas")
    gamma = float(gas.get("gamma", 1.4))
    dobj = data.data("U")
    h = mesh.hierarchy()

    rho_min, rho_max, p_max = np.inf, -np.inf, -np.inf
    zeta_band_cells = 0
    for patch in dobj.owned_patches():
        U = dobj.interior(patch)
        rho = U[0]
        u = U[1] / rho
        v = U[2] / rho
        p = (gamma - 1.0) * (U[3] - 0.5 * rho * (u * u + v * v))
        zeta = U[4] / rho
        rho_min = min(rho_min, float(rho.min()))
        rho_max = max(rho_max, float(rho.max()))
        p_max = max(p_max, float(p.max()))
        zeta_band_cells += int(((zeta > 0.001) & (zeta < 0.999)).sum())

    # reference post-shock pressure for a Mach-1.5 shock (p1 = 1)
    m2 = 1.5**2
    p_post = (2 * gamma * m2 - (gamma - 1)) / (gamma + 1)
    census = [
        [lev.number, len(lev.patches), lev.ncells]
        for lev in h.levels
    ]
    rows = [
        ["rho_min", rho_min],
        ["rho_max", rho_max],
        ["p_max", p_max],
        ["post-shock p (RH)", p_post],
        ["interface band cells", zeta_band_cells],
        ["circulation", result["circulation_final"]],
    ]
    table = format_table(["quantity", "value"], rows,
                         title=f"Fig 6 analog: field at t/tau = {t_end}")
    census_table = format_table(
        ["level", "patches", "cells"], census,
        title="AMR level census (steep gradients on the finest level)")
    report = table + "\n\n" + census_table
    reflected = p_max > 1.15 * p_post
    report += (f"\n\nreflected shocks present (p_max > post-shock p): "
               f"{reflected} (paper: 'Reflected shocks are seen')")
    return {
        "result": result,
        "rho_range": (rho_min, rho_max),
        "p_max": p_max,
        "p_post_shock": p_post,
        "reflected_shocks": reflected,
        "census": census,
        "report": report,
    }
