"""Fig 3 / Fig 4 — reaction-diffusion flame evolution and AMR census.

Fig 3: temperature field at t = 0 / 0.265 / 0.395 ms for the three-hot-
spot H2-air configuration on the 10 mm square, 100x100 coarse mesh.
Fig 4: the AMR patch distribution tracking the flame structures
(refinement ratio 2).

The paper's production run took 58 hours on 28 CPUs; this harness runs a
scaled version (smaller mesh, fewer steps, vectorized batch chemistry)
that exhibits the same qualitative sequence: hot spots ignite, fronts
spread, the fine level tracks the fronts.
"""

from __future__ import annotations

import numpy as np

from repro.apps.reaction_diffusion import build_reaction_diffusion
from repro.bench.reporting import format_table
from repro.cca.framework import Framework
from repro.util.options import fast_mode


def run_fig3_fig4(fast: bool | None = None) -> dict:
    """Snapshot T statistics at three output times + final patch census."""
    fast = fast_mode() if fast is None else fast
    if fast:
        nx, n_chunks, steps_per_chunk, dt = 24, 3, 3, 2e-7
        max_levels, regrid_interval = 2, 3
    else:
        # the paper's production run is 58 CPU-days; this keeps the same
        # configuration at a laptop-budget resolution and duration
        nx, n_chunks, steps_per_chunk, dt = 64, 3, 12, 2e-7
        max_levels, regrid_interval = 3, 4

    framework = Framework()
    build_reaction_diffusion(
        framework,
        nx=nx, ny=nx,
        extent=0.01,                 # the paper's 10 mm square
        max_levels=max_levels,
        n_steps=steps_per_chunk,
        dt=dt,
        regrid_interval=regrid_interval,
        chemistry_mode="batch",
        initial_regrids=1,
        threshold=0.15,
    )
    services = framework.services_of("Driver")
    mesh = services.get_port("mesh")
    data = services.get_port("data")

    snapshots = []

    def snapshot(t):
        dobj = data.data("flow")
        t_min, t_max = np.inf, -np.inf
        for patch in dobj.owned_patches():
            T = dobj.interior(patch)[0]
            t_min = min(t_min, float(T.min()))
            t_max = max(t_max, float(T.max()))
        h = mesh.hierarchy()
        snapshots.append({
            "t": t,
            "T_min": t_min,
            "T_max": t_max,
            "nlevels": h.nlevels,
            "cells": h.total_cells(),
            "census": [(lev.number, len(lev.patches), lev.ncells)
                       for lev in h.levels],
        })

    # chunked marching: the driver advances steps_per_chunk per go();
    # re-running go() is not supported (mesh already built), so march
    # manually through the same ports the driver uses.
    ic = services.get_port("ic")
    explicit = services.get_port("explicit")
    implicit = services.get_port("implicit")
    regrid = services.get_port("regrid")
    chem = services.get_port("chem")
    mesh.build_base_level()
    mech = chem.mechanism()
    dobj = data.declare("flow", mech.n_species + 1)
    ic.initialize(dobj)
    h = mesh.hierarchy()
    for lev in range(h.nlevels):
        data.exchange_ghosts("flow", lev)
    regrid.regrid()
    ic.initialize(dobj)
    for lev in range(h.nlevels):
        data.exchange_ghosts("flow", lev)
    t = 0.0
    snapshot(t)
    step = 0
    for _chunk in range(n_chunks):
        for _ in range(steps_per_chunk):
            implicit.advance([dobj], t, 0.5 * dt)
            explicit.advance([dobj], t, dt)
            implicit.advance([dobj], t + 0.5 * dt, 0.5 * dt)
            t += dt
            step += 1
            if step % regrid_interval == 0:
                regrid.regrid()
        snapshot(t)

    rows = [
        [f"{s['t'] * 1e3:.4f} ms", s["T_min"], s["T_max"], s["nlevels"],
         s["cells"]]
        for s in snapshots
    ]
    table = format_table(
        ["time", "T_min [K]", "T_max [K]", "levels", "total cells"],
        rows,
        title="Fig 3 analog: temperature evolution of the 3-hot-spot flame")
    census_rows = [
        [lev_no, npatch, ncell] for lev_no, npatch, ncell
        in snapshots[-1]["census"]
    ]
    census = format_table(
        ["level", "patches", "cells"], census_rows,
        title="Fig 4 analog: final AMR patch distribution (ratio 2)")
    refined_tracks_front = snapshots[-1]["nlevels"] >= 2
    report = (table + "\n\n" + census
              + f"\n\nfine level tracks the fronts: {refined_tracks_front}")
    return {"snapshots": snapshots, "report": report,
            "refined": refined_tracks_front}
