"""Execution-backend A/B bench: threads vs multiprocessing wall-clock.

The thread backend's virtual clocks model a parallel machine, but its
*real* wall-clock is GIL-bound: P rank-threads of pure-Python compute
share one core no matter how many the host has.  The mp backend exists
to change exactly that number, so this harness measures it honestly:
the same Table 5 reaction-diffusion workload, same rank count, once per
backend, wall-clock timed.

KPI (lower = better): ``mp_over_threads``, the ratio of the best mp
wall time to the best threads wall time.  On a multi-core host the
ratio drops toward ``1/min(nprocs, cores)`` (real speedup); on a
single-core host mp pays fork/IPC overhead for no parallelism and the
ratio sits **above** 1 — that is the honest number, which is why every
run records ``cores`` alongside it and the regression gate's history is
host-filtered.  What must hold on *any* host is bit-identical physics,
asserted here on every run.
"""

from __future__ import annotations

import os
import time

from repro.apps import run_reaction_diffusion
from repro.bench.reporting import format_table
from repro.mpi import ZERO_COST, mpirun
from repro.util.options import fast_mode

#: backends the A/B compares (registry names).
BACKENDS = ("threads", "mp")


def _workload(nx: int, n_steps: int):
    def main(comm):
        res = run_reaction_diffusion(
            comm=comm, nx=nx, ny=nx, max_levels=1, n_steps=n_steps,
            dt=1e-7, chemistry_mode="batch")
        return res["T_max"]

    return main


def run_backend_ab(fast: bool | None = None, nprocs: int = 4,
                   rounds: int = 2) -> dict:
    """Time the same ``nprocs``-rank reaction-diffusion run on each
    backend; return rows, the ``mp_over_threads`` ratio, and a rendered
    report.  ``rounds`` runs per backend, best time kept (process
    start-up noise lands in the slower rounds)."""
    fast = fast_mode() if fast is None else fast
    nx, n_steps = (16, 2) if fast else (32, 4)
    main = _workload(nx, n_steps)
    cores = os.cpu_count() or 1

    results: dict[str, dict] = {}
    for backend in BACKENDS:
        times = []
        t_max = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = mpirun(nprocs, main, machine=ZERO_COST, backend=backend)
            times.append(time.perf_counter() - t0)
            t_max = out[0]
        results[backend] = {"times": times, "best": min(times),
                            "mean": sum(times) / len(times),
                            "T_max": t_max}

    # the property that holds on every host: identical physics
    t_maxes = {b: r["T_max"] for b, r in results.items()}
    if len(set(t_maxes.values())) != 1:
        raise AssertionError(
            f"backends disagree on T_max: {t_maxes}")

    ratio = results["mp"]["best"] / results["threads"]["best"]
    rows = [[b, nprocs, r["best"], r["mean"]]
            for b, r in results.items()]
    report = format_table(
        ["backend", "ranks", "best_s", "mean_s"], rows,
        title=(f"backend A/B — reaction-diffusion {nx}x{nx}, "
               f"{n_steps} steps, {nprocs} ranks, {cores} core(s); "
               f"mp/threads wall ratio = {ratio:.3f} "
               f"(speedup x{1.0 / ratio:.2f})"))
    return {
        "workload": {"app": "reaction_diffusion", "nx": nx, "ny": nx,
                     "n_steps": n_steps, "nprocs": nprocs,
                     "rounds": rounds},
        "cores": cores,
        "results": results,
        "mp_over_threads": ratio,
        "speedup": 1.0 / ratio,
        "T_max": t_maxes["threads"],
        "report": report,
    }
