"""Table 5 / Fig 8 / Fig 9 — parallel scaling of the reaction-diffusion
code.

"We ran the Reaction-Diffusion code on Sandia's CPlant cluster ... The
code was run for 5 timesteps, each of 1e-7.  ...  Adaptivity was turned
off since it renders scalability extremely sensitive to the performance of
the load-balancer.  ...  Each mesh point has 9 variables on it."
(paper §5.2)

The SCMD substitution: P rank-threads run the full component assembly on a
strip-decomposed mesh; run time is each rank's *virtual clock* — its own
CPU time for compute plus CPlant-model alpha-beta time for every ghost
exchange and reduction the assembly actually performs.

* ``run_fig8`` / ``run_table5`` — constant per-processor workload
  (n_local x n_local per rank; the global mesh grows with P).
* ``run_fig9`` — constant global problem (200^2 and 350^2), efficiency
  ``t1 / (P * tP)`` vs ideal.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.apps.reaction_diffusion import run_reaction_diffusion
from repro.bench.reporting import format_table
from repro.mpi import CPLANT, mpirun
from repro.mpi.perfmodel import MachineModel
from repro.obs import aggregate
from repro.util.options import fast_mode

#: 5 steps of 1e-7 s, as in the paper.
N_STEPS = 5
DT = 1e-7


def _run_case_stats(nprocs: int, nx: int, ny: int,
                    machine: MachineModel = CPLANT) -> dict:
    """Run the RD assembly on ``nprocs`` ranks; return the per-rank
    breakdown: ``{"per_rank": [clocks...], "stats": {...}}`` (the
    :func:`repro.obs.aggregate.rank_clock_summary` reduction, including
    the Table 5 max/avg load-imbalance ratio)."""

    def main(comm):
        run_reaction_diffusion(
            comm=comm,
            nx=nx,
            ny=ny,
            extent=nx * 1e-4,           # the paper's ~0.1 mm spacing
            max_levels=1,               # adaptivity off (paper §5.2)
            n_steps=N_STEPS,
            dt=DT,
            chemistry_mode="batch",
            chemistry_on=True,
        )
        comm.barrier()
        return comm.clock

    clocks = mpirun(nprocs, main, machine=machine)
    return aggregate.rank_clock_summary(clocks)


def _run_case(nprocs: int, nx: int, ny: int,
              machine: MachineModel = CPLANT) -> float:
    """Slowest rank's virtual run time (what a cluster user measures)."""
    return _run_case_stats(nprocs, nx, ny, machine)["stats"]["max"]


@dataclass
class WeakScalingResult:
    n_local: int
    procs: list[int]
    times: list[float] = field(default_factory=list)
    #: per-case rank breakdowns (one rank_clock_summary per P)
    rank_summaries: list[dict] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def median(self) -> float:
        return statistics.median(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0

    @property
    def worst_imbalance(self) -> float:
        """Largest max/avg load-imbalance ratio across the P sweep."""
        if not self.rank_summaries:
            return 1.0
        return max(s["stats"]["imbalance"] for s in self.rank_summaries)


#: memoized Fig 8 sweeps keyed by the fast flag (Table 5 reuses Fig 8's
#: runs exactly as the paper computes its statistics from the same data)
_FIG8_CACHE: dict[bool, dict] = {}


def run_fig8(fast: bool | None = None) -> dict:
    """Constant per-processor workload: T(P) for three per-rank sizes.

    The paper's Fig 8 shape: each curve is ~flat in P; curves order by
    per-rank problem size.
    """
    fast = fast_mode() if fast is None else fast
    if fast in _FIG8_CACHE:
        return _FIG8_CACHE[fast]
    if fast:
        size_procs = {20: [1, 2, 4], 40: [1, 2, 4]}
    else:
        # The paper's per-rank sizes.  The sweep caps at P = 16
        # rank-threads: beyond that, all ranks time-sharing one physical
        # core makes each rank's measured CPU time absorb its siblings'
        # cache interference — an emulation artifact (real CPlant nodes
        # have private caches), not a property of the communication
        # model, whose log2(P) collective growth is separately verified
        # by the tests in tests/mpi/test_virtual_time.py out to P = 48.
        size_procs = {50: [1, 4, 16], 100: [1, 4, 16], 175: [1, 4, 16]}
    results: list[WeakScalingResult] = []
    for n_local, procs in size_procs.items():
        r = WeakScalingResult(n_local, list(procs))
        for p in procs:
            # strip decomposition: global mesh (p * n_local) x n_local
            case = _run_case_stats(p, p * n_local, n_local)
            r.rank_summaries.append(case)
            r.times.append(case["stats"]["max"])
        results.append(r)
    rows = []
    for r in results:
        for p, t, case in zip(r.procs, r.times, r.rank_summaries):
            rows.append([f"{r.n_local}x{r.n_local}", p, t,
                         case["stats"]["imbalance"]])
    table = format_table(
        ["per-rank mesh", "P", "virtual time [s]", "imbalance"], rows,
        title="Fig 8 analog: constant per-processor workload "
              "(5 steps of 1e-7 s, 9 vars/point, CPlant model)")
    flatness = {
        r.n_local: max(r.times) / min(r.times) for r in results
    }
    summary = "\n".join(
        f"size {n}^2: max/min over P = {v:.3f} (paper: ~flat)"
        for n, v in flatness.items())
    # per-rank breakdown of the widest run of the largest size — the
    # load-balance evidence behind the flatness claim
    widest = results[-1].rank_summaries[-1]
    summary += "\n" + aggregate.format_rank_summary(widest)
    out = {"results": results, "report": table + "\n" + summary,
           "flatness": flatness}
    _FIG8_CACHE[fast] = out
    return out


def run_table5(fig8_results: list[WeakScalingResult] | None = None,
               fast: bool | None = None) -> dict:
    """Mean / median / stdev of the Fig 8 run times per problem size —
    the paper's Table 5 (the "homogeneous machine" check)."""
    if fig8_results is None:
        fig8_results = run_fig8(fast)["results"]
    rows = [
        [f"{r.n_local} x {r.n_local}", r.mean, r.median, r.stdev,
         r.worst_imbalance]
        for r in fig8_results
    ]
    table = format_table(
        ["Problem Size", "mean T", "median T", "stdev", "imbalance"], rows,
        title="Table 5 analog: weak-scaling run-time statistics")
    # run-time ratios should track per-rank cell counts
    ratios = []
    for a, b in zip(fig8_results, fig8_results[1:]):
        expect = (b.n_local / a.n_local) ** 2
        ratios.append((b.n_local, a.n_local, b.mean / a.mean, expect))
    summary = "\n".join(
        f"T({b}^2)/T({a}^2) = {got:.2f} (cell-count ratio {exp:.2f})"
        for b, a, got, exp in ratios)
    imbalance = {r.n_local: r.worst_imbalance for r in fig8_results}
    summary += "\n" + "\n".join(
        f"size {n}^2: worst load imbalance (max/avg) over P = {v:.4f}"
        for n, v in imbalance.items())
    return {"results": fig8_results, "report": table + "\n" + summary,
            "ratios": ratios, "imbalance": imbalance}


def run_fig9(fast: bool | None = None) -> dict:
    """Constant global problem size: measured vs ideal run time.

    The paper's Fig 9: the 350^2 problem hugs the ideal curve; the 200^2
    problem departs at high P (73% efficiency at P=48, where the per-rank
    patch is just 29^2).
    """
    fast = fast_mode() if fast is None else fast
    if fast:
        globals_ = [40, 96]
        procs = [1, 2, 4, 8]
    else:
        globals_ = [200, 350]
        procs = [1, 4, 16, 48]
    curves = {}
    for n_global in globals_:
        times = []
        summaries = []
        for p in procs:
            usable = min(p, n_global)  # cannot cut more strips than rows
            case = _run_case_stats(usable, n_global, n_global)
            summaries.append(case)
            times.append(case["stats"]["max"])
        t1 = times[0]
        eff = [t1 / (p * tp) for p, tp in zip(procs, times)]
        curves[n_global] = {
            "procs": list(procs),
            "times": times,
            "ideal": [t1 / p for p in procs],
            "efficiency": eff,
            "rank_summaries": summaries,
            "imbalance": [s["stats"]["imbalance"] for s in summaries],
        }
    rows = []
    for n_global, c in curves.items():
        for p, t, ideal, e in zip(c["procs"], c["times"], c["ideal"],
                                  c["efficiency"]):
            rows.append([f"{n_global}^2", p, t, ideal, f"{100 * e:.1f}%"])
    table = format_table(
        ["global mesh", "P", "T [s]", "ideal T [s]", "efficiency"], rows,
        title="Fig 9 analog: strong scaling vs ideal (CPlant model)")
    small, large = globals_[0], globals_[-1]
    worst_small = min(curves[small]["efficiency"])
    worst_large = min(curves[large]["efficiency"])
    summary = (
        f"\nworst efficiency: {small}^2 -> {100 * worst_small:.1f}%  "
        f"(paper: 73% at P=48), {large}^2 -> {100 * worst_large:.1f}%  "
        f"(paper: near-ideal)")
    return {"curves": curves, "report": table + summary,
            "worst_small": worst_small, "worst_large": worst_large}
