"""Benchmark harnesses regenerating every table and figure of the paper.

========  ==========================================  =====================
Paper     Content                                     Harness
========  ==========================================  =====================
Table 4   serial component-overhead timings           :mod:`repro.bench.overhead`
Table 5   weak-scaling run-time statistics            :mod:`repro.bench.scaling`
Fig 3/4   flame evolution + AMR patch census          :mod:`repro.bench.flame`
Fig 6     shock-interface density field               :mod:`repro.bench.shock`
Fig 7     interfacial-circulation convergence         :mod:`repro.bench.shock`
Fig 8     constant-per-processor workload timings     :mod:`repro.bench.scaling`
Fig 9     strong scaling vs ideal                     :mod:`repro.bench.scaling`
========  ==========================================  =====================

Each harness returns plain dictionaries/lists and renders the same rows or
series the paper reports via :mod:`repro.bench.reporting`.  ``REPRO_FAST``
(or the ``fast=`` argument) shrinks problem sizes for smoke runs; the
shapes under comparison are preserved.
"""

from repro.bench import trajectory
from repro.bench.backends import run_backend_ab
from repro.bench.reporting import format_table, save_json, save_report
from repro.bench.overhead import run_table4, run_serial_workload
from repro.bench.scaling import run_table5, run_fig8, run_fig9
from repro.bench.shock import run_fig6, run_fig7
from repro.bench.flame import run_fig3_fig4

__all__ = [
    "format_table",
    "save_json",
    "save_report",
    "trajectory",
    "run_backend_ab",
    "run_table4",
    "run_serial_workload",
    "run_table5",
    "run_fig8",
    "run_fig9",
    "run_fig6",
    "run_fig7",
    "run_fig3_fig4",
]
