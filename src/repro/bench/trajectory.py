"""Bench-trajectory store: ``BENCH_<name>.json`` at the repo root.

Every bench that calls :func:`repro.bench.reporting.save_json` also
appends one *trajectory entry* — the run's scalar KPIs plus a
fingerprint (host, commit, fast-mode flag, python version) — to a
schema-versioned ``BENCH_<name>.json`` file in the current directory
(the repo root, for a normal ``pytest benchmarks`` run).  The files are
committed: they are the repo's performance memory, the data the
regression gate (:mod:`repro.obs.regress`) compares each fresh run
against.  FLASH and Cactus both attribute their longevity to exactly
this kind of always-accumulating bench ledger.

Environment knobs: ``REPRO_TRAJECTORY=0`` disables appending entirely
(unit tests that exercise benches in odd directories use this);
``REPRO_TRAJECTORY_DIR`` redirects the files elsewhere.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from typing import Any, Mapping

TRAJECTORY_SCHEMA = 1

#: History cap per bench — enough for years of CI at several runs/day
#: without unbounded file growth.
MAX_RUNS = 400


def enabled() -> bool:
    """Trajectory appending is on unless ``REPRO_TRAJECTORY`` says off."""
    return os.environ.get("REPRO_TRAJECTORY", "").strip().lower() \
        not in ("0", "false", "no", "off")


def trajectory_dir() -> str:
    """Where ``BENCH_*.json`` files live (cwd — the repo root for a
    normal bench run — unless ``REPRO_TRAJECTORY_DIR`` redirects)."""
    return os.environ.get("REPRO_TRAJECTORY_DIR", "").strip() or os.getcwd()


def trajectory_path(name: str, directory: str | None = None) -> str:
    return os.path.join(directory or trajectory_dir(), f"BENCH_{name}.json")


def _git_commit() -> str | None:
    """Short commit hash of the working tree, best-effort."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def code_fingerprint() -> dict[str, Any]:
    """The ``{host, commit, fast, python}`` stamp identifying *which
    code on which machine* produced a result.

    Shared by the bench ledgers (every trajectory entry carries one; the
    regression gate only compares runs whose ``fast`` flags match and
    prefers same-``host`` history) and by the :mod:`repro.serve` result
    cache (identical requests are only served from cache when the code
    fingerprint matches — a commit bump invalidates every cached run).
    """
    from repro.util.options import fast_mode
    return {
        "host": socket.gethostname(),
        "commit": _git_commit(),
        "fast": fast_mode(),
        "python": platform.python_version(),
    }


def fingerprint() -> dict[str, Any]:
    """Alias for :func:`code_fingerprint` (the trajectory-entry field is
    named ``fingerprint``; new callers should use the public name)."""
    return code_fingerprint()


def extract_metrics(payload: Mapping[str, Any],
                    prefix: str = "") -> dict[str, float]:
    """Default KPI extraction: every numeric scalar in the payload,
    flattened to dotted keys.  Lists are skipped (their lengths vary
    with problem size and mode) and so are bools and the schema tag —
    benches with better-defined KPIs pass explicit ``metrics`` to
    :func:`repro.bench.reporting.save_json` instead."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        if key == "schema" and not prefix:
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = float(value)
        elif isinstance(value, Mapping):
            out.update(extract_metrics(value, prefix=f"{dotted}."))
    return out


def load_trajectory(path: str) -> dict[str, Any] | None:
    """Parse one trajectory file; ``None`` when absent or unreadable
    (a corrupt ledger should not wedge every future bench run)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        return None
    return doc


def append_run(name: str, payload: Mapping[str, Any],
               metrics: Mapping[str, float] | None = None,
               directory: str | None = None,
               max_runs: int = MAX_RUNS) -> str:
    """Append one run to ``BENCH_<name>.json`` and return the path.

    ``metrics`` is the run's KPI dict (lower = better for timings; the
    regression gate flags increases).  When omitted it is extracted from
    the payload via :func:`extract_metrics`.  The write is atomic
    (tmp + rename) so a crashed bench never truncates the ledger.
    """
    path = trajectory_path(name, directory)
    doc = load_trajectory(path) or {
        "schema": TRAJECTORY_SCHEMA, "bench": name, "runs": []}
    doc["schema"] = TRAJECTORY_SCHEMA
    doc["bench"] = name
    entry = {
        "time": time.time(),
        "fingerprint": fingerprint(),
        "metrics": {k: float(v)
                    for k, v in (metrics if metrics is not None
                                 else extract_metrics(payload)).items()},
    }
    doc["runs"] = (doc["runs"] + [entry])[-max_runs:]
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def discover(directory: str | None = None) -> list[str]:
    """All ``BENCH_*.json`` trajectory paths under ``directory``
    (default: :func:`trajectory_dir`), sorted by name."""
    directory = directory or trajectory_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, n) for n in names
        if n.startswith("BENCH_") and n.endswith(".json"))
