"""Application-level checkpoint: a whole running assembly in one artifact.

Extends the raw SAMR checkpoint (:mod:`repro.samr.checkpoint`) with the
rest of the state a restart needs to be *bit-identical*:

* the driver's step counter and simulation time,
* every Checkpointable component's state (integrator counters,
  statistics series, solver bookkeeping),
* the rank's virtual clock (:mod:`repro.mpi.comm`), so post-restart
  virtual-time accounting and obs traces continue instead of rewinding.

Artifacts are versioned and per-rank-sharded:
``<prefix>.step<k>[.rank<r>].npz`` — the hierarchy metadata is replicated
into every shard, each rank stores only its owned patch arrays.  A step's
checkpoint is *valid* only when every expected shard exists and carries a
matching manifest; :func:`latest_valid_step` is how the supervised runner
(and a driver's ``resume`` parameter) find where to restart from.
"""

from __future__ import annotations

import glob
import os
import re
from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.samr import checkpoint as samr_ckpt
from repro.samr.dataobject import DataObject
from repro.samr.hierarchy import Hierarchy

#: Version of the app-level manifest layered on the SAMR format.
APP_FORMAT_VERSION = 1

_STEP_RE = re.compile(r"\.step(\d+)(?:\.rank(\d+))?\.npz$")


def step_prefix(prefix: str, step: int) -> str:
    """Path prefix for one step's shards (rank/.npz suffixes appended by
    the SAMR layer)."""
    return f"{prefix}.step{step:06d}"


@dataclass
class AppCheckpoint:
    """One rank's view of a restored application checkpoint."""

    step: int
    t: float
    hierarchy: Hierarchy | None
    dataobjs: dict[str, DataObject]
    component_states: dict[str, dict]
    clock: float = 0.0
    nranks: int = 1
    extras: dict = field(default_factory=dict)


def save_app_checkpoint(prefix: str, step: int, t: float,
                        hierarchy: Hierarchy | None = None,
                        dataobjs: list[DataObject] | None = None,
                        component_states: dict[str, dict] | None = None,
                        rank: int | None = None, nranks: int = 1,
                        clock: float = 0.0,
                        extras: dict | None = None) -> str:
    """Write one rank's shard of an app checkpoint; returns the path.

    Mesh-less applications (the 0D ignition code) pass
    ``hierarchy=None`` — the artifact then carries only the app manifest
    (driver + component states) in a placeholder SAMR container.
    """
    app = {
        "app_version": APP_FORMAT_VERSION,
        "step": step,
        "t_sim": t,
        "rank": 0 if rank is None else rank,
        "sharded": rank is not None,
        "nranks": nranks,
        "clock": clock,
        "components": component_states or {},
        "extras": extras or {},
        "has_mesh": hierarchy is not None,
    }
    if hierarchy is None:
        # placeholder 1-cell mesh: keeps the artifact a plain SAMR
        # checkpoint any tool (``inspect``, np.load) can open
        hierarchy = Hierarchy((1, 1))
        hierarchy.build_base_level()
        dataobjs = []
    return samr_ckpt.save_checkpoint(
        step_prefix(prefix, step), hierarchy, list(dataobjs or []),
        t=t, rank=rank, extra=app)


def load_app_checkpoint(prefix: str, step: int,
                        rank: int | None = None) -> AppCheckpoint:
    """Load one rank's shard of the app checkpoint written at ``step``."""
    h, dataobjs, t, extra = samr_ckpt.load_checkpoint(
        step_prefix(prefix, step), rank=rank, return_extra=True)
    if not isinstance(extra, dict) or "app_version" not in extra:
        raise CheckpointError(
            f"{step_prefix(prefix, step)!r} is a raw SAMR checkpoint, "
            f"not an application checkpoint (no app manifest)")
    if extra["app_version"] != APP_FORMAT_VERSION:
        raise CheckpointError(
            f"app checkpoint version {extra['app_version']} not "
            f"supported (expected {APP_FORMAT_VERSION})")
    if extra["step"] != step:
        raise CheckpointError(
            f"manifest step {extra['step']} does not match file step "
            f"{step} — corrupt or renamed checkpoint")
    return AppCheckpoint(
        step=extra["step"],
        t=float(extra["t_sim"]),
        hierarchy=h if extra.get("has_mesh", True) else None,
        dataobjs=dataobjs if extra.get("has_mesh", True) else {},
        component_states=extra.get("components", {}),
        clock=float(extra.get("clock", 0.0)),
        nranks=int(extra.get("nranks", 1)),
        extras=extra.get("extras", {}),
    )


def checkpoint_steps(prefix: str) -> list[int]:
    """All step numbers with at least one shard under ``prefix``."""
    steps = set()
    for path in glob.glob(glob.escape(prefix) + ".step*.npz"):
        m = _STEP_RE.search(path)
        if m:
            steps.add(int(m.group(1)))
    return sorted(steps)


def _shard_paths(prefix: str, step: int, nranks: int | None) -> list[str]:
    base = step_prefix(prefix, step)
    if nranks is None:
        return [samr_ckpt.checkpoint_path(base)]
    return [samr_ckpt.checkpoint_path(base, rank=r) for r in range(nranks)]


def _detect_nranks(prefix: str, step: int) -> int | None:
    """Expected shard count for ``step``: None (unsharded) when the
    serial artifact exists, else the cohort size recorded in any present
    shard's manifest.  Shards carry the *true* ``nranks``, so a step
    missing its highest-rank shards still detects the full requirement.
    """
    base = step_prefix(prefix, step)
    if os.path.exists(samr_ckpt.checkpoint_path(base)):
        return None
    for path in glob.glob(glob.escape(base) + ".rank*.npz"):
        try:
            manifest = samr_ckpt.read_manifest(path)
        except CheckpointError:
            continue
        app = manifest.get("extra") or {}
        if app.get("sharded"):
            return int(app.get("nranks", 1))
    return None


def is_valid_step(prefix: str, step: int, nranks: int | None = None) -> bool:
    """True when every expected shard of ``step`` exists and its manifest
    parses with a matching step number (the runner's validity probe).

    With ``nranks=None`` the shard count is read from the manifests
    themselves (:func:`_detect_nranks`); pass it explicitly to assert a
    specific cohort size.
    """
    if nranks is None:
        nranks = _detect_nranks(prefix, step)
    for path in _shard_paths(prefix, step, nranks):
        if not os.path.exists(path):
            return False
        try:
            manifest = samr_ckpt.read_manifest(path)
        except CheckpointError:
            return False
        app = manifest.get("extra") or {}
        if app.get("app_version") != APP_FORMAT_VERSION \
                or app.get("step") != step:
            return False
    return True


def latest_valid_step(prefix: str, nranks: int | None = None) -> int | None:
    """Newest step whose checkpoint is complete and readable, else None."""
    for step in reversed(checkpoint_steps(prefix)):
        if is_valid_step(prefix, step, nranks):
            return step
    return None


def prune_old_steps(prefix: str, keep: int,
                    rank: int | None = None) -> list[str]:
    """Delete this rank's shards of all but the newest ``keep`` steps.

    Each rank removes only its own files, so concurrent pruning across an
    SCMD cohort never races on a shard.  Returns the paths removed.
    """
    removed: list[str] = []
    steps = checkpoint_steps(prefix)
    if keep <= 0 or len(steps) <= keep:
        return removed
    for step in steps[:-keep]:
        path = samr_ckpt.checkpoint_path(step_prefix(prefix, step),
                                         rank=rank)
        if os.path.exists(path):
            os.remove(path)
            removed.append(path)
    return removed
