"""CLI: ``python -m repro.resilience <command>``.

``run <script.rc>``
    Execute an assembly under the supervised runner
    (:mod:`repro.resilience.runner`): periodic checkpoints come from the
    script's driver parameters, failures trigger restart-from-checkpoint
    with bounded retries.  ``--fault`` arms the deterministic fault
    injector for chaos drills; ``--tsan`` arms the runtime race
    sanitizer (:mod:`repro.mpi.sanitizer`).  Exit 0 when the run
    (eventually) succeeds, 1 when retries are exhausted, 2 on usage
    errors.

``inspect <prefix>``
    List the application checkpoints under an artifact prefix and their
    validity (all rank shards present, manifests parse).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.mpi.perfmodel import CPLANT, LOCALHOST, ZERO_COST
from repro.resilience import checkpoint as app_ckpt
from repro.resilience.runner import parse_fault_spec, run_supervised

_MACHINES = {"localhost": LOCALHOST, "zero-cost": ZERO_COST,
             "cplant": CPLANT}

__all__ = ["main", "build_parser", "parse_fault_spec"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Supervised checkpoint/restart execution and "
                    "checkpoint inspection.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an rc-script under supervision")
    run.add_argument("script", help="CCAFFEINE rc-script file")
    run.add_argument("--nprocs", type=int, default=1,
                     help="SCMD rank count (default: 1)")
    run.add_argument("--retries", type=int, default=3,
                     help="max restarts after a failed attempt (default: 3)")
    run.add_argument("--backoff", type=float, default=0.0,
                     help="base backoff seconds before retry n, doubled "
                          "each retry (default: 0)")
    run.add_argument("--machine", choices=sorted(_MACHINES),
                     default="localhost",
                     help="virtual-time machine model (default: localhost)")
    run.add_argument("--backend", default="",
                     help="execution backend: threads | mp | mpiexec "
                          "(default: $REPRO_BACKEND, then threads)")
    run.add_argument("--fault", metavar="SPEC", default="",
                     help="arm fault injection: key=value[,key=value...] "
                          "over FaultPlan fields, e.g. "
                          "kill_rank=1,kill_step=3,seed=7")
    run.add_argument("--tsan", action="store_true",
                     help="arm the runtime race sanitizer "
                          "(repro.mpi.sanitizer) for the supervised run "
                          "— unsynchronized shared writes across "
                          "rank-threads raise DataRaceError")
    run.add_argument("--metrics", metavar="FILE", default="",
                     help="write the run report (attempts, restarts, "
                          "injected fault counts) as JSON")

    insp = sub.add_parser("inspect",
                          help="list checkpoints under a prefix")
    insp.add_argument("prefix", help="checkpoint artifact prefix")
    insp.add_argument("--nranks", type=int, default=0,
                      help="expected rank shards (0 = read the cohort "
                           "size from the shard manifests)")
    return parser


def _cmd_run(args) -> int:
    try:
        with open(args.script, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"error: cannot read {args.script!r}: {exc}", file=sys.stderr)
        return 2
    if args.fault:
        try:
            parse_fault_spec(args.fault)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.backend:
        from repro.exec import resolve_name
        try:
            resolve_name(args.backend)  # fail fast with did-you-mean
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        result = run_supervised(text, nprocs=args.nprocs,
                                retries=args.retries, backoff=args.backoff,
                                machine=_MACHINES[args.machine],
                                fault=args.fault or None, tsan=args.tsan,
                                backend=args.backend or None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.metrics:
        # Schema-1 envelope (repro.obs.export) + the legacy report keys
        # at top level: obs-metrics consumers read "metrics", existing
        # consumers keep reading "ok"/"restarts"/... unchanged.
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(result.metrics(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    report = result.report
    status = "ok" if report.ok else "FAILED"
    print(f"{status}: {report.attempts} attempt(s), "
          f"{report.restarts} restart(s), nprocs={report.nprocs}")
    for line in report.failures:
        print(f"  failure: {line}")
    if report.injected:
        print(f"  injected: {report.injected}")
    return 0 if report.ok else 1


def _cmd_inspect(args) -> int:
    nranks = args.nranks if args.nranks > 0 else None
    steps = app_ckpt.checkpoint_steps(args.prefix)
    if not steps:
        print(f"no checkpoints under {args.prefix!r}")
        return 1
    latest = app_ckpt.latest_valid_step(args.prefix, nranks)
    for step in steps:
        ok = app_ckpt.is_valid_step(args.prefix, step, nranks)
        mark = "valid  " if ok else "INVALID"
        tail = "  <- latest" if step == latest else ""
        print(f"step {step:6d}  {mark}{tail}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_inspect(args)


if __name__ == "__main__":
    sys.exit(main())
