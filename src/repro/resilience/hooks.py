"""Driver-side checkpoint/restart hook.

:class:`CheckpointHook` is the small object an application driver embeds
in its step loop: it reads the driver's rc parameters, periodically saves
an application checkpoint (:mod:`repro.resilience.checkpoint`), restores
the latest valid one when ``resume`` is set, and fires the step-granular
fault hook (:func:`repro.resilience.faults.step_hook`) so an armed
rank-kill plan takes effect at a deterministic point — *after* the step's
checkpoint, never between a half-written shard pair.

Driver parameters (the rc ``parameter`` directive):

======================  ===============================================
``checkpoint_path``     artifact prefix; "" (default) = checkpointing off
``checkpoint_interval`` steps between checkpoints (default 1)
``checkpoint_keep``     newest checkpoints to retain (0 = keep all)
``resume``              restart from the latest valid checkpoint
======================  ===============================================

The hook is deliberately framework-frugal: it talks to the driver's
:class:`~repro.cca.services.Services` handle and, through it, to the
mesh provider wired to the driver's ``mesh`` uses port — so any assembly
whose driver follows the step-loop convention gets checkpoint/restart
without new ports or wiring.
"""

from __future__ import annotations

import os
import time

from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.resilience import checkpoint as app_ckpt
from repro.resilience import faults as _faults
from repro.resilience.checkpoint import AppCheckpoint


class CheckpointHook:
    """Periodic checkpointing + restart for one driver's step loop.

    Construct inside the driver's ``run()`` once ports are wired; call
    :meth:`resume` before entering the loop and :meth:`after_step` at the
    end of every iteration.  ``mesh_uses`` names the driver's uses port
    wired to the SAMR provider; pass ``None`` for mesh-less assemblies
    (the 0D ignition code) — driver state then rides in ``extras``.
    """

    def __init__(self, services, mesh_uses: str | None = "mesh") -> None:
        self.services = services
        self.framework = services._framework
        p = services.parameters
        self.path = p.get_str("checkpoint_path", "")
        self.interval = p.get_int("checkpoint_interval", 1)
        self.keep = p.get_int("checkpoint_keep", 0)
        self.want_resume = p.get_bool("resume", False)
        self.comm = services.get_comm()
        #: shard id: None = serial (unsharded artifact), else comm rank
        self.rank = None if self.comm is None else self.comm.rank
        self.nranks = 1 if self.comm is None else self.comm.size
        self.mesh_uses = mesh_uses

    @property
    def enabled(self) -> bool:
        return bool(self.path) and self.interval > 0

    def _mesh_component(self):
        """The component providing the driver's mesh port (owns the
        hierarchy and the DataObjects), or None."""
        if self.mesh_uses is None:
            return None
        wired = self.framework.provider_of(
            self.services.instance_name, self.mesh_uses)
        if wired is None:
            return None
        return self.framework.get_component(wired[0])

    # -- saving ---------------------------------------------------------------
    def save(self, step: int, t: float, extras: dict | None = None) -> str:
        """Write this rank's shard of an app checkpoint at ``step``."""
        t0 = time.perf_counter()
        mesh_comp = self._mesh_component()
        hierarchy = dataobjs = None
        if mesh_comp is not None:
            hierarchy = mesh_comp.require_hierarchy()
            dataobjs = mesh_comp.dataobjects()
        path = app_ckpt.save_app_checkpoint(
            self.path, step, t,
            hierarchy=hierarchy, dataobjs=dataobjs,
            component_states=self.framework.capture_state(),
            rank=self.rank, nranks=self.nranks,
            clock=0.0 if self.comm is None else self.comm.clock,
            extras=extras)
        if self.keep:
            app_ckpt.prune_old_steps(self.path, self.keep, rank=self.rank)
        if _obs.on:
            rank = 0 if self.rank is None else self.rank
            reg = _obs_registry()
            reg.counter("resilience.checkpoints", rank=rank).inc()
            reg.counter("resilience.checkpoint_bytes", rank=rank).inc(
                os.path.getsize(path))
            reg.histogram("resilience.checkpoint_seconds",
                          rank=rank).observe(time.perf_counter() - t0)
            reg.gauge("resilience.last_checkpoint_step", rank=rank).set(step)
            _obs.complete("resilience.checkpoint", "resilience", t0,
                          step=step, path=path)
        return path

    # -- restoring ------------------------------------------------------------
    def resume(self) -> AppCheckpoint | None:
        """Restore the latest valid checkpoint; None when there is none.

        On success the mesh provider adopts the restored hierarchy and
        DataObjects, every Checkpointable component gets its state back,
        and the rank's virtual clock is advanced to the saved value; the
        driver re-enters its loop at the returned ``step`` / ``t``.
        """
        if not (self.want_resume and self.path):
            return None
        shards = None if self.rank is None else self.nranks
        step = app_ckpt.latest_valid_step(self.path, shards)
        if step is None:
            return None
        ck = app_ckpt.load_app_checkpoint(self.path, step, rank=self.rank)
        mesh_comp = self._mesh_component()
        if mesh_comp is not None and ck.hierarchy is not None:
            mesh_comp.adopt(ck.hierarchy, ck.dataobjs)
        self.framework.restore_state(ck.component_states)
        if self.comm is not None and ck.clock > self.comm.clock:
            self.comm.advance(ck.clock - self.comm.clock)
        if _obs.on:
            _obs_registry().counter(
                "resilience.restores",
                rank=0 if self.rank is None else self.rank).inc()
        return ck

    # -- the per-step call -----------------------------------------------------
    def after_step(self, step: int, t: float,
                   extras: dict | None = None) -> bool:
        """End-of-iteration hook: periodic save, then fault injection.

        Returns True when this step was checkpointed.  The order matters:
        an armed rank-kill fires *after* the checkpoint write, so a kill
        at step k restarts from k (or the newest earlier multiple of the
        interval), never from a torn artifact.
        """
        saved = False
        if self.enabled and step % self.interval == 0:
            self.save(step, t, extras)
            saved = True
        if _faults.on:
            _faults.step_hook(
                0 if self.comm is None else self.comm.global_rank, step)
        return saved
