"""Deterministic, seeded fault injection — off by default.

Chaos testing for the toolkit's long parallel runs: a single module flag
(``faults.on``, mirroring :mod:`repro.obs.trace`) guards every hook, so
the disabled cost on the hot paths (MPI sends, CCA port calls) is one
module-attribute read.  When armed via :func:`configure`, a
:class:`FaultPlan` describes exactly which failures to inject:

* **rank-kill at step k** — the driver step-loop hook
  (:meth:`repro.resilience.hooks.CheckpointHook.after_step`) calls
  :func:`step_hook`, which raises :class:`~repro.errors.InjectedFault`
  on the configured ``(rank, step)``;
* **message drop / delay** — :meth:`repro.mpi.comm.Comm.send` consults
  :func:`on_send`; drops are counted and the message silently discarded,
  delays inflate the virtual-time flight cost;
* **exception injection in a named component method** —
  :meth:`repro.cca.services.Services.get_port` wraps the matching
  provider port in a :class:`FaultPortProxy` that raises on the
  configured N-th call of the named method.

Every decision is a pure function of ``(seed, event identity, event
counter)``, so the same plan against the same program injects the same
faults — a prerequisite for the checkpoint/restart determinism proof.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

from repro.errors import InjectedFault

#: Master switch.  Hot paths read this module attribute directly
#: (``if faults.on:``); it is True exactly while a plan is configured.
on: bool = False

_lock = threading.Lock()


@dataclass
class FaultPlan:
    """What to inject.  All fields default to "nothing"."""

    #: kill this global rank ... (-1 = no rank-kill)
    kill_rank: int = -1
    #: ... when its driver completes this step (0 = no rank-kill)
    kill_step: int = 0
    #: fire the rank-kill at most this many times (survives restarts of
    #: the same process, so a supervised re-run is not re-killed forever)
    kill_max_fires: int = 1
    #: probability that any one send is dropped (0.0 = never)
    drop_prob: float = 0.0
    #: cap on total dropped messages (bounded chaos; 0 = unlimited)
    drop_max: int = 0
    #: virtual seconds added to a delayed message's flight time
    delay_seconds: float = 0.0
    #: probability that any one send is delayed
    delay_prob: float = 0.0
    #: inject into this port call: ``"Provider:port.method"`` (the
    #: TracingPortProxy label convention), "" = no method injection
    inject_method: str = ""
    #: raise on the N-th matching call (1-based)
    inject_call: int = 1
    #: fire the method injection at most this many times
    inject_max_fires: int = 1
    #: decision seed — same seed, same program, same faults
    seed: int = 1234


@dataclass
class _Counters:
    """Mutable bookkeeping for one armed plan."""

    kills: int = 0
    drops: int = 0
    delays: int = 0
    method_calls: dict[str, int] = field(default_factory=dict)
    method_fires: int = 0
    send_serial: dict[tuple[int, int], int] = field(default_factory=dict)


_plan: FaultPlan | None = None
_counters = _Counters()


def configure(plan: FaultPlan) -> None:
    """Arm the fault plan (sets the module flag)."""
    global on, _plan, _counters
    with _lock:
        _plan = plan
        _counters = _Counters()
        on = True


def deactivate() -> None:
    """Disarm fault injection (hot paths go back to one flag check)."""
    global on, _plan
    with _lock:
        on = False
        _plan = None


def plan() -> FaultPlan | None:
    """The armed plan, or None."""
    return _plan


def injected_counts() -> dict[str, int]:
    """How many faults actually fired (for runner metrics)."""
    with _lock:
        return {
            "kills": _counters.kills,
            "drops": _counters.drops,
            "delays": _counters.delays,
            "method_exceptions": _counters.method_fires,
        }


def snapshot_counts() -> dict:
    """Absolute counter snapshot, for cross-process merging.

    The ``mp`` backend captures one in the parent at fork time (the
    baseline) and one in each worker at exit; :func:`merge_counts` folds
    the per-worker deltas back into the parent so a supervised retry
    sees e.g. ``kills`` already at ``kill_max_fires``.
    """
    with _lock:
        return {
            "kills": _counters.kills,
            "drops": _counters.drops,
            "delays": _counters.delays,
            "method_fires": _counters.method_fires,
            "method_calls": dict(_counters.method_calls),
            "send_serial": dict(_counters.send_serial),
        }


def merge_counts(baseline: dict, snapshots: list[dict]) -> None:
    """Fold worker snapshots into this process's counters.

    Workers inherit ``baseline`` at fork, so each scalar merges as the
    sum of per-worker deltas above it (every injected fault fired in
    exactly one process).  ``send_serial`` merges per channel by max: a
    channel's sender lives in exactly one worker.
    """
    with _lock:
        for attr in ("kills", "drops", "delays", "method_fires"):
            total = getattr(_counters, attr)
            for snap in snapshots:
                total += max(0, snap.get(attr, 0) - baseline.get(attr, 0))
            setattr(_counters, attr, total)
        base_calls = baseline.get("method_calls", {})
        for snap in snapshots:
            for key, n in snap.get("method_calls", {}).items():
                delta = max(0, n - base_calls.get(key, 0))
                _counters.method_calls[key] = (
                    _counters.method_calls.get(key, 0) + delta)
        for snap in snapshots:
            for channel, n in snap.get("send_serial", {}).items():
                _counters.send_serial[channel] = max(
                    _counters.send_serial.get(channel, 0), n)


def _decide(prob: float, *key) -> bool:
    """Seeded deterministic Bernoulli draw for one event identity."""
    if prob <= 0.0:
        return False
    if prob >= 1.0:
        return True
    p = _plan
    digest = zlib.crc32(repr((p.seed if p else 0,) + key).encode("utf-8"))
    return (digest / 0xFFFFFFFF) < prob


# -- hook: driver step loop ---------------------------------------------------
def step_hook(rank: int, step: int) -> None:
    """Raise InjectedFault when ``rank`` completes the configured step.

    Callers guard with ``if faults.on`` themselves (hot-path contract).
    """
    p = _plan
    if p is None or p.kill_step <= 0 or rank != p.kill_rank \
            or step != p.kill_step:
        return
    with _lock:
        if _counters.kills >= p.kill_max_fires:
            return
        _counters.kills += 1
    raise InjectedFault(
        f"injected rank-kill: rank {rank} at step {step}")


# -- hook: MPI send path ------------------------------------------------------
#: sentinel returned by :func:`on_send` when the message must be dropped
DROP = object()


def on_send(src: int, dest: int, tag: int) -> object | float:
    """Fate of one send: :data:`DROP`, a delay in virtual seconds, or 0.0.

    The decision is keyed on the per-channel send ordinal so it is
    independent of wall-clock timing and thread interleaving.
    """
    p = _plan
    if p is None:
        return 0.0
    with _lock:
        serial = _counters.send_serial.get((src, dest), 0) + 1
        _counters.send_serial[(src, dest)] = serial
    if p.drop_prob > 0.0 and _decide(p.drop_prob, "drop", src, dest, tag,
                                     serial):
        with _lock:
            if not p.drop_max or _counters.drops < p.drop_max:
                _counters.drops += 1
                return DROP
    if p.delay_prob > 0.0 and p.delay_seconds > 0.0 and _decide(
            p.delay_prob, "delay", src, dest, tag, serial):
        with _lock:
            _counters.delays += 1
        return p.delay_seconds
    return 0.0


# -- hook: CCA port-call path -------------------------------------------------
class FaultPortProxy:
    """Forwarding wrapper that raises on the configured method call.

    Mirrors :class:`repro.cca.portproxy.TracingPortProxy` (attribute
    forwarding, method wrapping) but is resilience-owned so the CCA layer
    keeps a single ``if faults.on`` check.
    """

    def __init__(self, target, label: str) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_label", label)

    def __getattr__(self, name: str):
        value = getattr(object.__getattribute__(self, "_target"), name)
        if not callable(value):
            return value
        key = f"{object.__getattribute__(self, '_label')}.{name}"

        def wrapped(*args, **kwargs):
            if on:
                on_port_call(key)
            return value(*args, **kwargs)

        return wrapped

    def __setattr__(self, name: str, value) -> None:
        setattr(object.__getattribute__(self, "_target"), name, value)


def wraps_label(label: str) -> bool:
    """Does the armed plan target a method of the port ``label``?"""
    p = _plan
    return (p is not None and bool(p.inject_method)
            and p.inject_method.rsplit(".", 1)[0] == label)


def on_port_call(key: str) -> None:
    """Count one port-method call; raise on the configured N-th one."""
    p = _plan
    if p is None or key != p.inject_method:
        return
    with _lock:
        n = _counters.method_calls.get(key, 0) + 1
        _counters.method_calls[key] = n
        if n != p.inject_call or _counters.method_fires >= p.inject_max_fires:
            return
        _counters.method_fires += 1
    raise InjectedFault(
        f"injected exception in port call {key} (call #{n})")
