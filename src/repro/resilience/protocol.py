"""The Checkpointable protocol: opt-in component state capture.

A component participates in application-level checkpoint/restart by
implementing two methods (duck-typed — no base-class change, so existing
components and third-party ones stay untouched):

``checkpoint_state() -> dict``
    A JSON-serializable snapshot of the component's evolving state
    (counters, series, controller history...).  Large field arrays do
    **not** belong here — they live in DataObjects, which the SAMR layer
    checkpoints bit-exactly; everything else must round-trip through
    ``json.dumps``/``loads`` (Python floats round-trip exactly).

``restore_state(state: dict) -> None``
    Re-impose a snapshot.  Called after instantiation and wiring, before
    the driver resumes its step loop.

:meth:`repro.cca.framework.Framework.capture_state` sweeps every
instantiated component for the protocol; components that don't implement
it are simply stateless as far as checkpointing is concerned.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Checkpointable(Protocol):
    """Structural type for components with restorable state."""

    def checkpoint_state(self) -> dict:
        """JSON-serializable snapshot of evolving state."""
        ...  # pragma: no cover - protocol declaration

    def restore_state(self, state: dict) -> None:
        """Re-impose a snapshot captured by :meth:`checkpoint_state`."""
        ...  # pragma: no cover - protocol declaration


def is_checkpointable(obj: object) -> bool:
    """True if ``obj`` implements the protocol (callable check, not
    just attribute presence)."""
    return (callable(getattr(obj, "checkpoint_state", None))
            and callable(getattr(obj, "restore_state", None)))
