"""repro.resilience — checkpoint/restart, fault injection, supervised runs.

Three layers, composable but separable:

* :mod:`repro.resilience.checkpoint` — application-level checkpoints: the
  SAMR state (via :mod:`repro.samr.checkpoint`) plus driver counters,
  Checkpointable component states and the rank's virtual clock, in one
  versioned per-rank-sharded artifact.
* :mod:`repro.resilience.faults` — deterministic seeded fault injection
  (rank-kill at step k, message drop/delay, exception injection in a
  named port method), off by default behind a single module flag.
* :mod:`repro.resilience.runner` — a supervised runner
  (``python -m repro.resilience run script.rc``) that checkpoints
  periodically, detects failures and restarts from the latest valid
  checkpoint with bounded retries.

This package root stays import-light (errors/samr/numpy only): the CCA
services layer and the MPI communicator import :mod:`.faults` for their
hot-path hooks, so pulling in :mod:`repro.cca` here would be a cycle.
The hooks and runner modules (which do use cca) are imported lazily by
the drivers and the CLI.
"""

from repro.resilience import faults
from repro.resilience.checkpoint import (
    APP_FORMAT_VERSION,
    AppCheckpoint,
    checkpoint_steps,
    is_valid_step,
    latest_valid_step,
    load_app_checkpoint,
    prune_old_steps,
    save_app_checkpoint,
    step_prefix,
)
from repro.resilience.faults import DROP, FaultPlan
from repro.resilience.protocol import Checkpointable, is_checkpointable

__all__ = [
    "APP_FORMAT_VERSION",
    "AppCheckpoint",
    "Checkpointable",
    "DROP",
    "FaultPlan",
    "checkpoint_steps",
    "faults",
    "is_checkpointable",
    "is_valid_step",
    "latest_valid_step",
    "load_app_checkpoint",
    "prune_old_steps",
    "save_app_checkpoint",
    "step_prefix",
]
