"""The supervised runner: run an assembly, survive failures, restart.

The paper's flame simulation ran for 58 wall-clock hours; at that scale a
run *will* see failures, and the recovery loop belongs outside the
application.  :func:`supervise` is that loop: execute an rc-script
(serial or SCMD), detect a failed attempt (a crashed rank, an injected
fault, any component exception), and re-run the same script with the
driver's ``resume`` parameter switched on so it restarts from the latest
valid application checkpoint — bounded retries, exponential backoff.

The script itself says *what* to checkpoint (the driver's
``checkpoint_path`` / ``checkpoint_interval`` parameters, see
:mod:`repro.resilience.hooks`); the runner only supervises.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.cca.scmd import run_scmd
from repro.cca.script import parse_script
from repro.mpi.perfmodel import MachineModel, LOCALHOST
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.resilience import faults as _faults
from repro.util.logging import get_logger

_log = get_logger("resilience.runner")

#: cap on one backoff sleep, whatever the retry count
_MAX_BACKOFF = 30.0


@dataclass
class RunReport:
    """Outcome of one supervised run."""

    ok: bool
    attempts: int
    restarts: int
    nprocs: int
    results: list[Any] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    injected: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-serializable summary (per-rank results reduced to the
        scalar entries of dict results — arrays stay out of metrics)."""
        summaries = []
        for result in self.results:
            if isinstance(result, dict):
                summaries.append({
                    k: v for k, v in result.items()
                    if isinstance(v, (int, float, str, bool, type(None)))})
            else:
                summaries.append(repr(result))
        return {
            "ok": self.ok,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "nprocs": self.nprocs,
            "failures": self.failures,
            "injected_faults": self.injected,
            "results": summaries,
        }

    def to_metrics(self) -> list[dict]:
        """The report as schema-1 metric records (see
        :mod:`repro.obs.export`) so one consumer can read the runner's
        ``--metrics`` JSON and an obs registry snapshot alike."""
        from repro.obs.export import metric_record
        records = [
            metric_record("resilience.attempts", "counter", self.attempts),
            metric_record("resilience.restarts", "counter", self.restarts),
            metric_record("resilience.failures", "counter",
                          len(self.failures)),
            metric_record("resilience.ok", "gauge",
                          1.0 if self.ok else 0.0),
            metric_record("resilience.nprocs", "gauge", self.nprocs),
        ]
        for kind, count in sorted(self.injected.items()):
            records.append(metric_record(
                "resilience.injected_faults", "counter", count,
                labels={"kind": kind}))
        return records


@dataclass
class RunResult:
    """What one in-process supervised run produced.

    Wraps the supervision loop's :class:`RunReport` together with the
    per-rank ``go`` results and the schema-1 metrics envelope — callers
    (the :mod:`repro.serve` scheduler, the CLI's ``--metrics`` writer)
    get the final metrics dict directly instead of reading it back off
    disk.
    """

    report: RunReport

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def attempts(self) -> int:
        return self.report.attempts

    @property
    def restarts(self) -> int:
        return self.report.restarts

    @property
    def results(self) -> list[Any]:
        """Per-rank ``go`` results of the successful attempt (raw objects,
        arrays included — not the scalar-reduced ``to_json`` view)."""
        return self.report.results

    @property
    def failures(self) -> list[str]:
        return self.report.failures

    @property
    def injected(self) -> dict[str, int]:
        return self.report.injected

    def metrics(self) -> dict:
        """The final metrics document: the schema-1 envelope
        (:func:`repro.obs.export.wrap_metrics`) over the report's metric
        records, with the legacy report keys (``ok``/``restarts``/...)
        kept at top level for existing consumers.  This is exactly what
        the CLI's ``--metrics`` flag writes."""
        from repro.obs.export import wrap_metrics
        return {**self.report.to_json(),
                **wrap_metrics(self.report.to_metrics())}


def parse_fault_spec(spec: str) -> _faults.FaultPlan:
    """``key=value[,key=value...]`` over :class:`~repro.resilience.faults.FaultPlan` fields.

    Example: ``kill_rank=1,kill_step=3,seed=7``.
    """
    types = {f.name: f.type for f in dataclasses.fields(_faults.FaultPlan)}
    kwargs: dict[str, Any] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"bad fault spec item {item!r} "
                             f"(expected key=value)")
        key, value = item.split("=", 1)
        key = key.strip()
        if key not in types:
            raise ValueError(
                f"unknown fault field {key!r} (have: "
                f"{', '.join(sorted(types))})")
        conv = {"int": int, "float": float, "str": str}[types[key]]
        kwargs[key] = conv(value.strip())
    return _faults.FaultPlan(**kwargs)


def run_supervised(script: str, classes: Iterable | None = None,
                   nprocs: int = 1, retries: int = 3, backoff: float = 0.0,
                   machine: MachineModel = LOCALHOST,
                   fault: str | _faults.FaultPlan | None = None,
                   tsan: bool = False,
                   backend: str | None = None) -> RunResult:
    """The in-process supervised run: :func:`supervise` plus the arming
    ceremony the CLI used to own.

    ``classes`` defaults to the stock component registry
    (:func:`repro.analysis.wiring.default_classes`).  ``fault`` arms the
    deterministic fault injector for the duration of the run — either a
    :class:`~repro.resilience.faults.FaultPlan` or a spec string for
    :func:`parse_fault_spec`; ``tsan`` arms the runtime race sanitizer.
    Both are disarmed again before returning, whatever happened.
    ``backend`` selects the execution backend for every attempt (see
    :mod:`repro.exec`); under ``mp`` the fault injector's counters
    survive worker-process boundaries, so ``kill_max_fires`` caps the
    injected kill across supervised restarts exactly as on ``threads``.

    Returns a :class:`RunResult`; inspect ``.ok`` / ``.results`` /
    ``.metrics()``.
    """
    if classes is None:
        from repro.analysis.wiring import default_classes
        classes = default_classes()
    if isinstance(fault, str):
        fault = parse_fault_spec(fault) if fault.strip() else None
    if fault is not None:
        _faults.configure(fault)
    if tsan:
        from repro.mpi import sanitizer
        sanitizer.configure()
    try:
        # supervise() records injected-fault counts into the report while
        # the plan is still armed
        report = supervise(script, classes, nprocs=nprocs, retries=retries,
                           backoff=backoff, machine=machine,
                           backend=backend)
    finally:
        if fault is not None:
            _faults.deactivate()
        if tsan:
            from repro.mpi import sanitizer
            sanitizer.deactivate()
    return RunResult(report)


def with_resume(text: str) -> str:
    """Inject ``parameter <driver> resume 1`` ahead of every ``go``.

    The retry path: the same assembly script, with each driven instance
    told to restart from its latest valid checkpoint.
    """
    directives = parse_script(text)
    go_lines = [d.line_no for d in directives if d.verb == "go"]
    if not go_lines:
        return text
    targets = list(dict.fromkeys(
        d.args[0] for d in directives if d.verb == "go"))
    lines = text.splitlines()
    cut = min(go_lines) - 1
    inject = [f"parameter {t} resume 1" for t in targets]
    return "\n".join(lines[:cut] + inject + lines[cut:])


def supervise(script: str, classes: Iterable = (), nprocs: int = 1,
              retries: int = 3, backoff: float = 0.0,
              machine: MachineModel = LOCALHOST,
              backend: str | None = None) -> RunReport:
    """Run ``script`` under supervision; see the module docstring.

    ``retries`` counts *re*-runs: the script gets at most ``retries + 1``
    attempts.  ``backoff`` seconds are slept before retry n as
    ``backoff * 2**(n-1)``, capped at 30 s.  Returns a
    :class:`RunReport`; ``ok=False`` means every attempt failed.
    """
    parse_script(script)  # fail fast on syntax, not on attempt 1
    class_list = list(classes)
    report = RunReport(ok=False, attempts=0, restarts=0, nprocs=nprocs)
    for attempt in range(retries + 1):
        report.attempts = attempt + 1
        text = script
        if attempt > 0:
            report.restarts += 1
            if backoff > 0.0:
                time.sleep(min(backoff * 2 ** (attempt - 1), _MAX_BACKOFF))
            text = with_resume(script)
        t0 = time.perf_counter()
        try:
            results = run_scmd(nprocs, text, class_list, machine=machine,
                               backend=backend)
        except Exception as exc:  # a failed attempt, whatever the layer
            first_line = str(exc).splitlines()[0] if str(exc) else ""
            report.failures.append(f"{type(exc).__name__}: {first_line}")
            _log.warning("attempt %d/%d failed: %s: %s",
                         attempt + 1, retries + 1,
                         type(exc).__name__, first_line)
            if _obs.on:
                _obs.complete("resilience.attempt", "resilience", t0,
                              attempt=attempt + 1, ok=False)
        else:
            report.ok = True
            report.results = results
            if _obs.on:
                _obs.complete("resilience.attempt", "resilience", t0,
                              attempt=attempt + 1, ok=True)
            break
    if _faults.on:
        report.injected = _faults.injected_counts()
    if _obs.on:
        reg = _obs_registry()
        reg.counter("resilience.runner_attempts").inc(report.attempts)
        reg.counter("resilience.runner_restarts").inc(report.restarts)
        reg.gauge("resilience.runner_ok").set(1 if report.ok else 0)
    return report
