"""Cross-rank aggregation reducers for SCMD runs.

The paper's Table 5 characterizes a parallel run by statistics over the
per-processor run times (mean / median / stdev — the "homogeneous
machine" check).  This module is that reduction grown into reusable
infrastructure: given any per-rank series (virtual clocks, busy times,
byte counts) it produces ``min / mean / max / p50 / p95`` plus the
**load-imbalance ratio** ``max / avg`` — the canonical SPMD imbalance
statistic (1.0 = perfectly balanced; FLASH and Cactus both report the
same number from their built-in monitors).

Wired in two places:

* :func:`repro.mpi.launcher.mpirun` teardown records every rank's final
  virtual clock (and the reduced summary) into the default metrics
  registry whenever tracing is enabled — so every traced SCMD run ships
  a per-rank breakdown for free;
* the Table 5 / Fig 8-9 scaling benches call :func:`rank_clock_summary`
  per case and publish the imbalance ratio next to the paper's numbers.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, get_registry

#: Gauge names the mpirun teardown hook records under.
RANK_CLOCK_METRIC = "mpi.rank_clock_seconds"
IMBALANCE_METRIC = "mpi.clock_imbalance"
CLOCK_MAX_METRIC = "mpi.clock_max_seconds"
CLOCK_MEAN_METRIC = "mpi.clock_mean_seconds"
CLOCK_P95_METRIC = "mpi.clock_p95_seconds"


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-th percentile (``0 <= q <= 100``) with linear
    interpolation between order statistics (numpy's default method) —
    the reducer used for p50/p95 in every cross-rank summary."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    q = min(max(float(q), 0.0), 100.0)
    pos = q / 100.0 * (len(data) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def imbalance(values: Sequence[float]) -> float:
    """Load-imbalance ratio ``max / avg`` (Table 5's statistic).

    1.0 means perfectly balanced; a run where one rank takes twice the
    average reports 2.0.  Degenerate inputs (empty, or an all-zero
    series) report 1.0 — "nothing measured" is not an imbalance.
    """
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 1.0
    return max(values) / mean


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Reduce a per-rank series to ``n / min / mean / max / p50 / p95 /
    imbalance`` (empty input raises — a summary of nothing is a bug)."""
    if not values:
        raise ValueError("summarize of an empty sequence")
    data = [float(v) for v in values]
    return {
        "n": float(len(data)),
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
        "p50": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "imbalance": imbalance(data),
    }


def rank_clock_summary(clocks: Sequence[float]) -> dict[str, Any]:
    """Per-rank virtual clocks + the reduced statistics, JSON-ready:
    ``{"per_rank": [...], "stats": {...}}``."""
    return {"per_rank": [float(c) for c in clocks],
            "stats": summarize(clocks)}


def record_rank_clocks(clocks: Sequence[float],
                       registry: MetricsRegistry | None = None
                       ) -> dict[str, Any]:
    """Record every rank's final clock and the reduced summary as gauges
    (``mpi.rank_clock_seconds{rank=r}``, ``mpi.clock_imbalance``, ...).

    Called from :func:`repro.mpi.launcher.mpirun` teardown while tracing
    is enabled; returns the :func:`rank_clock_summary` it recorded.
    """
    registry = registry if registry is not None else get_registry()
    summary = rank_clock_summary(clocks)
    for rank, clock in enumerate(summary["per_rank"]):
        registry.gauge(RANK_CLOCK_METRIC, rank=rank).set(clock)
    stats = summary["stats"]
    registry.gauge(IMBALANCE_METRIC).set(stats["imbalance"])
    registry.gauge(CLOCK_MAX_METRIC).set(stats["max"])
    registry.gauge(CLOCK_MEAN_METRIC).set(stats["mean"])
    registry.gauge(CLOCK_P95_METRIC).set(stats["p95"])
    return summary


def rank_trace_summary(events: Iterable[_trace.Event] | None = None
                       ) -> dict[int, dict[str, Any]]:
    """Per-rank roll-up of a trace: event count and busy seconds per
    category (complete spans only; rank-untagged events are skipped)."""
    if events is None:
        events = _trace.events()
    out: dict[int, dict[str, Any]] = {}
    for e in events:
        if e.rank is None:
            continue
        entry = out.setdefault(e.rank, {"events": 0, "busy_seconds": {}})
        entry["events"] += 1
        if e.ph == "X":
            busy = entry["busy_seconds"]
            busy[e.cat] = busy.get(e.cat, 0.0) + e.dur / 1e6
    return out


def reduce_rank_traces(per_rank: Mapping[int, Mapping[str, Any]]
                       ) -> dict[str, dict[str, float]]:
    """Reduce :func:`rank_trace_summary` output across ranks: one
    :func:`summarize` block per span category (busy seconds) plus one
    for the per-rank event counts."""
    if not per_rank:
        return {}
    ranks = sorted(per_rank)
    cats = sorted({cat for entry in per_rank.values()
                   for cat in entry["busy_seconds"]})
    out: dict[str, dict[str, float]] = {
        "events": summarize([per_rank[r]["events"] for r in ranks]),
    }
    for cat in cats:
        out[f"busy.{cat}"] = summarize(
            [per_rank[r]["busy_seconds"].get(cat, 0.0) for r in ranks])
    return out


# -- critical path & wait attribution -----------------------------------------
#: mpi.<label> span names that are rendezvous collectives (every member
#: blocks until the last arrives) — the joints the critical path pivots
#: on and the places wait-time blame accrues.
COLLECTIVE_LABELS = frozenset(
    {"barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
     "scatter", "alltoall"})


def component_of(name: str, cat: str) -> str:
    """Attribution bucket for a span: port spans are
    ``Provider:port.method`` -> the providing component instance;
    anything else keeps its span name."""
    if cat == "port" and ":" in name:
        return name.split(":", 1)[0]
    return name


def _rank_spans(events: Iterable[_trace.Event]
                ) -> dict[int, list[_trace.Event]]:
    """Complete spans per rank, time-ordered (rank-untagged dropped)."""
    per_rank: dict[int, list[_trace.Event]] = {}
    for e in events:
        if e.ph == "X" and e.rank is not None:
            per_rank.setdefault(e.rank, []).append(e)
    for evs in per_rank.values():
        evs.sort(key=lambda e: (e.ts, -e.dur))
    return per_rank


def collective_groups(events: Iterable[_trace.Event]
                      ) -> list[dict[str, Any]]:
    """Align each rank's world-size collective spans into rendezvous
    groups.

    SPMD discipline means every rank executes the same world collectives
    in the same order, so the *i*-th world-size collective span on rank
    0 and the *i*-th on rank 3 are the same rendezvous — alignment by
    per-rank sequence index, no ids on the wire needed.  Spans from
    split sub-communicators (``args.size < world``) are excluded; only
    groups every rank completed are returned.

    Each group: ``{"index", "name", "entries": {rank: ts}, "spans":
    {rank: Event}}``.
    """
    per_rank = _rank_spans(events)
    nranks = len(per_rank)
    if nranks < 2:
        return []
    seqs: dict[int, list[_trace.Event]] = {}
    for rank, evs in per_rank.items():
        seqs[rank] = [
            e for e in evs
            if e.cat == "mpi" and e.name.startswith("mpi.")
            and e.name[4:] in COLLECTIVE_LABELS
            and (e.args or {}).get("size") == nranks
        ]
    depth = min(len(s) for s in seqs.values())
    groups: list[dict[str, Any]] = []
    for i in range(depth):
        spans = {rank: seqs[rank][i] for rank in sorted(seqs)}
        names = {e.name for e in spans.values()}
        if len(names) != 1:
            # alignment lost (a rank diverged) — stop rather than blame
            # the wrong collective
            break
        groups.append({
            "index": i,
            "name": names.pop(),
            "entries": {rank: e.ts for rank, e in spans.items()},
            "spans": spans,
        })
    return groups


def _blame_span(per_rank: Mapping[int, Sequence[_trace.Event]],
                rank: int, ts: float) -> str:
    """The innermost non-mpi span open on ``rank`` at ``ts`` (what the
    straggler was *doing* when everyone else was already waiting)."""
    best: _trace.Event | None = None
    for e in per_rank.get(rank, ()):
        if e.ts > ts:
            break
        if e.cat != "mpi" and e.ts <= ts <= e.ts + e.dur:
            if best is None or e.ts >= best.ts:
                best = e
    return component_of(best.name, best.cat) if best is not None \
        else "(untraced)"


def wait_attribution(events: Iterable[_trace.Event]) -> dict[str, Any]:
    """Per-collective wait-time blame for a merged multi-rank trace.

    For every world-size rendezvous: who arrived last, how long every
    other rank idled for them, and which component the straggler was
    executing — the "which component makes everyone wait" table Table 5
    flame runs are diagnosed with.  Durations in **seconds**.
    """
    events = list(events)
    per_rank = _rank_spans(events)
    groups = collective_groups(events)
    out_groups: list[dict[str, Any]] = []
    by_component: dict[str, dict[str, float]] = {}
    total_wait = 0.0
    for g in groups:
        entries = g["entries"]
        last_rank = max(entries, key=lambda r: entries[r])
        last_ts = entries[last_rank]
        waits = {rank: (last_ts - ts) / 1e6
                 for rank, ts in entries.items()}
        group_wait = sum(waits.values())
        blame = _blame_span(per_rank, last_rank, last_ts)
        total_wait += group_wait
        slot = by_component.setdefault(
            blame, {"wait_seconds": 0.0, "groups": 0.0})
        slot["wait_seconds"] += group_wait
        slot["groups"] += 1
        out_groups.append({
            "index": g["index"],
            "name": g["name"],
            "last_rank": last_rank,
            "entry_ts_us": dict(sorted(entries.items())),
            "waits_seconds": dict(sorted(waits.items())),
            "wait_seconds": group_wait,
            "blame": blame,
        })
    return {
        "nranks": len(per_rank),
        "collectives": len(out_groups),
        "total_wait_seconds": total_wait,
        "groups": out_groups,
        "by_component": dict(sorted(
            by_component.items(),
            key=lambda kv: kv[1]["wait_seconds"], reverse=True)),
    }


def _segment_busy(spans: Sequence[_trace.Event], t0: float,
                  t1: float) -> dict[str, float]:
    """Per-component *self* seconds inside ``[t0, t1]`` (µs bounds) for
    one rank's time-ordered span list; uncovered time is charged to
    ``(untraced)``."""
    out: dict[str, float] = {}
    # stack entries: [component, end_ts, remaining clipped self-time]
    stack: list[list] = []

    def pop_into(out: dict[str, float]) -> None:
        comp, _end, self_us = stack.pop()
        if self_us > 0.0:
            out[comp] = out.get(comp, 0.0) + self_us / 1e6

    covered = 0.0
    for e in spans:
        if e.ts + e.dur <= t0 or e.ts >= t1:
            continue
        clip = min(e.ts + e.dur, t1) - max(e.ts, t0)
        while stack and e.ts >= stack[-1][1]:
            pop_into(out)
        if stack:
            stack[-1][2] -= clip      # child time is not parent self-time
        else:
            covered += clip
        stack.append([component_of(e.name, e.cat), e.ts + e.dur, clip])
    while stack:
        pop_into(out)
    gap = (t1 - t0) - covered
    if gap > 0.0:
        out["(untraced)"] = out.get("(untraced)", 0.0) + gap / 1e6
    return dict(sorted(out.items(), key=lambda kv: kv[1], reverse=True))


def critical_path(events: Iterable[_trace.Event]) -> dict[str, Any]:
    """The cross-rank critical path of a merged multi-rank trace.

    Walks backward from the rank that finished last; every world-size
    rendezvous releases when its *last* member arrives, so at each
    collective the path pivots to that group's straggler — the chain of
    rank segments that actually bounded the run's length.  Each segment
    carries a per-component busy breakdown (:func:`_segment_busy`), so
    the answer reads "the run took this long because rank 2 spent 0.8 s
    in ChemistryKernel before the step-12 allreduce".  Durations in
    seconds; timestamps in µs on the shared session timeline.
    """
    events = list(events)
    per_rank = _rank_spans(events)
    if not per_rank:
        return {"nranks": 0, "segments": [], "by_component": {},
                "total_seconds": 0.0}
    groups = collective_groups(events)
    ends = {rank: max(e.ts + e.dur for e in evs)
            for rank, evs in per_rank.items()}
    starts = {rank: min(e.ts for e in evs)
              for rank, evs in per_rank.items()}
    cur_rank = max(ends, key=lambda r: ends[r])
    cur_ts = ends[cur_rank]
    segments: list[dict[str, Any]] = []
    for g in reversed(groups):
        entries = g["entries"]
        last_rank = max(entries, key=lambda r: entries[r])
        pivot_ts = entries[last_rank]
        if pivot_ts >= cur_ts:
            continue            # rendezvous released after our cursor
        seg_start = max(pivot_ts, starts.get(cur_rank, pivot_ts))
        segments.append({
            "rank": cur_rank,
            "t0_us": seg_start,
            "t1_us": cur_ts,
            "seconds": (cur_ts - seg_start) / 1e6,
            "via": f"{g['name']}[{g['index']}]",
            "busy": _segment_busy(per_rank[cur_rank], seg_start, cur_ts),
        })
        cur_rank, cur_ts = last_rank, pivot_ts
    seg_start = starts.get(cur_rank, cur_ts)
    if cur_ts > seg_start:
        segments.append({
            "rank": cur_rank,
            "t0_us": seg_start,
            "t1_us": cur_ts,
            "seconds": (cur_ts - seg_start) / 1e6,
            "via": "(start)",
            "busy": _segment_busy(per_rank[cur_rank], seg_start, cur_ts),
        })
    segments.reverse()
    by_component: dict[str, float] = {}
    for seg in segments:
        for comp, sec in seg["busy"].items():
            by_component[comp] = by_component.get(comp, 0.0) + sec
    t_first = min(starts.values())
    return {
        "nranks": len(per_rank),
        "end_rank": max(ends, key=lambda r: ends[r]),
        "total_seconds": (max(ends.values()) - t_first) / 1e6,
        "path_seconds": sum(s["seconds"] for s in segments),
        "segments": segments,
        "by_component": dict(sorted(
            by_component.items(), key=lambda kv: kv[1], reverse=True)),
    }


def format_wait_attribution(report: Mapping[str, Any]) -> str:
    """Text table for a :func:`wait_attribution` report."""
    lines = [
        f"{report['collectives']} world collectives across "
        f"{report['nranks']} ranks; total rank-wait "
        f"{report['total_wait_seconds']:.6f} s",
        "",
        f"{'blamed component':<40} {'groups':>7} {'wait [s]':>12}",
        "-" * 61,
    ]
    for comp, slot in report["by_component"].items():
        lines.append(f"{comp:<40} {int(slot['groups']):>7} "
                     f"{slot['wait_seconds']:>12.6f}")
    worst = sorted(report["groups"], key=lambda g: g["wait_seconds"],
                   reverse=True)[:5]
    if worst:
        lines += ["", "worst rendezvous:"]
        for g in worst:
            lines.append(
                f"  {g['name']}[{g['index']}]: rank {g['last_rank']} "
                f"last ({g['blame']}), peers idled "
                f"{g['wait_seconds']:.6f} s")
    return "\n".join(lines)


def format_critical_path(report: Mapping[str, Any]) -> str:
    """Text rendering of a :func:`critical_path` report."""
    lines = [
        f"critical path across {report['nranks']} ranks: "
        f"{report['path_seconds']:.6f} s of "
        f"{report['total_seconds']:.6f} s span "
        f"(ends on rank {report.get('end_rank')})",
        "",
    ]
    for seg in report["segments"]:
        lines.append(
            f"rank {seg['rank']}  {seg['seconds']:>10.6f} s  "
            f"via {seg['via']}")
        for comp, sec in list(seg["busy"].items())[:4]:
            lines.append(f"    {comp:<40} {sec:>10.6f} s")
    lines += ["", f"{'component (path self-time)':<40} {'[s]':>10}",
              "-" * 52]
    for comp, sec in report["by_component"].items():
        lines.append(f"{comp:<40} {sec:>10.6f}")
    return "\n".join(lines)


def format_rank_summary(summary: Mapping[str, Any],
                        label: str = "virtual clock [s]") -> str:
    """Text block for a :func:`rank_clock_summary` — the per-rank
    breakdown the scaling benches append to their reports."""
    per_rank = summary["per_rank"]
    stats = summary["stats"]
    lines = [f"per-rank {label}:"]
    for rank, value in enumerate(per_rank):
        lines.append(f"  rank {rank}: {value:.6g}")
    lines.append(
        f"  min {stats['min']:.6g}  mean {stats['mean']:.6g}  "
        f"max {stats['max']:.6g}  p50 {stats['p50']:.6g}  "
        f"p95 {stats['p95']:.6g}")
    lines.append(f"  load imbalance (max/avg): {stats['imbalance']:.4f}")
    return "\n".join(lines)
