"""Cross-rank aggregation reducers for SCMD runs.

The paper's Table 5 characterizes a parallel run by statistics over the
per-processor run times (mean / median / stdev — the "homogeneous
machine" check).  This module is that reduction grown into reusable
infrastructure: given any per-rank series (virtual clocks, busy times,
byte counts) it produces ``min / mean / max / p50 / p95`` plus the
**load-imbalance ratio** ``max / avg`` — the canonical SPMD imbalance
statistic (1.0 = perfectly balanced; FLASH and Cactus both report the
same number from their built-in monitors).

Wired in two places:

* :func:`repro.mpi.launcher.mpirun` teardown records every rank's final
  virtual clock (and the reduced summary) into the default metrics
  registry whenever tracing is enabled — so every traced SCMD run ships
  a per-rank breakdown for free;
* the Table 5 / Fig 8-9 scaling benches call :func:`rank_clock_summary`
  per case and publish the imbalance ratio next to the paper's numbers.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, get_registry

#: Gauge names the mpirun teardown hook records under.
RANK_CLOCK_METRIC = "mpi.rank_clock_seconds"
IMBALANCE_METRIC = "mpi.clock_imbalance"
CLOCK_MAX_METRIC = "mpi.clock_max_seconds"
CLOCK_MEAN_METRIC = "mpi.clock_mean_seconds"
CLOCK_P95_METRIC = "mpi.clock_p95_seconds"


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-th percentile (``0 <= q <= 100``) with linear
    interpolation between order statistics (numpy's default method) —
    the reducer used for p50/p95 in every cross-rank summary."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    q = min(max(float(q), 0.0), 100.0)
    pos = q / 100.0 * (len(data) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def imbalance(values: Sequence[float]) -> float:
    """Load-imbalance ratio ``max / avg`` (Table 5's statistic).

    1.0 means perfectly balanced; a run where one rank takes twice the
    average reports 2.0.  Degenerate inputs (empty, or an all-zero
    series) report 1.0 — "nothing measured" is not an imbalance.
    """
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 1.0
    return max(values) / mean


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Reduce a per-rank series to ``n / min / mean / max / p50 / p95 /
    imbalance`` (empty input raises — a summary of nothing is a bug)."""
    if not values:
        raise ValueError("summarize of an empty sequence")
    data = [float(v) for v in values]
    return {
        "n": float(len(data)),
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
        "p50": percentile(data, 50.0),
        "p95": percentile(data, 95.0),
        "imbalance": imbalance(data),
    }


def rank_clock_summary(clocks: Sequence[float]) -> dict[str, Any]:
    """Per-rank virtual clocks + the reduced statistics, JSON-ready:
    ``{"per_rank": [...], "stats": {...}}``."""
    return {"per_rank": [float(c) for c in clocks],
            "stats": summarize(clocks)}


def record_rank_clocks(clocks: Sequence[float],
                       registry: MetricsRegistry | None = None
                       ) -> dict[str, Any]:
    """Record every rank's final clock and the reduced summary as gauges
    (``mpi.rank_clock_seconds{rank=r}``, ``mpi.clock_imbalance``, ...).

    Called from :func:`repro.mpi.launcher.mpirun` teardown while tracing
    is enabled; returns the :func:`rank_clock_summary` it recorded.
    """
    registry = registry if registry is not None else get_registry()
    summary = rank_clock_summary(clocks)
    for rank, clock in enumerate(summary["per_rank"]):
        registry.gauge(RANK_CLOCK_METRIC, rank=rank).set(clock)
    stats = summary["stats"]
    registry.gauge(IMBALANCE_METRIC).set(stats["imbalance"])
    registry.gauge(CLOCK_MAX_METRIC).set(stats["max"])
    registry.gauge(CLOCK_MEAN_METRIC).set(stats["mean"])
    registry.gauge(CLOCK_P95_METRIC).set(stats["p95"])
    return summary


def rank_trace_summary(events: Iterable[_trace.Event] | None = None
                       ) -> dict[int, dict[str, Any]]:
    """Per-rank roll-up of a trace: event count and busy seconds per
    category (complete spans only; rank-untagged events are skipped)."""
    if events is None:
        events = _trace.events()
    out: dict[int, dict[str, Any]] = {}
    for e in events:
        if e.rank is None:
            continue
        entry = out.setdefault(e.rank, {"events": 0, "busy_seconds": {}})
        entry["events"] += 1
        if e.ph == "X":
            busy = entry["busy_seconds"]
            busy[e.cat] = busy.get(e.cat, 0.0) + e.dur / 1e6
    return out


def reduce_rank_traces(per_rank: Mapping[int, Mapping[str, Any]]
                       ) -> dict[str, dict[str, float]]:
    """Reduce :func:`rank_trace_summary` output across ranks: one
    :func:`summarize` block per span category (busy seconds) plus one
    for the per-rank event counts."""
    if not per_rank:
        return {}
    ranks = sorted(per_rank)
    cats = sorted({cat for entry in per_rank.values()
                   for cat in entry["busy_seconds"]})
    out: dict[str, dict[str, float]] = {
        "events": summarize([per_rank[r]["events"] for r in ranks]),
    }
    for cat in cats:
        out[f"busy.{cat}"] = summarize(
            [per_rank[r]["busy_seconds"].get(cat, 0.0) for r in ranks])
    return out


def format_rank_summary(summary: Mapping[str, Any],
                        label: str = "virtual clock [s]") -> str:
    """Text block for a :func:`rank_clock_summary` — the per-rank
    breakdown the scaling benches append to their reports."""
    per_rank = summary["per_rank"]
    stats = summary["stats"]
    lines = [f"per-rank {label}:"]
    for rank, value in enumerate(per_rank):
        lines.append(f"  rank {rank}: {value:.6g}")
    lines.append(
        f"  min {stats['min']:.6g}  mean {stats['mean']:.6g}  "
        f"max {stats['max']:.6g}  p50 {stats['p50']:.6g}  "
        f"p95 {stats['p95']:.6g}")
    lines.append(f"  load imbalance (max/avg): {stats['imbalance']:.4f}")
    return "\n".join(lines)
