"""Bench-trajectory regression gate: ``python -m repro.obs.regress``.

Reads every ``BENCH_<name>.json`` trajectory
(:mod:`repro.bench.trajectory`) in the target directory, compares each
bench's **latest** run against the **median of its history**, and exits
non-zero when any KPI regressed — the decision layer that turns the
benches' raw telemetry into a CI gate.

Noise discipline:

* history is filtered to runs whose ``fast`` fingerprint flag matches
  the latest run (fast-mode and full-scale numbers are different
  universes);
* when enough same-``host`` history exists it is preferred — cross-host
  deltas are machine differences, not regressions (cross-host fallback
  comparisons are labelled as such in the table);
* the baseline is the **median** of the history pool, so a single noisy
  historical run cannot move the threshold;
* a KPI regresses only when ``latest > median + tolerance * |median|``
  (default tolerance 50% — far above timer noise for the fast-mode
  KPIs, far below a real 2x slowdown; the ``|median|`` band keeps
  negative KPIs, e.g. signed physics quantities, gated symmetrically);
  improvements never fail;
* medians below ``--min-baseline`` (default 1e-4) are skipped: a number
  too small to time reliably cannot gate.

Exit codes: 0 clean (including "not enough history yet"), 1 regression
detected (``--strict`` additionally fails when no trajectories exist at
all), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
from dataclasses import dataclass
from typing import Sequence

DEFAULT_TOLERANCE = 0.50
DEFAULT_MIN_BASELINE = 1e-4
DEFAULT_MIN_HISTORY = 1

#: row statuses, in decreasing severity
REGRESSION = "REGRESSION"
OK = "ok"
SKIPPED = "skipped"     # baseline below --min-baseline
NEW = "new"             # KPI absent from history
NO_HISTORY = "no-history"


@dataclass
class Delta:
    """One KPI comparison."""

    bench: str
    metric: str
    baseline: float | None     # median of the history pool
    latest: float
    n_history: int
    status: str
    cross_host: bool = False

    @property
    def ratio(self) -> float | None:
        if self.baseline in (None, 0.0):
            return None
        return self.latest / self.baseline


def _match(run: dict, latest: dict, key: str) -> bool:
    return run.get("fingerprint", {}).get(key) == \
        latest.get("fingerprint", {}).get(key)


def compare_trajectory(doc: dict, tolerance: float = DEFAULT_TOLERANCE,
                       min_history: int = DEFAULT_MIN_HISTORY,
                       min_baseline: float = DEFAULT_MIN_BASELINE
                       ) -> list[Delta]:
    """Compare ``doc``'s latest run against its history; one
    :class:`Delta` per KPI of the latest run."""
    bench = doc.get("bench", "?")
    runs: Sequence[dict] = doc.get("runs", [])
    if not runs:
        return []
    latest = runs[-1]
    history = [r for r in runs[:-1] if _match(r, latest, "fast")]
    same_host = [r for r in history if _match(r, latest, "host")]
    cross_host = len(same_host) < min_history
    pool = history if cross_host else same_host
    deltas: list[Delta] = []
    for metric, value in sorted(latest.get("metrics", {}).items()):
        values = [r["metrics"][metric] for r in pool
                  if metric in r.get("metrics", {})]
        if len(pool) < min_history:
            deltas.append(Delta(bench, metric, None, value, len(pool),
                                NO_HISTORY, cross_host))
            continue
        if not values:
            deltas.append(Delta(bench, metric, None, value, 0, NEW,
                                cross_host))
            continue
        baseline = statistics.median(values)
        if abs(baseline) < min_baseline:
            status = SKIPPED
        elif value > baseline + tolerance * abs(baseline):
            status = REGRESSION
        else:
            status = OK
        deltas.append(Delta(bench, metric, baseline, value, len(values),
                            status, cross_host))
    return deltas


def format_deltas(deltas: Sequence[Delta]) -> str:
    """The delta table — what the CI log shows when the gate trips."""
    headers = ["bench", "metric", "baseline", "latest", "ratio", "hist",
               "status"]
    rows: list[list[str]] = []
    for d in deltas:
        rows.append([
            d.bench,
            d.metric,
            "-" if d.baseline is None else f"{d.baseline:.6g}",
            f"{d.latest:.6g}",
            "-" if d.ratio is None else f"{d.ratio:.2f}x",
            f"{d.n_history}{'*' if d.cross_host else ''}",
            d.status,
        ])
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if any(d.cross_host for d in deltas):
        lines.append("(* cross-host history: no same-host baseline "
                     "available)")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare the latest bench runs against their "
                    "BENCH_<name>.json trajectories and fail on "
                    "performance regressions.")
    parser.add_argument("benches", nargs="*",
                        help="bench names to gate (default: every "
                             "BENCH_*.json in the directory)")
    parser.add_argument("--dir", default="",
                        help="trajectory directory (default: "
                             "REPRO_TRAJECTORY_DIR or the cwd)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional increase over the "
                             "history median (default: %(default)s)")
    parser.add_argument("--min-history", type=int,
                        default=DEFAULT_MIN_HISTORY,
                        help="history runs required before gating "
                             "(default: %(default)s)")
    parser.add_argument("--min-baseline", type=float,
                        default=DEFAULT_MIN_BASELINE,
                        help="ignore KPIs whose baseline median is "
                             "below this (default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when no trajectory files are "
                             "found at all")
    parser.add_argument("--quiet", action="store_true",
                        help="print only regressed rows and the verdict")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from repro.bench import trajectory

    args = build_parser().parse_args(argv)
    directory = args.dir or trajectory.trajectory_dir()
    if args.benches:
        paths = [trajectory.trajectory_path(b, directory)
                 for b in args.benches]
        missing = [p for p in paths if not os.path.exists(p)]
        if missing:
            for p in missing:
                print(f"error: no trajectory at {p}", file=sys.stderr)
            return 2
    else:
        paths = trajectory.discover(directory)
    if not paths:
        print(f"no BENCH_*.json trajectories under {directory}")
        return 1 if args.strict else 0

    all_deltas: list[Delta] = []
    unreadable: list[str] = []
    for path in paths:
        doc = trajectory.load_trajectory(path)
        if doc is None:
            unreadable.append(path)
            continue
        all_deltas.extend(compare_trajectory(
            doc, tolerance=args.tolerance, min_history=args.min_history,
            min_baseline=args.min_baseline))

    regressed = [d for d in all_deltas if d.status == REGRESSION]
    shown = regressed if args.quiet else all_deltas
    if shown:
        print(format_deltas(shown))
    for path in unreadable:
        print(f"warning: unreadable trajectory {path}", file=sys.stderr)
    gated = [d for d in all_deltas if d.baseline is not None]
    print(f"\n{len(paths)} trajectory file(s), {len(all_deltas)} KPI(s), "
          f"{len(gated)} gated, {len(regressed)} regression(s) "
          f"(tolerance {args.tolerance * 100:.0f}%)")
    if regressed:
        print("PERFORMANCE REGRESSION DETECTED", file=sys.stderr)
        return 1
    if args.strict and unreadable:
        return 1
    print("performance gate: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
