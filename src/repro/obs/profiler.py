"""Flight-recorder sampling profiler.

The tracer (:mod:`repro.obs.trace`) records what instrumented layers
*chose* to report; this module answers the complementary question —
"where is the time actually going, right now?" — the way TAU's sampling
mode (the paper's §6 tooling) or py-spy would: a background thread
periodically snapshots

* every thread's **live span stack** (maintained by the tracer while
  tracing is on — component/port/integrator attribution for free), and
* every thread's **Python frame stack** (``sys._current_frames()``),

into a bounded ring buffer (a flight recorder: always-on capable, memory
use capped, oldest samples evicted first).  Exports:

* :meth:`SamplingProfiler.folded` — folded-stack text, one
  ``frame;frame;frame count`` line per distinct stack, ready for any
  flamegraph renderer (span names are sanitized at creation time so
  ``;`` never appears inside a frame);
* :meth:`SamplingProfiler.component_table` /
  :meth:`SamplingProfiler.report` — per-component self/cumulative
  sampled seconds, the TAU-profile view derived from samples instead of
  instrumentation.

Cost discipline: **off by default**; when off there is no sampler thread
and the only residual cost anywhere is the tracer's usual flag check.
When on, the sampled threads pay nothing directly — the sampler does all
the walking on its own thread (GIL acquisition is the only interference,
measured single-digit-percent by ``benchmarks/bench_profiler_overhead``
at the default 25 ms interval).

Enable per-process with ``REPRO_PROFILE=1`` (interval:
``REPRO_PROFILE_INTERVAL`` seconds; folded output:
``REPRO_PROFILE_PATH``, default ``profile.folded``) or in code::

    from repro.obs import profiler

    with profiler.profiling(path="profile.folded") as prof:
        run_reaction_diffusion(...)
    print(prof.report())
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterable, NamedTuple

from repro.obs import trace as _trace

#: Master switch mirror (True while a module-level sampler is running).
on: bool = False

DEFAULT_INTERVAL = 0.025      #: seconds between snapshots (40 Hz keeps
#: the GIL-handoff tax on C-extension-heavy workloads well under 5%)
DEFAULT_CAPACITY = 120_000    #: ring-buffer sample cap (~50 min at 25 ms)
MAX_STACK_DEPTH = 64          #: Python frames kept per sample (leafmost)


class Sample(NamedTuple):
    """One flight-recorder snapshot of one thread."""

    ts: float                      # perf_counter at snapshot time
    thread: str                    # sampled thread's name
    rank: int | None               # SCMD rank, when the thread has spans
    spans: tuple[tuple[str, str], ...]   # live (name, cat), root first
    frames: tuple[str, ...]        # python frames, root first


def _frame_label(frame) -> str:
    """``module.qualname`` for one Python frame, flamegraph-safe."""
    code = frame.f_code
    mod = os.path.basename(code.co_filename)
    if mod.endswith(".py"):
        mod = mod[:-3]
    qual = getattr(code, "co_qualname", code.co_name)
    return _trace.sanitize(f"{mod}.{qual}")


def _component_of(name: str, cat: str) -> str:
    """Attribution bucket for a span: port spans are
    ``Provider:port.method`` -> the providing component instance;
    anything else (integrator, samr, mpi spans) keeps its span name."""
    if cat == "port" and ":" in name:
        return name.split(":", 1)[0]
    return name


class SamplingProfiler:
    """Background-thread sampler with a bounded ring buffer."""

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 max_depth: int = MAX_STACK_DEPTH) -> None:
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.max_depth = int(max_depth)
        self._ring: deque[Sample] = deque(maxlen=self.capacity)
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0            # sampling rounds completed
        self.samples_taken = 0    # thread snapshots recorded (evictions included)

    # -- lifecycle --------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Spawn the sampler thread (idempotent)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop the sampler; collected samples stay readable."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)
            self._thread = None
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample_once()

    # -- collection -------------------------------------------------------
    def _sample_once(self) -> None:
        """One sampling round: snapshot every thread except our own."""
        now = time.perf_counter()
        span_stacks = {
            ident: (name, rank, frames)
            for ident, name, rank, frames in _trace.active_stacks()
        }
        me = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        for ident, frame in sys._current_frames().items():
            if ident == me:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            entry = span_stacks.get(ident)
            if entry is not None:
                thread_name, rank, spans = entry
            else:
                thread_name, rank, spans = names.get(ident, str(ident)), \
                    None, ()
            self._ring.append(Sample(now, thread_name, rank, spans,
                                     tuple(stack)))
            self.samples_taken += 1
        self.ticks += 1

    def samples(self) -> list[Sample]:
        """The ring buffer's current contents, oldest first."""
        return list(self._ring)

    def absorb(self, shipped: Iterable[Sample | tuple]) -> int:
        """Fold samples shipped from another process into the ring.

        The parent-side half of ``mp``-backend profile shipping: worker
        ranks sample themselves (the fork kills the inherited sampler
        thread, so each worker restarts its own) and ship their rings
        home at teardown, rank-tagged.  Returns the number absorbed.
        """
        n = 0
        for s in shipped:
            if not isinstance(s, Sample):
                s = Sample(*s)
            self._ring.append(s)
            self.samples_taken += 1
            n += 1
        return n

    def clear(self) -> None:
        self._ring.clear()

    # -- exports ----------------------------------------------------------
    def folded(self, kind: str = "mixed",
               samples: Iterable[Sample] | None = None) -> str:
        """Folded-stack flamegraph text (``a;b;c count`` lines).

        ``kind`` selects the stack source per sample:

        * ``"spans"``  — tracer span stacks only (samples with no open
          span fold under ``(no span)``);
        * ``"frames"`` — raw Python frame stacks;
        * ``"mixed"``  — span stack as the attribution prefix with the
          Python frames appended below it (the default: flame cells read
          "inside component X's port method, in this function").

        Every stack is prefixed with its rank (``rank 3``) when the
        sample carries one, giving per-rank flame columns for SCMD runs.
        """
        if kind not in ("spans", "frames", "mixed"):
            raise ValueError(f"unknown folded kind {kind!r}")
        counts: dict[tuple[str, ...], int] = {}
        for s in (self.samples() if samples is None else samples):
            span_names = tuple(name for name, _cat in s.spans)
            if kind == "spans":
                stack = span_names or ("(no span)",)
            elif kind == "frames":
                stack = s.frames
            else:
                stack = span_names + s.frames
            if s.rank is not None:
                stack = (f"rank_{s.rank}",) + stack
            if stack:
                counts[stack] = counts.get(stack, 0) + 1
        lines = [f"{';'.join(stack)} {n}"
                 for stack, n in sorted(counts.items())]
        return "\n".join(lines)

    def export_folded(self, path: str, kind: str = "mixed") -> str:
        """Write :meth:`folded` output to ``path``; returns the path."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            text = self.folded(kind)
            fh.write(text + ("\n" if text else ""))
        return path

    def component_table(self) -> dict[str, dict[str, float]]:
        """Per-component sampled self/cumulative seconds.

        Each sample charges ``interval`` seconds of *self* time to its
        innermost span's component and ``interval`` of *cumulative* time
        to every distinct component on the stack — the classic
        sampled-profile estimate (unbiased as the sample count grows).
        Samples with no open span are aggregated under ``(no span)``.
        """
        dt = self.interval
        out: dict[str, dict[str, float]] = {}

        def entry(comp: str) -> dict[str, float]:
            return out.setdefault(
                comp, {"self_seconds": 0.0, "cum_seconds": 0.0,
                       "samples": 0.0})

        for s in self.samples():
            if not s.spans:
                e = entry("(no span)")
                e["self_seconds"] += dt
                e["cum_seconds"] += dt
                e["samples"] += 1
                continue
            comps = [_component_of(name, cat) for name, cat in s.spans]
            leaf = entry(comps[-1])
            leaf["self_seconds"] += dt
            leaf["samples"] += 1
            for comp in dict.fromkeys(comps):   # distinct, order kept
                entry(comp)["cum_seconds"] += dt
        return out

    def report(self) -> str:
        """Text table of :meth:`component_table`, most self-time first."""
        table = self.component_table()
        total_self = sum(e["self_seconds"] for e in table.values())
        lines = [
            f"{'component / span':<40} {'samples':>8} "
            f"{'self [s]':>10} {'cum [s]':>10} {'self %':>7}",
            "-" * 80,
        ]
        for comp, e in sorted(table.items(),
                              key=lambda kv: kv[1]["self_seconds"],
                              reverse=True):
            pct = 100.0 * e["self_seconds"] / total_self if total_self \
                else 0.0
            lines.append(
                f"{comp:<40} {int(e['samples']):>8} "
                f"{e['self_seconds']:>10.4f} {e['cum_seconds']:>10.4f} "
                f"{pct:>6.1f}%")
        lines.append("-" * 80)
        lines.append(
            f"{self.ticks} sampling rounds, {self.samples_taken} samples, "
            f"interval {self.interval * 1e3:.1f} ms, "
            f"ring {len(self._ring)}/{self.capacity}")
        return "\n".join(lines)


# -- module-level flight recorder ---------------------------------------------
_profiler: SamplingProfiler | None = None
_lock = threading.Lock()


def get() -> SamplingProfiler | None:
    """The module-level sampler, if one was ever started."""
    return _profiler


def start(interval: float | None = None,
          capacity: int | None = None) -> SamplingProfiler:
    """Start (or restart) the module-level sampler."""
    global _profiler, on
    with _lock:
        if _profiler is not None:
            _profiler.stop()
        _profiler = SamplingProfiler(
            interval=DEFAULT_INTERVAL if interval is None else interval,
            capacity=DEFAULT_CAPACITY if capacity is None else capacity)
        _profiler.start()
        on = True
        return _profiler


def stop() -> SamplingProfiler | None:
    """Stop the module-level sampler; its samples stay readable."""
    global on
    with _lock:
        if _profiler is not None:
            _profiler.stop()
        on = False
        return _profiler


@contextmanager
def profiling(interval: float | None = None,
              capacity: int | None = None,
              path: str | None = None, kind: str = "mixed"):
    """Sample for the duration of the block; optionally export the
    folded stacks to ``path`` on exit.  Yields the profiler."""
    prof = start(interval=interval, capacity=capacity)
    try:
        yield prof
    finally:
        stop()
        if path is not None:
            prof.export_folded(path, kind=kind)


def _activate_from_env() -> None:
    """``REPRO_PROFILE=1`` arms the flight recorder for the whole process
    and registers an at-exit folded-stack export — the same zero-code
    discipline as ``REPRO_TRACE``."""
    flag = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return
    interval = float(os.environ.get("REPRO_PROFILE_INTERVAL",
                                    str(DEFAULT_INTERVAL)))
    path = os.environ.get("REPRO_PROFILE_PATH", "profile.folded")

    def _export(prof: SamplingProfiler = start(interval=interval)) -> None:
        stop()
        prof.export_folded(path)

    atexit.register(_export)


_activate_from_env()
