"""Exporters: Chrome/Perfetto ``trace_event`` JSON and flat metrics JSON.

The trace export follows the Trace Event Format (the JSON Perfetto and
``chrome://tracing`` load directly): one ``pid`` for the process, one
``tid`` *per SCMD rank* (rank-untagged threads get their own tracks after
the rank block), ``"X"`` complete events with microsecond ``ts``/``dur``,
and ``"M"`` metadata records naming every track.

The metrics export is a flat list of ``{name, type, labels, ...}``
records under a ``schema`` version field, the machine-readable companion
of the bench text tables.

**Shared metrics schema (version 1).**  Every metrics JSON this repo
emits — :func:`export_metrics` snapshots of a
:class:`~repro.obs.metrics.MetricsRegistry` *and* the resilience
runner's ``--metrics`` report (:mod:`repro.resilience.__main__`) — is an
envelope one consumer can read::

    {"schema": 1, "metrics": [<record>, ...], ...producer extras...}

where every record carries at least::

    {"name": str, "type": "counter" | "gauge" | "histogram",
     "labels": {str: str}, ...kind-specific value fields...}

Counters and gauges add ``"value"``; histograms add ``"count"``,
``"sum"``, ``"min"``, ``"max"``, ``"mean"``, ``"p50"``, ``"p95"`` and
``"buckets"``.  Producers that do not own a registry build records with
:func:`metric_record` and wrap them with :func:`wrap_metrics`; extra
top-level keys (the resilience runner keeps its legacy report fields
there) are allowed and ignored by schema-driven consumers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, get_registry

METRICS_SCHEMA = 1

#: tid offset for threads that carry no SCMD rank tag (serial runs, the
#: main thread); keeps them clear of any plausible rank count.
_UNRANKED_TID0 = 10_000


def _json_safe(obj: Any) -> Any:
    """Fallback serializer for numpy scalars and other stragglers."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


def chrome_trace_events(
        events: Sequence[_trace.Event] | None = None) -> list[dict]:
    """Convert tracer events into Trace Event Format records."""
    if events is None:
        events = _trace.events()

    # Track assignment: rank n -> tid n; unranked threads -> stable tids
    # past _UNRANKED_TID0, in order of first appearance.
    unranked: dict[str, int] = {}
    tracks: dict[int, str] = {}

    def tid_of(event: _trace.Event) -> int:
        if event.rank is not None:
            tracks.setdefault(event.rank, f"rank {event.rank}")
            return event.rank
        tid = unranked.get(event.thread)
        if tid is None:
            tid = unranked[event.thread] = _UNRANKED_TID0 + len(unranked)
            tracks[tid] = event.thread
        return tid

    records: list[dict] = []
    for e in events:
        rec: dict[str, Any] = {
            "ph": e.ph,
            "name": e.name,
            "cat": e.cat,
            "ts": e.ts,
            "pid": 1,
            "tid": tid_of(e),
        }
        if e.ph == "X":
            rec["dur"] = e.dur
        else:  # instants are thread-scoped markers
            rec["s"] = "t"
        if e.args:
            rec["args"] = e.args
        records.append(rec)

    meta: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": "repro"},
    }]
    for tid, name in sorted(tracks.items()):
        meta.append({"ph": "M", "name": "thread_name", "pid": 1,
                     "tid": tid, "args": {"name": name}})
        meta.append({"ph": "M", "name": "thread_sort_index", "pid": 1,
                     "tid": tid, "args": {"sort_index": tid}})
    return meta + records


def export_chrome_trace(path: str,
                        events: Sequence[_trace.Event] | None = None) -> str:
    """Write the collected trace as Chrome/Perfetto JSON; returns ``path``."""
    payload = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
    }
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, default=_json_safe)
    return path


def load_chrome_trace(path: str) -> list[_trace.Event]:
    """Read a Chrome/Perfetto trace written by :func:`export_chrome_trace`
    back into tracer :class:`~repro.obs.trace.Event` tuples.

    The inverse the ``python -m repro.obs`` CLI analyzes with: rank
    attribution is recovered from the tid convention (rank n -> tid n;
    tids past the unranked offset carry no rank), thread names from the
    ``M`` metadata records.  Only ``X``/``i`` records are returned,
    time-sorted.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    records = payload["traceEvents"] if isinstance(payload, dict) \
        else payload
    names: dict[int, str] = {}
    for rec in records:
        if rec.get("ph") == "M" and rec.get("name") == "thread_name":
            names[int(rec["tid"])] = rec.get("args", {}).get(
                "name", str(rec["tid"]))
    events: list[_trace.Event] = []
    for rec in records:
        ph = rec.get("ph")
        if ph not in ("X", "i"):
            continue
        tid = int(rec.get("tid", 0))
        rank = tid if tid < _UNRANKED_TID0 else None
        events.append(_trace.Event(
            ph, rec.get("name", ""), rec.get("cat", ""),
            float(rec.get("ts", 0.0)), float(rec.get("dur", 0.0)),
            rank, names.get(tid, str(tid)), rec.get("args")))
    events.sort(key=lambda e: e.ts)
    return events


def metrics_payload(registry: MetricsRegistry | None = None, *,
                    prefix: str | None = None,
                    extra: Sequence[dict] | None = None) -> dict:
    """JSON-ready snapshot of a registry (the default one if omitted).

    ``prefix`` keeps only records whose name starts with it (a subsystem
    view of the shared registry, e.g. ``"serve."``); ``extra`` appends
    pre-built :func:`metric_record` records to the envelope.
    """
    registry = registry if registry is not None else get_registry()
    records = registry.snapshot()
    if prefix is not None:
        records = [r for r in records if r["name"].startswith(prefix)]
    if extra:
        records = records + list(extra)
    return {"schema": METRICS_SCHEMA, "metrics": records}


def metric_record(name: str, kind: str, value: float | None = None,
                  labels: dict[str, Any] | None = None,
                  **fields: Any) -> dict:
    """One schema-1 metric record (see the module docstring) for
    producers that do not own a :class:`MetricsRegistry` — e.g. the
    resilience runner's report."""
    record: dict[str, Any] = {
        "name": name,
        "type": kind,
        "labels": {k: str(v) for k, v in (labels or {}).items()},
    }
    if value is not None:
        record["value"] = float(value)
    record.update(fields)
    return record


def wrap_metrics(records: Sequence[dict], **extra: Any) -> dict:
    """Wrap pre-built records in the schema-1 envelope (plus any
    producer-specific top-level extras)."""
    return {"schema": METRICS_SCHEMA, "metrics": list(records), **extra}


def _ensure_parent(path: str) -> None:
    """Create the target directory so an at-exit export (where a
    traceback would silently cost the whole run's trace) cannot fail on
    a missing path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def export_metrics(path: str,
                   registry: MetricsRegistry | None = None, *,
                   prefix: str | None = None,
                   extra: Sequence[dict] | None = None) -> str:
    """Write a registry snapshot as flat JSON; returns ``path``."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_payload(registry, prefix=prefix, extra=extra),
                  fh, indent=2, sort_keys=True, default=_json_safe)
    return path
