"""``repro.obs`` — unified tracing, metrics, and timeline export.

The paper's future-work item (§6) is TAU-based characterization of "the
performance characteristics of individual components and their
assemblies"; this subsystem is that capability grown into cross-layer
infrastructure.  Three pieces:

* :mod:`repro.obs.trace` — a structured tracer (spans + instant events,
  per-thread buffers, SCMD-rank attribution, wall *and* virtual time);
* :mod:`repro.obs.metrics` — a labelled metrics registry (counters,
  gauges, histograms with p50/p95) that also backs
  :mod:`repro.cca.profiling`;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON with
  one track per rank, plus a flat metrics JSON (the shared schema-1
  envelope every metrics producer in the repo emits);
* :mod:`repro.obs.profiler` — a flight-recorder sampling profiler
  (``REPRO_PROFILE=1``): span-stack + Python-frame snapshots into a
  bounded ring, folded-stack flamegraph export;
* :mod:`repro.obs.aggregate` — cross-rank reducers (min/mean/max/
  p50/p95 and the Table 5 max/avg load-imbalance ratio), recorded
  automatically at ``mpirun`` teardown for traced runs;
* :mod:`repro.obs.regress` — the bench-trajectory regression gate
  (``python -m repro.obs.regress``) over the repo-root
  ``BENCH_<name>.json`` trajectories that every bench run appends to.

Instrumentation hooks live in the layers themselves (CCA port calls, MPI
sends/recvs/collectives, SAMR regrid/ghost-exchange/load-balance,
integrator steps) and are guarded by a single flag check, so the
disabled cost is negligible (verified by the Table 4 overhead bench).

Usage — no application changes needed::

    import repro.obs as obs

    with obs.tracing(path="trace.json", metrics_path="metrics.json"):
        run_reaction_diffusion(...)

or, wrapping an unmodified entry point::

    REPRO_TRACE=1 REPRO_TRACE_PATH=trace.json \\
        python examples/reaction_diffusion_flame.py

Open the JSON at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager

from repro.obs import aggregate, profiler, trace
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    export_metrics,
    load_chrome_trace,
    metric_record,
    metrics_payload,
    wrap_metrics,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.trace import (
    Event,
    NULL_SPAN,
    Span,
    absorb,
    complete,
    context,
    current_context,
    drain_events,
    enabled,
    events,
    instant,
    span,
)
from repro.util.timing import Stopwatch

__all__ = [
    "trace", "tracing", "enabled", "span", "complete", "instant", "events",
    "context", "current_context", "drain_events", "absorb",
    "Event", "Span", "NULL_SPAN",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "chrome_trace_events", "export_chrome_trace", "export_metrics",
    "load_chrome_trace",
    "metrics_payload", "metric_record", "wrap_metrics",
    "aggregate", "profiler", "SamplingProfiler",
]


@contextmanager
def tracing(path: str | None = None, metrics_path: str | None = None,
            reset_metrics: bool = True):
    """Enable tracing for the duration of the block.

    On exit tracing is disabled and, when ``path`` / ``metrics_path`` are
    given, the Chrome trace and the metrics snapshot are written there.
    Yields the :mod:`repro.obs.trace` module so callers can emit their
    own spans.  ``reset_metrics`` starts the block from an empty default
    registry so the metrics JSON describes exactly this run.
    """
    if reset_metrics:
        get_registry().reset()
    sw = Stopwatch()
    trace.start(clear=True)
    try:
        with sw:
            yield trace
    finally:
        trace.stop()
        get_registry().gauge("obs.session_wall_seconds").set(sw.elapsed)
        if path is not None:
            export_chrome_trace(path)
        if metrics_path is not None:
            export_metrics(metrics_path)


def _activate_from_env() -> None:
    """``REPRO_TRACE=1`` turns tracing on for the whole process and
    registers an at-exit export — zero application-code changes."""
    flag = os.environ.get("REPRO_TRACE", "").strip().lower()
    if flag in ("", "0", "false", "no", "off"):
        return
    trace.start()
    trace_path = os.environ.get("REPRO_TRACE_PATH", "trace.json")
    metrics_path = os.environ.get("REPRO_METRICS_PATH")

    def _export() -> None:
        trace.stop()
        export_chrome_trace(trace_path)
        if metrics_path:
            export_metrics(metrics_path)

    atexit.register(_export)


_activate_from_env()
