"""Low-overhead structured tracer: spans + instant events.

Design constraints (ISSUE 2 / paper §6 future-work item on TAU):

* **Off by default, near-zero disabled cost.**  Hot call sites guard with
  ``if trace.on:`` — a single module-attribute read — and the :func:`span`
  helper returns a shared no-op singleton when tracing is off, so the
  disabled path never allocates a span object.
* **Safe under SCMD rank-threads.**  Events are appended to *per-thread*
  buffers (registered once per thread per session under a lock), so
  concurrent rank-threads never interleave writes to a shared list.
  Every event records the emitting thread's SCMD rank from
  :mod:`repro.util.logging`, which :func:`repro.mpi.launcher.mpirun` tags
  automatically — that is what gives the Chrome/Perfetto export one track
  per rank.
* **Two clocks.**  Spans carry wall time (``time.perf_counter`` relative
  to the session start, exported in microseconds); layers that know the
  rank's *virtual* clock (:mod:`repro.mpi.comm`) attach it as a ``vt``
  span argument.

The module is deliberately framework-agnostic: it knows nothing about
components, communicators, or meshes.  Those layers call in.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, NamedTuple

from repro.util.logging import get_rank

#: Master switch.  Hot paths read this module attribute directly
#: (``if trace.on:``); everything else should go through :func:`enabled`.
on: bool = False

_lock = threading.Lock()
#: (thread name, event list) per thread that emitted in this session.
_buffers: list[tuple[str, list]] = []
#: Bumped on every :func:`start`; stale thread-local buffers from a
#: previous session are abandoned instead of reused.
_generation = 0
#: ``perf_counter`` origin of the current session (event timestamps are
#: relative to it).
_t0 = 0.0

_tls = threading.local()

#: Characters the folded-stack flamegraph format reserves (``;`` is the
#: frame separator, whitespace separates the stack from its count), mapped
#: to safe replacements at span-creation time so every span name is a
#: legal flamegraph frame.
_SANITIZE = str.maketrans({";": ":", " ": "_", "\t": "_", "\n": "_",
                           "\r": "_"})


def sanitize(name: str) -> str:
    """Replace folded-stack separators (``;`` and whitespace) in a span
    name.  Fast path: clean names (the overwhelming majority) are
    returned unchanged without allocating."""
    if ";" in name or " " in name or "\t" in name or "\n" in name \
            or "\r" in name:
        return name.translate(_SANITIZE)
    return name


class Event(NamedTuple):
    """One recorded trace event (internal form, pre-export)."""

    ph: str                 # "X" complete span | "i" instant
    name: str
    cat: str
    ts: float               # microseconds since session start
    dur: float              # microseconds ("X" only; 0.0 for instants)
    rank: int | None        # SCMD rank of the emitting thread, if tagged
    thread: str             # emitting thread name
    args: dict[str, Any] | None


def _buf() -> list:
    """The calling thread's event buffer for the current session."""
    if getattr(_tls, "gen", -1) != _generation:
        _tls.buf = []
        _tls.gen = _generation
        with _lock:
            _buffers.append((threading.current_thread().name, _tls.buf))
    return _tls.buf


# -- live span stacks (sampled by repro.obs.profiler) -------------------------
class _ActiveStack:
    """One thread's currently-open spans, innermost last.

    Maintained by :class:`Span` enter/exit while tracing is on; the
    sampling profiler reads it from its own thread (list append/pop and
    slice-copy are atomic under the GIL, so no per-span locking)."""

    __slots__ = ("thread_name", "rank", "frames")

    def __init__(self, thread_name: str) -> None:
        self.thread_name = thread_name
        self.rank: int | None = None
        self.frames: list[tuple[str, str]] = []   # (name, cat), root first


#: thread ident -> that thread's live span stack (threads register on
#: first span; a reused ident simply overwrites the dead thread's entry).
_active: dict[int, _ActiveStack] = {}


def _stack_of() -> _ActiveStack:
    st = getattr(_tls, "stack", None)
    if st is None:
        st = _tls.stack = _ActiveStack(threading.current_thread().name)
        with _lock:
            _active[threading.get_ident()] = st
    return st


def active_stacks() -> list[tuple[int, str, int | None, tuple]]:
    """Snapshot of every registered thread's live span stack:
    ``(thread ident, thread name, rank, ((name, cat), ...))`` tuples,
    root span first.  Safe to call from any thread."""
    with _lock:
        items = list(_active.items())
    return [(ident, st.thread_name, st.rank, tuple(st.frames))
            for ident, st in items]


# -- session control ----------------------------------------------------------
def start(clear: bool = True) -> None:
    """Enable tracing (optionally clearing previously collected events)."""
    global on, _generation, _t0
    if clear:
        with _lock:
            _buffers.clear()
        _generation += 1
        _t0 = time.perf_counter()
    on = True


def stop() -> None:
    """Disable tracing; collected events stay readable via :func:`events`."""
    global on
    on = False


def enabled() -> bool:
    return on


def clear() -> None:
    """Drop all collected events (keeps the enabled/disabled state)."""
    global _generation, _t0
    with _lock:
        _buffers.clear()
    _generation += 1
    _t0 = time.perf_counter()


def events() -> list[Event]:
    """All events of the current session, merged across threads and
    sorted by timestamp."""
    with _lock:
        merged = [e for _name, buf in _buffers for e in buf]
    merged.sort(key=lambda e: e.ts)
    return merged


# -- trace context (distributed-trace attribution) ----------------------------
@contextmanager
def context(**kv: Any):
    """Attach ``kv`` to every event this thread emits inside the block.

    The mechanism behind end-to-end job traces: :mod:`repro.serve` sets
    ``trace_id``/``job`` on its worker thread, the execution backends
    re-establish the launching thread's context inside every rank thread
    (and forked ``mp`` worker), and each span's args carry the keys —
    so one filter over a merged trace recovers a job's full scheduler →
    supervisor → rank span tree.  Contexts nest (inner keys win) and an
    empty call is a no-op.
    """
    if not kv:
        yield
        return
    prev = getattr(_tls, "ctx", None)
    _tls.ctx = {**prev, **kv} if prev else dict(kv)
    try:
        yield
    finally:
        _tls.ctx = prev


def current_context() -> dict[str, Any]:
    """The calling thread's trace context (a copy; {} when unset)."""
    ctx = getattr(_tls, "ctx", None)
    return dict(ctx) if ctx else {}


def _with_ctx(args: dict[str, Any] | None) -> dict[str, Any] | None:
    """Event args with the thread context folded in (explicit args win)."""
    ctx = getattr(_tls, "ctx", None)
    if not ctx:
        return args
    return {**ctx, **args} if args else dict(ctx)


# -- cross-process shipping ---------------------------------------------------
def drain_events() -> list[Event]:
    """Remove and return every event of the current session (sorted).

    The worker-side half of ``mp``-backend trace shipping: a forked rank
    drains its buffers at teardown and ships the events home, where the
    parent folds them back in with :func:`absorb`.  Buffers re-register
    lazily, so the session stays usable after a drain.
    """
    global _generation
    with _lock:
        merged = [e for _name, buf in _buffers for e in buf]
        _buffers.clear()
    _generation += 1
    merged.sort(key=lambda e: e.ts)
    return merged


def absorb(shipped: Iterable[Event | tuple],
           label: str = "absorbed") -> int:
    """Fold events shipped from another process into this session.

    Timestamps are kept verbatim: workers forked from this process
    inherit the session's ``perf_counter`` origin, and ``perf_counter``
    is system-wide monotonic on the platforms the ``mp`` backend runs
    on, so shipped and local events share one timeline.  Returns the
    number of events absorbed.
    """
    buf = [e if isinstance(e, Event) else Event(*e) for e in shipped]
    if not buf:
        return 0
    with _lock:
        _buffers.append((label, buf))
    return len(buf)


def child_reset() -> None:
    """Post-fork cleanup for a worker process: drop every event and live
    span stack inherited from the parent (they belong to the parent's
    timeline and would be shipped home as duplicates) while keeping the
    session origin ``_t0`` and the enabled flag, so the worker's own
    events stay merge-compatible with the parent's."""
    global _generation
    with _lock:
        _buffers.clear()
        _active.clear()
    _generation += 1
    st = getattr(_tls, "stack", None)
    if st is not None:
        st.frames.clear()
        with _lock:
            _active[threading.get_ident()] = st


# -- emission -----------------------------------------------------------------
class Span:
    """A context-managed duration event."""

    __slots__ = ("name", "cat", "args", "_start")

    def __init__(self, name: str, cat: str, args: dict[str, Any]) -> None:
        self.name = sanitize(name)
        self.cat = cat
        self.args = args

    def add(self, **more: Any) -> None:
        """Attach extra args discovered mid-span (sizes, counts, ...)."""
        self.args.update(more)

    def __enter__(self) -> "Span":
        st = _stack_of()
        st.rank = get_rank()
        st.frames.append((self.name, self.cat))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        st = _tls.stack           # registered in __enter__
        if st.frames:
            st.frames.pop()
        _buf().append(Event(
            "X", self.name, self.cat, (self._start - _t0) * 1e6,
            (end - self._start) * 1e6, get_rank(),
            threading.current_thread().name, _with_ctx(self.args or None)))
        return False


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def add(self, **more: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, cat: str = "app", **args: Any):
    """A span context manager (the shared no-op singleton when disabled).

    Note for *hot* call sites: the keyword-argument dict is built before
    the flag is consulted, so guard with ``if trace.on:`` yourself when
    the call sits on a per-cell/per-message path.
    """
    if not on:
        return NULL_SPAN
    return Span(name, cat, args)


def complete(name: str, cat: str, t_start: float, **args: Any) -> None:
    """Record a span that started at ``t_start`` (a ``perf_counter``
    reading) and ends now.

    This is the guard-friendly form for call sites that cannot use a
    ``with`` block without restructuring::

        t0 = time.perf_counter() if trace.on else 0.0
        ... work ...
        if trace.on:
            trace.complete("mpi.send", "mpi", t0, nbytes=n)

    Callers are expected to have checked ``trace.on`` themselves.
    """
    end = time.perf_counter()
    _buf().append(Event(
        "X", sanitize(name), cat, (t_start - _t0) * 1e6,
        (end - t_start) * 1e6,
        get_rank(), threading.current_thread().name,
        _with_ctx(args or None)))


def instant(name: str, cat: str = "app", **args: Any) -> None:
    """Record a zero-duration marker event."""
    if not on:
        return
    _buf().append(Event(
        "i", sanitize(name), cat, (time.perf_counter() - _t0) * 1e6, 0.0,
        get_rank(), threading.current_thread().name,
        _with_ctx(args or None)))
