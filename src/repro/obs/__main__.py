"""``python -m repro.obs`` — trace inspection without writing code.

Every artifact this CLI reads is a Chrome/Perfetto trace written by
:func:`repro.obs.export.export_chrome_trace` (a ``REPRO_TRACE=1`` run's
at-exit export, a serve job's per-job ``trace.json``, or a merge of
several).  Subcommands::

    python -m repro.obs merge out.json a.json b.json   # combine traces
    python -m repro.obs top trace.json                 # busiest components
    python -m repro.obs critical-path trace.json       # cross-rank path +
                                                       #   collective blame
    python -m repro.obs job j-000001 --root .repro_serve
                                                       # a serve job's
                                                       #   end-to-end trace

``critical-path`` is the Table 5 diagnosis tool: on a merged multi-rank
trace it walks the chain of rank segments that bounded the run
(pivoting at every world collective to the rank that arrived last) and
prints per-collective wait blame — which component made everyone idle,
and for how long.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.obs import trace as _trace
from repro.obs.aggregate import (
    _segment_busy,
    critical_path,
    format_critical_path,
    format_wait_attribution,
    wait_attribution,
)
from repro.obs.export import export_chrome_trace, load_chrome_trace


def _load_all(paths: Sequence[str]) -> list[_trace.Event]:
    events: list[_trace.Event] = []
    for path in paths:
        events.extend(load_chrome_trace(path))
    events.sort(key=lambda e: e.ts)
    return events


def _print_json(doc) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _cmd_merge(args: argparse.Namespace) -> int:
    events = _load_all(args.inputs)
    export_chrome_trace(args.out, events)
    ranks = sorted({e.rank for e in events if e.rank is not None})
    print(f"{args.out}: {len(events)} events from {len(args.inputs)} "
          f"trace(s), ranks {ranks or '(none)'}")
    return 0


def top_components(events: Sequence[_trace.Event]
                   ) -> dict[str, dict[str, float]]:
    """Per-component self-seconds and span counts across every thread
    of a trace (the profiler's component table derived from spans)."""
    per_thread: dict[tuple, list[_trace.Event]] = {}
    for e in events:
        if e.ph == "X":
            per_thread.setdefault((e.rank, e.thread), []).append(e)
    out: dict[str, dict[str, float]] = {}
    for evs in per_thread.values():
        evs.sort(key=lambda e: (e.ts, -e.dur))
        t0 = min(e.ts for e in evs)
        t1 = max(e.ts + e.dur for e in evs)
        for comp, sec in _segment_busy(evs, t0, t1).items():
            slot = out.setdefault(comp, {"self_seconds": 0.0,
                                         "spans": 0.0})
            slot["self_seconds"] += sec
    from repro.obs.aggregate import component_of
    for e in events:
        if e.ph == "X":
            comp = component_of(e.name, e.cat)
            if comp in out:
                out[comp]["spans"] += 1
    return dict(sorted(out.items(),
                       key=lambda kv: kv[1]["self_seconds"],
                       reverse=True))


def _format_top(table: dict[str, dict[str, float]], limit: int) -> str:
    lines = [f"{'component / span':<44} {'spans':>8} {'self [s]':>12}",
             "-" * 66]
    for comp, slot in list(table.items())[:limit]:
        lines.append(f"{comp:<44} {int(slot['spans']):>8} "
                     f"{slot['self_seconds']:>12.6f}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    events = _load_all([args.trace])
    table = top_components(events)
    if args.json:
        _print_json(table)
    else:
        print(_format_top(table, args.limit))
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    events = _load_all([args.trace])
    path = critical_path(events)
    waits = wait_attribution(events)
    if args.json:
        _print_json({"critical_path": path, "wait_attribution": waits})
        return 0
    print(format_critical_path(path))
    print()
    print(format_wait_attribution(waits))
    return 0


def _cmd_job(args: argparse.Namespace) -> int:
    from repro.serve.jobs import JobStore

    root = args.root or os.environ.get("REPRO_SERVE_ROOT", ".repro_serve")
    store = JobStore(os.path.join(root, "jobs"))
    record = store.get_record(args.job_id)
    artifact = record.trace_path
    if artifact and not os.path.isabs(artifact) \
            and not os.path.exists(artifact):
        candidate = os.path.join(store.job_dir(args.job_id), "trace.json")
        if os.path.exists(candidate):
            artifact = candidate
    events = load_chrome_trace(artifact) \
        if artifact and os.path.exists(artifact) else []
    if args.json:
        _print_json({
            "job_id": record.job_id, "state": record.state,
            "trace_id": record.trace_id, "trace_path": record.trace_path,
            "events": len(events),
            "critical_path": critical_path(events) if events else None,
            "wait_attribution": wait_attribution(events) if events
            else None,
        })
        return 0
    print(f"job {record.job_id}: state={record.state} "
          f"tenant={record.tenant}")
    tid = record.trace_id or "(none — submitted while tracing was off)"
    print(f"trace id:       {tid}")
    print(f"trace artifact: {record.trace_path or '(none)'}")
    if not events:
        return 0 if record.trace_id else 1
    ranks = sorted({e.rank for e in events if e.rank is not None})
    print(f"{len(events)} events, ranks {ranks or '(unranked)'}")
    print()
    print(_format_top(top_components(events), args.limit))
    if len(ranks) > 1:
        print()
        print(format_critical_path(critical_path(events)))
        print()
        print(format_wait_attribution(wait_attribution(events)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect Chrome/Perfetto traces exported by "
                    "repro.obs (merge, rank, critical-path, serve jobs).")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("merge", help="combine several trace files")
    p.add_argument("out", help="output trace path")
    p.add_argument("inputs", nargs="+", help="input trace paths")
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("top", help="busiest components (span self-time)")
    p.add_argument("trace", help="trace path")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("critical-path",
                       help="cross-rank critical path + per-collective "
                            "wait attribution")
    p.add_argument("trace", help="merged multi-rank trace path")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_critical_path)

    p = sub.add_parser("job", help="a serve job's end-to-end trace")
    p.add_argument("job_id")
    p.add_argument("--root", default=None,
                   help="serve root (default: $REPRO_SERVE_ROOT or "
                        ".repro_serve)")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_job)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
