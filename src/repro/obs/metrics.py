"""Labelled metrics registry: counters, gauges, histograms.

The structured side of the observability subsystem: where the tracer
answers "when and for how long", the registry answers "how many and how
much" — call counts per port method, bytes through the communicator,
cells per refinement level.  :mod:`repro.cca.profiling` derives its
TAU-style per-component report entirely from a registry (no bookkeeping
of its own), and the MPI/SAMR hooks feed the process-wide default
registry while tracing is enabled.

All mutation is lock-protected: SCMD rank-threads share one registry, and
float ``+=`` is not atomic under free-threaded builds.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.errors import ObsError

#: Histogram bucket upper bounds (seconds-flavoured log sweep; values
#: above the last edge land in the overflow bucket).
DEFAULT_EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically-growing sum (small negative corrections from
    self-time accounting are tolerated)."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Histogram:
    """Cumulative distribution: count/sum/min/max plus log-spaced buckets."""

    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] = DEFAULT_EDGES) -> None:
        self._lock = threading.Lock()
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, edge in enumerate(self.edges):
                if value <= edge:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimate the q-th percentile (``0 <= q <= 100``) from the
        bucket counts.

        The mass of each bucket is spread linearly between its bounds
        (the first bucket starts at the observed minimum, the overflow
        bucket ends at the observed maximum) and the result is clamped
        to ``[min, max]`` — so the estimate is *exact* whenever the
        distribution is uniform within each occupied bucket, and always
        exact for single-valued distributions.  ``None`` when empty.
        """
        with self._lock:
            if not self.count:
                return None
            counts = list(self.counts)
            count, mn, mx = self.count, self.min, self.max
        q = min(max(float(q), 0.0), 100.0)
        target = q / 100.0 * count
        bounds: list[tuple[float, float]] = []
        prev = min(mn, self.edges[0]) if self.edges else mn
        for edge in self.edges:
            bounds.append((prev, edge))
            prev = edge
        bounds.append((prev, max(mx, prev)))        # overflow bucket
        cum = 0.0
        for (lo, hi), c in zip(bounds, counts):
            if c and cum + c >= target:
                value = lo + (hi - lo) * (target - cum) / c
                return min(max(value, mn), mx)
            cum += c
        return mx

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "buckets": {
                **{f"le_{edge:g}": c
                   for edge, c in zip(self.edges, self.counts)},
                "overflow": self.counts[-1],
            },
        }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in.

        Bucket counts are re-bucketed by edge value: each shipped bucket
        lands in the first own bucket whose upper bound covers it (the
        identity mapping when the edge tuples match, which is the normal
        case — both sides built from the same metric name).
        """
        if not snap.get("count"):
            return
        shipped = snap.get("buckets", {})
        with self._lock:
            self.count += int(snap["count"])
            self.total += float(snap["sum"])
            if snap.get("min") is not None and snap["min"] < self.min:
                self.min = float(snap["min"])
            if snap.get("max") is not None and snap["max"] > self.max:
                self.max = float(snap["max"])
            for key, c in shipped.items():
                if not c:
                    continue
                if key == "overflow":
                    self.counts[-1] += int(c)
                    continue
                try:
                    edge = float(key[3:])  # "le_<edge:g>"
                except ValueError:
                    self.counts[-1] += int(c)
                    continue
                for i, own in enumerate(self.edges):
                    if edge <= own:
                        self.counts[i] += int(c)
                        break
                else:
                    self.counts[-1] += int(c)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    def _get_or_create(self, cls, name: str, labels: dict[str, Any],
                       **kwargs) -> Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise ObsError(
                    f"metric {name!r}{dict(key[1])!r} already registered "
                    f"as {metric.kind}, requested {cls.kind}")
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str,
                  edges: tuple[float, ...] = DEFAULT_EDGES,
                  **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels, edges=edges)

    # -- read side --------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Metric | None:
        return self._metrics.get((name, _label_key(labels)))

    def find(self, name: str) -> Iterator[tuple[dict[str, str], Metric]]:
        """All (labels, metric) pairs registered under ``name``."""
        with self._lock:
            items = list(self._metrics.items())
        for (n, lk), metric in items:
            if n == name:
                yield dict(lk), metric

    def names(self) -> list[str]:
        with self._lock:
            return sorted({n for n, _ in self._metrics})

    def snapshot(self) -> list[dict[str, Any]]:
        """Flat, JSON-ready view of every metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [
            {"name": name, "type": metric.kind, "labels": dict(lk),
             **metric.snapshot()}
            for (name, lk), metric in items
        ]

    def merge_snapshot(self, records: list[dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another registry (typically a
        forked ``mp`` worker's, shipped home at teardown) into this one.

        Counters add, gauges take the shipped value (last write wins,
        as for a local ``set``), histograms merge bucket-by-bucket.
        Malformed records are skipped rather than poisoning the run.
        """
        for rec in records:
            try:
                name, kind = rec["name"], rec["type"]
                labels = rec.get("labels", {})
                if kind == "counter":
                    self.counter(name, **labels).inc(float(rec["value"]))
                elif kind == "gauge":
                    self.gauge(name, **labels).set(float(rec["value"]))
                elif kind == "histogram":
                    buckets = rec.get("buckets", {})
                    edges = tuple(sorted(
                        float(k[3:]) for k in buckets
                        if k.startswith("le_")))
                    self.histogram(name, edges=edges or DEFAULT_EDGES,
                                   **labels).merge_snapshot(rec)
            except (KeyError, TypeError, ValueError, ObsError):
                continue

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry fed by the built-in hooks."""
    return _default
