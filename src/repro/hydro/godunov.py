"""Godunov interface flux: exact Riemann solution evaluated at x/t = 0.

The ``GodunovFlux`` component of the paper's shock-interface assembly.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.riemann_exact import sample_riemann


def godunov_flux(prim_l: tuple[np.ndarray, ...],
                 prim_r: tuple[np.ndarray, ...],
                 gamma: float) -> np.ndarray:
    """x-direction flux from left/right primitive tuples
    ``(rho, u, v, p, zeta)``; returns shape ``(5, ...)``."""
    rho, u, v, p, zeta = sample_riemann(*prim_l, *prim_r, gamma)
    E = p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    return np.stack([
        rho * u,
        rho * u * u + p,
        rho * u * v,
        (E + p) * u,
        rho * zeta * u,
    ])
