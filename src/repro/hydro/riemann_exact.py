"""Exact Riemann solver for the gamma-law gas (vectorized Toro solver).

Given left/right primitive states at an array of interfaces, finds the
star-region pressure/velocity by Newton iteration on the pressure function
(Toro, *Riemann Solvers and Numerical Methods for Fluid Dynamics*, ch. 4)
and samples the self-similar solution on the interface ray ``x/t = 0``.
Tangential velocity and the interface function ζ ride passively with the
contact wave.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, HydroError

_MAX_NEWTON = 40
_TOL = 1e-10


def _pressure_function(p, rho_k, p_k, a_k, gamma):
    """f_K(p) and its derivative for one side."""
    g1 = (gamma - 1.0) / (2.0 * gamma)
    A = 2.0 / ((gamma + 1.0) * rho_k)
    B = (gamma - 1.0) / (gamma + 1.0) * p_k
    shock = p > p_k
    sq = np.sqrt(A / (p + B))
    f_shock = (p - p_k) * sq
    df_shock = sq * (1.0 - 0.5 * (p - p_k) / (B + p))
    pr = np.maximum(p / p_k, 1e-300)
    f_rare = 2.0 * a_k / (gamma - 1.0) * (pr**g1 - 1.0)
    df_rare = pr ** (-(gamma + 1.0) / (2.0 * gamma)) / (rho_k * a_k)
    return (np.where(shock, f_shock, f_rare),
            np.where(shock, df_shock, df_rare))


def riemann_exact(rho_l, u_l, p_l, rho_r, u_r, p_r,
                  gamma: float) -> tuple[np.ndarray, np.ndarray]:
    """Star-region (p*, u*) for arrays of left/right states."""
    rho_l, u_l, p_l, rho_r, u_r, p_r = (
        np.asarray(x, dtype=float)
        for x in (rho_l, u_l, p_l, rho_r, u_r, p_r))
    if np.any(rho_l <= 0) or np.any(rho_r <= 0) or np.any(p_l <= 0) \
            or np.any(p_r <= 0):
        raise HydroError("Riemann solver fed non-physical states")
    a_l = np.sqrt(gamma * p_l / rho_l)
    a_r = np.sqrt(gamma * p_r / rho_r)
    du = u_r - u_l
    # vacuum generation check (Toro eq. 4.40)
    if np.any(2.0 * (a_l + a_r) / (gamma - 1.0) <= du):
        raise HydroError("vacuum generated between states (expansion too strong)")
    # PVRS initial guess, floored
    p = 0.5 * (p_l + p_r) - 0.125 * du * (rho_l + rho_r) * (a_l + a_r)
    p = np.maximum(p, 1e-8 * np.minimum(p_l, p_r))
    for _ in range(_MAX_NEWTON):
        f_l, df_l = _pressure_function(p, rho_l, p_l, a_l, gamma)
        f_r, df_r = _pressure_function(p, rho_r, p_r, a_r, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = np.maximum(p - delta, 1e-10 * np.minimum(p_l, p_r))
        change = np.abs(p_new - p) / np.maximum(p_new, 1e-300)
        p = p_new
        if np.all(change < _TOL):
            break
    else:
        raise ConvergenceError(
            f"Riemann star-pressure Newton did not converge "
            f"(max change {float(change.max()):.2e})")
    f_l, _ = _pressure_function(p, rho_l, p_l, a_l, gamma)
    f_r, _ = _pressure_function(p, rho_r, p_r, a_r, gamma)
    u = 0.5 * (u_l + u_r) + 0.5 * (f_r - f_l)
    return p, u


def sample_riemann(rho_l, u_l, v_l, p_l, zeta_l,
                   rho_r, u_r, v_r, p_r, zeta_r,
                   gamma: float) -> tuple[np.ndarray, ...]:
    """Solve and sample at the interface ray x/t = 0.

    Returns primitive arrays ``(rho, u, v, p, zeta)`` of the state sitting
    on the interface — exactly what the Godunov flux needs.
    """
    args = [np.asarray(x, dtype=float) for x in
            (rho_l, u_l, v_l, p_l, zeta_l, rho_r, u_r, v_r, p_r, zeta_r)]
    rho_l, u_l, v_l, p_l, zeta_l, rho_r, u_r, v_r, p_r, zeta_r = args
    p_star, u_star = riemann_exact(rho_l, u_l, p_l, rho_r, u_r, p_r, gamma)
    a_l = np.sqrt(gamma * p_l / rho_l)
    a_r = np.sqrt(gamma * p_r / rho_r)
    g6 = (gamma - 1.0) / (gamma + 1.0)
    g1 = (gamma - 1.0) / (2.0 * gamma)

    left_of_contact = u_star >= 0.0

    # ---- assemble the left-side solution at xi = 0 --------------------------
    pr_l = p_star / p_l
    shock_l = p_star > p_l
    # left shock branch
    s_l = u_l - a_l * np.sqrt((gamma + 1.0) / (2 * gamma) * pr_l + g1)
    rho_shock_l = rho_l * (pr_l + g6) / (g6 * pr_l + 1.0)
    # left rarefaction branch
    a_star_l = a_l * pr_l**g1
    sh_l = u_l - a_l          # head
    st_l = u_star - a_star_l  # tail
    rho_rare_l = rho_l * pr_l ** (1.0 / gamma)
    # inside-fan state at xi = 0
    fac_l = 2.0 / (gamma + 1.0) + g6 / a_l * u_l
    fac_l = np.maximum(fac_l, 1e-12)
    rho_fan_l = rho_l * fac_l ** (2.0 / (gamma - 1.0))
    u_fan_l = 2.0 / (gamma + 1.0) * (a_l + (gamma - 1.0) / 2.0 * u_l)
    p_fan_l = p_l * fac_l ** (2.0 * gamma / (gamma - 1.0))

    rho_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, rho_l, rho_shock_l),
        np.where(sh_l >= 0.0, rho_l,
                 np.where(st_l <= 0.0, rho_rare_l, rho_fan_l)))
    u_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, u_l, u_star),
        np.where(sh_l >= 0.0, u_l,
                 np.where(st_l <= 0.0, u_star, u_fan_l)))
    p_left = np.where(
        shock_l,
        np.where(s_l >= 0.0, p_l, p_star),
        np.where(sh_l >= 0.0, p_l,
                 np.where(st_l <= 0.0, p_star, p_fan_l)))

    # ---- mirrored right side -------------------------------------------------
    pr_r = p_star / p_r
    shock_r = p_star > p_r
    s_r = u_r + a_r * np.sqrt((gamma + 1.0) / (2 * gamma) * pr_r + g1)
    rho_shock_r = rho_r * (pr_r + g6) / (g6 * pr_r + 1.0)
    a_star_r = a_r * pr_r**g1
    sh_r = u_r + a_r
    st_r = u_star + a_star_r
    rho_rare_r = rho_r * pr_r ** (1.0 / gamma)
    fac_r = 2.0 / (gamma + 1.0) - g6 / a_r * u_r
    fac_r = np.maximum(fac_r, 1e-12)
    rho_fan_r = rho_r * fac_r ** (2.0 / (gamma - 1.0))
    u_fan_r = 2.0 / (gamma + 1.0) * (-a_r + (gamma - 1.0) / 2.0 * u_r)
    p_fan_r = p_r * fac_r ** (2.0 * gamma / (gamma - 1.0))

    rho_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, rho_r, rho_shock_r),
        np.where(sh_r <= 0.0, rho_r,
                 np.where(st_r >= 0.0, rho_rare_r, rho_fan_r)))
    u_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, u_r, u_star),
        np.where(sh_r <= 0.0, u_r,
                 np.where(st_r >= 0.0, u_star, u_fan_r)))
    p_right = np.where(
        shock_r,
        np.where(s_r <= 0.0, p_r, p_star),
        np.where(sh_r <= 0.0, p_r,
                 np.where(st_r >= 0.0, p_star, p_fan_r)))

    rho = np.where(left_of_contact, rho_left, rho_right)
    u = np.where(left_of_contact, u_left, u_right)
    p = np.where(left_of_contact, p_left, p_right)
    # passive quantities follow the contact
    v = np.where(left_of_contact, v_l, v_r)
    zeta = np.where(left_of_contact, zeta_l, zeta_r)
    return rho, u, v, p, zeta
