"""Flow diagnostics: vorticity and interfacial circulation.

The paper's Fig. 7 plots the circulation deposited on the gas-gas
interface, ``Γ = ∫_{0.001 <= ζ <= 0.999} ω · dA``, as the convergence
observable for the shock-interface run (analytic estimate of the maximum
deposition: −0.592).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HydroError
from repro.hydro.state import cons_to_prim


def vorticity(U: np.ndarray, dx: float, dy: float,
              gamma: float) -> np.ndarray:
    """ω = dv/dx - du/dy by central differences.

    ``U`` must carry at least one ghost layer; the result covers the array
    shrunk by one cell per face.
    """
    if U.shape[1] < 3 or U.shape[2] < 3:
        raise HydroError("field too small for vorticity stencil")
    _, u, v, _, _ = cons_to_prim(U, gamma, check=False)
    dv_dx = (v[2:, 1:-1] - v[:-2, 1:-1]) / (2.0 * dx)
    du_dy = (u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dy)
    return dv_dx - du_dy


def hierarchy_interface_circulation(dobj, gamma: float, comm=None,
                                    zeta_lo: float = 0.001,
                                    zeta_hi: float = 0.999) -> float:
    """Γ over a whole AMR hierarchy: each level contributes only the cells
    not covered by a finer level (composite integral, no double counting).

    ``dobj`` is a 5-variable SAMR DataObject with current ghost cells.
    """
    from repro.samr.boxlist import subtract_all

    h = dobj.hierarchy
    total = 0.0
    for lev_no, level in enumerate(h.levels):
        dx, dy = h.dx(lev_no)
        finer = (h.level(lev_no + 1).boxes if lev_no + 1 < h.nlevels
                 else [])
        finer_coarse = [b.coarsen(h.ratio) for b in finer]
        for patch in dobj.owned_patches(lev_no):
            arr = dobj.array(patch)
            g = patch.nghost
            # vorticity over the patch interior (uses one ghost ring)
            pad = g - 1
            core = arr if pad == 0 else arr[:, pad:-pad, pad:-pad]
            omega = vorticity(core, dx, dy, gamma)
            rho = core[0, 1:-1, 1:-1]
            zeta = core[4, 1:-1, 1:-1] / rho
            band = (zeta >= zeta_lo) & (zeta <= zeta_hi)
            mask = np.ones_like(band)
            for region in finer_coarse:
                overlap = patch.box.intersection(region)
                if not overlap.empty:
                    mask[overlap.slices(origin=patch.box.lo)] = False
            total += float((omega * band * mask).sum() * dx * dy)
    if comm is not None and comm.size > 1:
        from repro.mpi.comm import Op

        total = float(comm.allreduce(total, op=Op.SUM))
    return total


def interface_circulation(U: np.ndarray, dx: float, dy: float,
                          gamma: float,
                          zeta_lo: float = 0.001,
                          zeta_hi: float = 0.999) -> float:
    """Γ over cells whose interface function sits in (zeta_lo, zeta_hi).

    ``U`` is a ghosted patch array; the ghost ring feeds the vorticity
    stencil and is excluded from the integral itself.
    """
    omega = vorticity(U, dx, dy, gamma)
    rho = U[0, 1:-1, 1:-1]
    zeta = U[4, 1:-1, 1:-1] / rho
    band = (zeta >= zeta_lo) & (zeta <= zeta_hi)
    return float((omega * band).sum() * dx * dy)
