"""Equilibrium Flux Method (Pullin 1980): kinetic flux-vector splitting.

"Solving an exact Riemann problem could be substituted by a gas-kinetics
scheme (e.g. Equilibrium Flux Method)" and "the flexibility of CCA allows
one to successfully reuse the code assembly ... to simulate strong shocks
(Mach ≈ 3.5) by simply replacing the GodunovFlux component with EFMFlux, a
component implementing a more diffusive gas-kinetic scheme."  (paper §4.3)

The interface flux is the sum of the rightward half-Maxwellian flux of the
left state and the leftward half-Maxwellian flux of the right state:
``F = F⁺(W_L) + F⁻(W_R)``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

_SQRT_PI = np.sqrt(np.pi)


def _half_flux(rho, u, v, p, zeta, gamma, sign: int) -> np.ndarray:
    """One-sided kinetic flux: sign=+1 for F⁺, -1 for F⁻."""
    beta = rho / (2.0 * p)            # 1 / (2 R T)
    s = u * np.sqrt(beta)
    A = 0.5 * (1.0 + sign * erf(s))   # half-range mass fraction
    B = sign * np.exp(-s * s) / (2.0 * _SQRT_PI * np.sqrt(beta))
    ke = 0.5 * rho * (u * u + v * v)
    E_plus_p_flux = (gamma / (gamma - 1.0)) * p * u + ke * u
    mass = rho * (u * A + B)
    return np.stack([
        mass,
        (rho * u * u + p) * A + rho * u * B,
        v * mass,
        E_plus_p_flux * A + ((gamma + 1.0) / (2.0 * (gamma - 1.0)) * p + ke) * B,
        zeta * mass,
    ])


def efm_flux(prim_l: tuple[np.ndarray, ...],
             prim_r: tuple[np.ndarray, ...],
             gamma: float) -> np.ndarray:
    """x-direction EFM flux from left/right primitive tuples
    ``(rho, u, v, p, zeta)``; returns shape ``(5, ...)``."""
    return (_half_flux(*prim_l, gamma, +1)
            + _half_flux(*prim_r, gamma, -1))
