"""MUSCL reconstruction: limited linear interface states.

"The Godunov method involves constructing the states on the left and right
of a cell interface using slope-limiters, upwinding and solving a Riemann
problem.  The construction of left and right states holds true for most
finite volume methods."  (paper §4.3) — this module is that construction,
shared by the Godunov and EFM flux components (the ``States`` component).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import HydroError
from repro.hydro.limiters import LIMITERS


def muscl_interface_states(
    q: np.ndarray,
    axis: int = -1,
    limiter: str | Callable = "van_leer",
) -> tuple[np.ndarray, np.ndarray]:
    """Limited linear reconstruction along ``axis``.

    ``q`` holds cell averages (any leading shape); with ``n`` cells along
    the axis the function returns ``(qL, qR)`` at the ``n - 3`` interior
    interfaces (the first and last cell on each side act as the stencil's
    ghost cells):

    ``qL[k] = q[k+1] + slope[k+1]/2`` and ``qR[k] = q[k+2] - slope[k+2]/2``
    describe interface ``k + 3/2`` in cell units.
    """
    if callable(limiter):
        phi = limiter
    else:
        try:
            phi = LIMITERS[limiter]
        except KeyError:
            raise HydroError(
                f"unknown limiter {limiter!r}; have {sorted(LIMITERS)}"
            ) from None
    q = np.asarray(q, dtype=float)
    q = np.moveaxis(q, axis, -1)
    if q.shape[-1] < 4:
        raise HydroError(
            f"need at least 4 cells along the axis, got {q.shape[-1]}")
    fwd = q[..., 1:] - q[..., :-1]          # difference at i+1/2
    slope = phi(fwd[..., :-1], fwd[..., 1:])  # limited slope in cell i+1
    qL = q[..., 1:-2] + 0.5 * slope[..., :-1]
    qR = q[..., 2:-1] - 0.5 * slope[..., 1:]
    return np.moveaxis(qL, -1, axis), np.moveaxis(qR, -1, axis)
