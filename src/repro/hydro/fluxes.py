"""Dimension-by-dimension Euler RHS on a ghosted patch.

``euler_rhs`` is the per-patch right-hand side the paper's ``InviscidFlux``
adaptor supplies to the RK2 integrator: MUSCL reconstruction of primitives
(``States``), an interface flux (``GodunovFlux`` or ``EFMFlux``), and the
conservative divergence.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import HydroError
from repro.hydro.godunov import godunov_flux
from repro.hydro.reconstruction import muscl_interface_states
from repro.hydro.state import cons_to_prim, max_wavespeed

FluxFn = Callable[[tuple, tuple, float], np.ndarray]

#: Positivity floors applied to reconstructed interface states.
_RHO_FLOOR = 1e-12
_P_FLOOR = 1e-12


def euler_rhs(U: np.ndarray, dx: float, dy: float, gamma: float,
              flux_fn: FluxFn = godunov_flux,
              limiter: str = "van_leer",
              nghost: int = 2,
              reconstruct_fn: Callable | None = None) -> np.ndarray:
    """dU/dt over the interior of a ghosted patch.

    ``U`` has shape ``(5, nx + 2*nghost, ny + 2*nghost)`` with ghosts
    already filled; the return value has interior shape
    ``(5, nx, ny)``.  ``nghost`` must be >= 2 (MUSCL stencil).

    ``reconstruct_fn(prim, axis) -> (qL, qR)`` overrides the built-in
    MUSCL reconstruction — the hook the ``States`` component plugs into.
    """
    if nghost < 2:
        raise HydroError("euler_rhs needs at least 2 ghost cells")
    g = nghost
    if reconstruct_fn is None:
        reconstruct_fn = lambda q, axis: muscl_interface_states(  # noqa: E731
            q, axis=axis, limiter=limiter)
    rho, u, v, p, zeta = cons_to_prim(U, gamma, check=False)
    rho = np.maximum(rho, _RHO_FLOOR)
    p = np.maximum(p, _P_FLOOR)
    prim = np.stack([rho, u, v, p, zeta])
    extra = g - 2  # reconstruction only needs a 2-cell halo

    def clip(arr, axis):
        if extra == 0:
            return arr
        sl = [slice(None)] * arr.ndim
        sl[axis] = slice(extra, -extra)
        return arr[tuple(sl)]

    # ---- x-sweep: fluxes across i+-1/2 faces -------------------------------
    px = clip(prim[:, :, g:-g], 1)
    qL, qR = reconstruct_fn(px, 1)
    FL = _floored(qL)
    FR = _floored(qR)
    F = flux_fn(tuple(FL), tuple(FR), gamma)

    # ---- y-sweep: normal velocity is v; swap momentum rows ------------------
    py = clip(prim[:, g:-g, :], 2)
    py_swapped = py[[0, 2, 1, 3, 4]]
    qL, qR = reconstruct_fn(py_swapped, 2)
    GL = _floored(qL)
    GR = _floored(qR)
    G = flux_fn(tuple(GL), tuple(GR), gamma)[[0, 2, 1, 3, 4]]

    dU = np.zeros_like(U[:, g:-g, g:-g])
    dU -= (F[:, 1:, :] - F[:, :-1, :]) / dx
    dU -= (G[:, :, 1:] - G[:, :, :-1]) / dy
    return dU


def _floored(q: np.ndarray) -> np.ndarray:
    """Apply positivity floors to a reconstructed primitive block
    (rho, un, ut, p, zeta)."""
    out = q.copy()
    out[0] = np.maximum(out[0], _RHO_FLOOR)
    out[3] = np.maximum(out[3], _P_FLOOR)
    return out


def cfl_dt(U: np.ndarray, dx: float, dy: float, gamma: float,
           cfl: float = 0.4) -> float:
    """Stable step from the characteristic speeds
    (``CharacteristicQuantities``): ``dt = cfl / (smax/dx + smax/dy)``."""
    if not (0.0 < cfl <= 1.0):
        raise HydroError(f"cfl must be in (0, 1], got {cfl}")
    smax = max_wavespeed(U, gamma)
    if smax <= 0.0:
        raise HydroError("zero wavespeed field")
    return cfl / (smax / dx + smax / dy)
