"""Compressible-flow finite-volume kernels.

The shock-interface application (paper §4.3) solves the 2-D compressible
Euler equations with an interface-tracking function ζ using a Godunov
method: MUSCL slope-limited reconstruction, an exact Riemann solver, and —
for strong shocks — the more diffusive Equilibrium Flux Method of Pullin
as a drop-in replacement (the ``GodunovFlux`` → ``EFMFlux`` component swap
the paper highlights).

* :mod:`repro.hydro.state` — conserved/primitive conversions and the
  gamma-law EOS.
* :mod:`repro.hydro.limiters` — slope limiters.
* :mod:`repro.hydro.reconstruction` — MUSCL interface states.
* :mod:`repro.hydro.riemann_exact` — the exact gamma-law Riemann solver
  (Toro's two-shock/two-rarefaction Newton iteration), vectorized.
* :mod:`repro.hydro.godunov` / :mod:`repro.hydro.efm` — interface fluxes.
* :mod:`repro.hydro.fluxes` — dimension-by-dimension RHS assembly on a
  ghosted patch.
* :mod:`repro.hydro.bc` — reflecting / outflow / inflow ghost fills.
* :mod:`repro.hydro.diagnostics` — vorticity and interfacial circulation
  (the paper's Fig 7 observable).
"""

from repro.hydro.state import (
    EulerState,
    NVARS,
    IRHO,
    IMX,
    IMY,
    IE,
    IZETA,
    cons_to_prim,
    prim_to_cons,
    sound_speed,
    max_wavespeed,
)
from repro.hydro.limiters import minmod, van_leer, mc_limiter, superbee
from repro.hydro.reconstruction import muscl_interface_states
from repro.hydro.riemann_exact import riemann_exact, sample_riemann
from repro.hydro.godunov import godunov_flux
from repro.hydro.efm import efm_flux
from repro.hydro.fluxes import euler_rhs, cfl_dt
from repro.hydro.bc import fill_reflecting, fill_outflow, fill_inflow
from repro.hydro.diagnostics import vorticity, interface_circulation

__all__ = [
    "EulerState",
    "NVARS",
    "IRHO",
    "IMX",
    "IMY",
    "IE",
    "IZETA",
    "cons_to_prim",
    "prim_to_cons",
    "sound_speed",
    "max_wavespeed",
    "minmod",
    "van_leer",
    "mc_limiter",
    "superbee",
    "muscl_interface_states",
    "riemann_exact",
    "sample_riemann",
    "godunov_flux",
    "efm_flux",
    "euler_rhs",
    "cfl_dt",
    "fill_reflecting",
    "fill_outflow",
    "fill_inflow",
    "vorticity",
    "interface_circulation",
]
