"""Slope limiters for MUSCL reconstruction.

Each limiter maps forward/backward differences ``(a, b)`` to a limited
slope; all are vectorized and symmetric (``phi(a, b) == phi(b, a)``).
"""

from __future__ import annotations

import numpy as np


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The most diffusive TVD limiter: smallest-magnitude same-sign slope."""
    same = (a * b) > 0.0
    return np.where(same, np.sign(a) * np.minimum(np.abs(a), np.abs(b)), 0.0)


def van_leer(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Harmonic-mean limiter: smooth, second-order away from extrema."""
    ab = a * b
    denom = a + b
    safe = np.abs(denom) > 1e-300
    return np.where((ab > 0.0) & safe,
                    2.0 * ab / np.where(safe, denom, 1.0), 0.0)


def mc_limiter(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Monotonized central: min(2|a|, 2|b|, |a+b|/2), sharper than minmod."""
    same = (a * b) > 0.0
    s = np.sign(a)
    m = np.minimum(np.minimum(2.0 * np.abs(a), 2.0 * np.abs(b)),
                   0.5 * np.abs(a + b))
    return np.where(same, s * m, 0.0)


def superbee(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The most compressive TVD limiter."""
    same = (a * b) > 0.0
    s = np.sign(a)
    abs_a, abs_b = np.abs(a), np.abs(b)
    m1 = np.minimum(2.0 * abs_a, abs_b)
    m2 = np.minimum(abs_a, 2.0 * abs_b)
    return np.where(same, s * np.maximum(m1, m2), 0.0)


LIMITERS = {
    "minmod": minmod,
    "van_leer": van_leer,
    "mc": mc_limiter,
    "superbee": superbee,
}
