"""Euler state vectors and the gamma-law equation of state.

Conserved variables (paper Eq. 4): ``U = {ρ, ρu, ρv, ρe, ρζ}`` where ρe is
the total energy density and ζ the interface-tracking function;
``p = (γ-1)(ρe - ½ρ(u²+v²))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HydroError

#: Conserved-variable indices.
IRHO, IMX, IMY, IE, IZETA = 0, 1, 2, 3, 4
NVARS = 5


@dataclass(frozen=True)
class EulerState:
    """A pointwise primitive state (handy for ICs and tests)."""

    rho: float
    u: float
    v: float
    p: float
    zeta: float = 0.0

    def conserved(self, gamma: float) -> np.ndarray:
        if self.rho <= 0.0 or self.p <= 0.0:
            raise HydroError(
                f"non-physical state rho={self.rho}, p={self.p}")
        E = self.p / (gamma - 1.0) + 0.5 * self.rho * (self.u**2 + self.v**2)
        return np.array([
            self.rho,
            self.rho * self.u,
            self.rho * self.v,
            E,
            self.rho * self.zeta,
        ])

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


def cons_to_prim(U: np.ndarray, gamma: float,
                 check: bool = True) -> tuple[np.ndarray, ...]:
    """``U`` shape (5, ...) -> (rho, u, v, p, zeta) arrays."""
    rho = U[IRHO]
    if check and np.any(rho <= 0.0):
        raise HydroError(f"negative density (min {rho.min():.3e})")
    u = U[IMX] / rho
    v = U[IMY] / rho
    p = (gamma - 1.0) * (U[IE] - 0.5 * rho * (u * u + v * v))
    if check and np.any(p <= 0.0):
        raise HydroError(f"negative pressure (min {p.min():.3e})")
    zeta = U[IZETA] / rho
    return rho, u, v, p, zeta


def prim_to_cons(rho, u, v, p, zeta, gamma: float) -> np.ndarray:
    """Primitive arrays -> conserved array of shape (5, ...)."""
    rho = np.asarray(rho, dtype=float)
    E = (np.asarray(p) / (gamma - 1.0)
         + 0.5 * rho * (np.asarray(u) ** 2 + np.asarray(v) ** 2))
    return np.stack([rho, rho * u, rho * v, E, rho * zeta])


def sound_speed(rho, p, gamma: float):
    """a = sqrt(gamma p / rho)."""
    return np.sqrt(gamma * np.asarray(p) / np.asarray(rho))


def max_wavespeed(U: np.ndarray, gamma: float) -> float:
    """max(|u| + a, |v| + a) over the field — CFL's characteristic speed
    (the ``CharacteristicQuantities`` component's job)."""
    rho, u, v, p, _ = cons_to_prim(U, gamma)
    a = sound_speed(rho, p, gamma)
    return float(np.maximum(np.abs(u) + a, np.abs(v) + a).max())


def euler_flux_x(U: np.ndarray, gamma: float) -> np.ndarray:
    """Exact x-direction flux F(U) (paper Eq. 4)."""
    rho, u, v, p, zeta = cons_to_prim(U, gamma, check=False)
    return np.stack([
        rho * u,
        rho * u * u + p,
        rho * u * v,
        (U[IE] + p) * u,
        rho * zeta * u,
    ])
