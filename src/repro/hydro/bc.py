"""Physical boundary fills for ghosted Euler patches.

"The shock tube has reflecting boundary conditions above and below and
outflow on the right, which are set with the BoundaryConditions
component."  (paper §4.3)  These functions are the kernels that component
applies patch-by-patch.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HydroError
from repro.hydro.state import IMX, IMY


def _face_slices(arr: np.ndarray, axis: int, side: int, g: int):
    """(ghost slice, mirrored interior slice) along ``axis`` (0=x, 1=y)."""
    ax = axis + 1  # leading variable axis
    n = arr.shape[ax]
    if side == 0:
        ghost = slice(0, g)
        mirror = slice(2 * g - 1, g - 1, -1)
        edge = slice(g, g + 1)
    else:
        ghost = slice(n - g, n)
        mirror = slice(n - g - 1, n - 2 * g - 1, -1)
        edge = slice(n - g - 1, n - g)
    return ax, ghost, mirror, edge


def fill_outflow(arr: np.ndarray, axis: int, side: int, g: int) -> None:
    """Zero-gradient (transmissive) fill: replicate the edge cell."""
    ax, ghost, _, edge = _face_slices(arr, axis, side, g)
    sl_g = [slice(None)] * arr.ndim
    sl_e = [slice(None)] * arr.ndim
    sl_g[ax] = ghost
    sl_e[ax] = edge
    arr[tuple(sl_g)] = arr[tuple(sl_e)]


def fill_reflecting(arr: np.ndarray, axis: int, side: int, g: int) -> None:
    """Solid-wall fill: mirror the interior, negate the normal momentum."""
    ax, ghost, mirror, _ = _face_slices(arr, axis, side, g)
    sl_g = [slice(None)] * arr.ndim
    sl_m = [slice(None)] * arr.ndim
    sl_g[ax] = ghost
    sl_m[ax] = mirror
    arr[tuple(sl_g)] = arr[tuple(sl_m)]
    normal = IMX if axis == 0 else IMY
    sl_n = list(sl_g)
    sl_n[0] = normal
    arr[tuple(sl_n)] = -arr[tuple(sl_n)]


def fill_inflow(arr: np.ndarray, axis: int, side: int, g: int,
                state: np.ndarray) -> None:
    """Supersonic inflow: pin the ghost cells to a fixed conserved state."""
    state = np.asarray(state, dtype=float)
    if state.shape != (arr.shape[0],):
        raise HydroError(
            f"inflow state needs shape ({arr.shape[0]},), got {state.shape}")
    ax, ghost, _, _ = _face_slices(arr, axis, side, g)
    sl_g = [slice(None)] * arr.ndim
    sl_g[ax] = ghost
    view = arr[tuple(sl_g)]
    view[...] = state.reshape((-1,) + (1,) * (arr.ndim - 1))
