"""Timers used by the virtual-time machinery and the bench harness.

Two clocks matter here:

* wall clock (``time.perf_counter``) — what a user experiences; used only in
  reports.
* per-thread CPU time (``time.thread_time``) — what *this rank* actually
  burned, immune to GIL interleaving with other ranks' threads.  This is the
  clock the SCMD virtual-time model charges for compute sections.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch (wall clock by default, any zero-argument
    clock via ``clock=`` — e.g. ``time.process_time`` for the interleaved
    overhead bench).

    >>> sw = Stopwatch()
    >>> with sw: ...                     # doctest: +SKIP
    >>> sw.elapsed                       # doctest: +SKIP
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = self._clock()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += self._clock() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class ThreadCpuTimer:
    """Accumulating per-thread CPU timer built on ``time.thread_time``.

    Only time spent on the calling thread is counted, so P rank-threads
    time-sharing one core each see their own cost — the key trick that lets
    the SCMD substrate emulate a P-node machine on a laptop.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "ThreadCpuTimer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.thread_time()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        self.elapsed += time.thread_time() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "ThreadCpuTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
