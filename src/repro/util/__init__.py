"""Shared utilities: run-time options, logging, timers."""

from repro.util.options import Options, fast_mode
from repro.util.timing import Stopwatch, ThreadCpuTimer
from repro.util.logging import get_logger

__all__ = ["Options", "fast_mode", "Stopwatch", "ThreadCpuTimer", "get_logger"]
