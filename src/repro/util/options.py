"""Key-value option bags used throughout the toolkit.

The paper's *Database components* "store certain parameters (e.g. mesh size,
gas properties, etc), that are retrieved using a key-value pair mechanism".
:class:`Options` is the plain data structure backing those components; the
CCA-facing wrapper lives in :mod:`repro.cca.ports.parameter`.
"""

from __future__ import annotations

import os
from typing import Any, Iterator, Mapping


class Options:
    """A typed key-value store with defaults and strict lookup.

    Values are arbitrary Python objects; convenience accessors coerce to the
    requested type so rc-script string parameters interoperate with numeric
    component knobs.
    """

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = dict(initial or {})

    # -- mutation ---------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (overwrites silently)."""
        if not isinstance(key, str) or not key:
            raise KeyError(f"option keys must be non-empty strings, got {key!r}")
        self._data[key] = value

    def update(self, other: Mapping[str, Any]) -> None:
        """Merge all pairs from ``other`` into this bag."""
        for k, v in other.items():
            self.set(k, v)

    def remove(self, key: str) -> None:
        """Delete ``key``; raises ``KeyError`` if absent."""
        del self._data[key]

    # -- lookup -----------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def require(self, key: str) -> Any:
        """Strict lookup; raises ``KeyError`` listing available keys."""
        try:
            return self._data[key]
        except KeyError:
            known = ", ".join(sorted(self._data)) or "<empty>"
            raise KeyError(f"missing option {key!r} (known: {known})") from None

    def get_int(self, key: str, default: int | None = None) -> int:
        value = self._data.get(key, default)
        if value is None:
            raise KeyError(f"missing integer option {key!r}")
        return int(value)

    def get_float(self, key: str, default: float | None = None) -> float:
        value = self._data.get(key, default)
        if value is None:
            raise KeyError(f"missing float option {key!r}")
        return float(value)

    def get_bool(self, key: str, default: bool | None = None) -> bool:
        value = self._data.get(key, default)
        if value is None:
            raise KeyError(f"missing boolean option {key!r}")
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"option {key!r}={value!r} is not a boolean")
        return bool(value)

    def get_str(self, key: str, default: str | None = None) -> str:
        value = self._data.get(key, default)
        if value is None:
            raise KeyError(f"missing string option {key!r}")
        return str(value)

    # -- container protocol -------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def items(self):
        return self._data.items()

    def as_dict(self) -> dict[str, Any]:
        """Shallow copy of the underlying mapping."""
        return dict(self._data)

    def copy(self) -> "Options":
        return Options(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Options({self._data!r})"


def fast_mode() -> bool:
    """True when the ``REPRO_FAST`` environment flag requests scaled-down
    problem sizes (used by tests and smoke benches)."""
    return os.environ.get("REPRO_FAST", "").strip() not in ("", "0", "false")
