"""Logging setup.

The CCAFFEINE framework de-multiplexes per-rank output through its GUI; our
analog tags every log record with the SCMD rank when one is active.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager

_local = threading.local()


def set_rank(rank: int | None) -> None:
    """Tag the calling thread with an SCMD rank (None clears the tag)."""
    _local.rank = rank


def get_rank() -> int | None:
    return getattr(_local, "rank", None)


@contextmanager
def rank_context(rank: int | None):
    """Tag the calling thread with ``rank`` for the duration of the block,
    restoring the previous tag on exit.

    :func:`repro.mpi.launcher.mpirun` wraps every rank-thread's body in
    this, so log records *and* :mod:`repro.obs` trace events are
    rank-attributed automatically — callers never tag threads by hand.
    Restoring (rather than clearing) matters on the ``nprocs == 1`` fast
    path, which runs rank 0 inline on the caller's own thread.
    """
    previous = get_rank()
    set_rank(rank)
    try:
        yield
    finally:
        set_rank(previous)


class _RankFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        rank = get_rank()
        record.rank = f"[rank {rank}]" if rank is not None else ""
        return True


_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s%(rank)s: %(message)s")
    )
    handler.addFilter(_RankFilter())
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy with rank tagging."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
