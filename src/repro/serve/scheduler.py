"""The async scheduler: a bounded worker pool over the job store.

Workers pull from a priority heap (higher priority first, FIFO within a
priority).  When the job at the head carries a batch plan, the claim
drains every queued job sharing its group key (up to ``batch_size``) and
solves them in one coalesced
:func:`repro.apps.ignition0d.run_ignition0d_batch` call, demultiplexing
per-job results; everything else runs alone through the supervised
runner (:func:`repro.resilience.runner.run_supervised` — retries,
checkpoint/resume, fault-injection passthrough).

Two isolation rules keep concurrent jobs honest:

* **fault jobs run exclusively.**  The fault injector
  (:mod:`repro.resilience.faults`) arms *process-global* state; a clean
  job running beside an armed plan could absorb the fault.  Clean jobs
  hold a shared lock, fault jobs the exclusive side.
* **results are cached after, checked before.**  Every run re-checks
  the content cache at execution time, so a duplicate submitted while
  its twin was queued is answered from the twin's stored result instead
  of recomputed.

Per-tenant observability lands on the metrics registry (schema-1 export
via :mod:`repro.obs.export`): ``serve.queue_seconds`` /
``serve.run_seconds`` histograms (a batched member observes its
amortized share of the batch wall-clock; the raw batch time lands once
in ``serve.batch_seconds``), ``serve.jobs_done`` / ``_failed`` /
``serve.cache_hits`` / ``_misses`` / ``serve.batched_jobs`` counters,
and the batch-occupancy histogram.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from contextlib import ExitStack, contextmanager
from typing import Any, Iterable

from repro.mpi.perfmodel import LOCALHOST, MachineModel
from repro.obs import trace as _trace
from repro.obs.export import export_chrome_trace
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.runner import run_supervised
from repro.serve import jobs as J
from repro.serve.batching import BatchPlan
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobStore, jsonable
from repro.util.logging import get_logger

_log = get_logger("serve.scheduler")

#: histogram edges for batch occupancy (jobs per coalesced solve)
_OCCUPANCY_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class _FaultGate:
    """Shared/exclusive lock: clean jobs share, fault jobs exclude.

    Writer-priority so a queued fault job is not starved by a stream of
    clean jobs.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    @contextmanager
    def shared(self):
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._waiting_writers -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class Scheduler:
    """Bounded worker pool executing jobs from a :class:`JobStore`."""

    def __init__(self, store: JobStore, cache: ResultCache, *,
                 workers: int = 2, batch_size: int = 8,
                 classes: Iterable | None = None,
                 registry: MetricsRegistry | None = None,
                 machine: MachineModel = LOCALHOST) -> None:
        self.store = store
        self.cache = cache
        self.workers = max(1, int(workers))
        self.batch_size = max(1, int(batch_size))
        self.machine = machine
        self.registry = registry if registry is not None else get_registry()
        self._classes = list(classes) if classes is not None else None
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._plans: dict[str, BatchPlan] = {}
        self._seq = 0
        self._active = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._gate = _FaultGate()

    # -- lifecycle --------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._threads)

    def start(self) -> None:
        with self._cond:
            if self._threads:
                return
            self._stopping = False
            self._threads = [
                threading.Thread(target=self._worker, daemon=True,
                                 name=f"serve-worker-{i}")
                for i in range(self.workers)]
        for t in self._threads:
            t.start()

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for t in self._threads:
            t.join()
        self._threads = []

    # -- queue ------------------------------------------------------------
    def enqueue(self, job_id: str, priority: int = 0,
                plan: BatchPlan | None = None) -> None:
        self.enqueue_many([(job_id, priority, plan)])

    def enqueue_many(self, entries: Iterable[
            tuple[str, int, BatchPlan | None]]) -> None:
        """Admit several jobs under one lock so a sweep's batchable
        members are all visible before any worker claims the first."""
        with self._cond:
            for job_id, priority, plan in entries:
                heapq.heappush(self._heap,
                               (-int(priority), self._seq, job_id))
                self._seq += 1
                if plan is not None:
                    self._plans[job_id] = plan
            self._cond.notify_all()

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job.  False once it started running."""
        with self._cond:
            record = self.store.transition(
                job_id, (J.QUEUED,), state=J.CANCELLED,
                finished=time.time())
            if record is None:
                return False
            self._heap = [e for e in self._heap if e[2] != job_id]
            heapq.heapify(self._heap)
            self._plans.pop(job_id, None)
            return True

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no worker is busy."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._heap or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._heap)

    def queued_ids(self) -> set[str]:
        with self._cond:
            return {e[2] for e in self._heap}

    # -- worker loop ------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._heap:
                    self._cond.wait()
                if self._stopping:
                    return
                group = self._claim_locked()
                self._active += 1
            try:
                self._execute(group)
            except Exception:
                _log.exception("worker crashed executing %s", group)
                for job_id in group:
                    self.store.transition(
                        job_id, (J.QUEUED, J.RUNNING), state=J.FAILED,
                        finished=time.time(), error="internal worker error")
            finally:
                with self._cond:
                    self._active -= 1
                    self._cond.notify_all()

    def _claim_locked(self) -> list[str]:
        """Pop the head job; drain queued batch-mates behind it."""
        _, _, head = heapq.heappop(self._heap)
        plan = self._plans.get(head)
        if plan is None:
            return [head]
        mates = [e for e in self._heap
                 if self._plans.get(e[2]) is not None
                 and self._plans[e[2]].group_key == plan.group_key]
        mates.sort()
        take = [e[2] for e in mates[:self.batch_size - 1]]
        if take:
            taken = set(take)
            self._heap = [e for e in self._heap if e[2] not in taken]
            heapq.heapify(self._heap)
        return [head] + take

    # -- execution --------------------------------------------------------
    def _execute(self, group: list[str]) -> None:
        started: list[tuple[str, Any]] = []
        now = time.time()
        for job_id in group:
            record = self.store.transition(
                job_id, (J.QUEUED,), state=J.RUNNING, started=now)
            if record is None:  # cancelled between claim and start
                self._plans.pop(job_id, None)
                continue
            self.registry.histogram(
                "serve.queue_seconds",
                tenant=record.tenant).observe(now - record.created)
            started.append((job_id, record))
        if not started:
            return

        # execution-time cache check: answer duplicates from the twin
        misses: list[tuple[str, Any]] = []
        for job_id, record in started:
            entry = self.cache.get(record.cache_key) \
                if record.cache_key else None
            if entry is not None:
                self._finish_cached(job_id, record, entry)
            else:
                if record.cache_key:
                    self.registry.counter(
                        "serve.cache_misses", tenant=record.tenant).inc()
                misses.append((job_id, record))
        if not misses:
            return
        if len(misses) > 1:
            self._run_batch(misses)
        else:
            self._run_single(*misses[0])

    def _finish_cached(self, job_id: str, record: Any,
                       entry: dict[str, Any]) -> None:
        self.store.write_result(job_id, {
            "schema": J.JOB_SCHEMA, "job_id": job_id,
            "cache_hit": True, "batched": False,
            "result": entry["result"],
        })
        self.store.transition(job_id, (J.RUNNING,), state=J.DONE,
                              finished=time.time(), cache_hit=True)
        self._plans.pop(job_id, None)
        self.registry.counter("serve.cache_hits",
                              tenant=record.tenant).inc()
        self.registry.counter("serve.jobs_done", tenant=record.tenant).inc()

    # -- distributed-trace plumbing ---------------------------------------
    def _write_trace_artifact(self, job_id: str, record: Any,
                              extra_ids: tuple[str, ...] = ()) -> None:
        """Export the job's slice of the session trace into its job dir.

        Every span the job caused carries its ``trace_id`` (the worker
        thread's trace context flows through the supervisor into the
        backend — rank threads re-establish it; ``mp`` workers ship it
        home in their span args), so one filter over the merged session
        events recovers the scheduler → supervisor → rank tree even
        while concurrent jobs interleave.  ``extra_ids`` links batch
        members to their shared ``serve.batch`` span.
        """
        tid = getattr(record, "trace_id", "")
        if not (_trace.on and tid):
            return
        ids = {tid, *extra_ids}
        evs = [e for e in _trace.events()
               if e.args and e.args.get("trace_id") in ids]
        if not evs:
            return
        path = os.path.join(self.store.job_dir(job_id), "trace.json")
        try:
            export_chrome_trace(path, evs)
        except OSError:  # a lost artifact must not fail a finished job
            return
        self.store.transition(job_id, (J.DONE, J.FAILED), trace_path=path)

    def _run_single(self, job_id: str, record: Any) -> None:
        tid = getattr(record, "trace_id", "")
        if not (_trace.on and tid):
            self._run_single_impl(job_id, record)
            return
        with _trace.context(trace_id=tid, job=job_id):
            with _trace.span("serve.job", "serve", job=job_id,
                             tenant=record.tenant):
                self._run_single_impl(job_id, record)
        self._write_trace_artifact(job_id, record)

    def _run_single_impl(self, job_id: str, record: Any) -> None:
        spec = self.store.get_spec(job_id)
        script = spec.effective_script()
        gate = self._gate.exclusive if spec.fault else self._gate.shared
        t0 = time.perf_counter()
        try:
            with gate():
                run = run_supervised(
                    script, self._classes, nprocs=spec.nprocs,
                    retries=spec.retries, backoff=spec.backoff,
                    machine=self.machine, fault=spec.fault or None,
                    backend=spec.backend or None)
        except Exception as exc:
            self._finish_failed(job_id, record,
                                f"{type(exc).__name__}: {exc}")
            return
        elapsed = time.perf_counter() - t0
        self.registry.histogram("serve.run_seconds",
                                tenant=record.tenant).observe(elapsed)
        if not run.ok:
            self._finish_failed(job_id, record,
                                "; ".join(run.failures) or "run failed",
                                attempts=run.attempts,
                                restarts=run.restarts)
            return
        value = run.results[0] if spec.nprocs == 1 else run.results
        payload = {
            "schema": J.JOB_SCHEMA, "job_id": job_id,
            "cache_hit": False, "batched": False,
            "result": jsonable(value),
            "supervisor": run.report.to_json(),
        }
        if record.cache_key:
            self.cache.put(record.cache_key, value, job_id=job_id)
        self.store.write_result(job_id, payload)
        self.store.transition(job_id, (J.RUNNING,), state=J.DONE,
                              finished=time.time(), attempts=run.attempts,
                              restarts=run.restarts)
        self._plans.pop(job_id, None)
        self.registry.counter("serve.jobs_done", tenant=record.tenant).inc()

    def _run_batch(self, misses: list[tuple[str, Any]]) -> None:
        from repro.apps.ignition0d import run_ignition0d_batch

        plans = [self._plans[job_id] for job_id, _ in misses]
        settings = plans[0].settings
        conditions = [p.condition for p in plans]
        # the coalesced solve is one piece of work shared by every
        # member: it runs under its own batch trace id, and each
        # member's artifact filter includes it (linking job -> batch)
        batch_tid = f"tr-batch-{os.urandom(6).hex()}" if _trace.on else ""
        t0 = time.perf_counter()
        try:
            with self._gate.shared(), ExitStack() as stack:
                if batch_tid:
                    stack.enter_context(_trace.context(trace_id=batch_tid))
                    stack.enter_context(_trace.span(
                        "serve.batch", "serve",
                        jobs=[j for j, _ in misses],
                        occupancy=len(misses)))
                results = run_ignition0d_batch(conditions, **settings)
        except Exception as exc:
            # bit-equivalence fallback: the coalesced path failed, run
            # each member alone through the full framework
            _log.warning("batched solve failed (%s: %s); falling back to "
                         "sequential runs", type(exc).__name__, exc)
            for job_id, record in misses:
                self._run_single(job_id, record)
            return
        if len(results) != len(misses):
            # a demux mismatch must never strand jobs in RUNNING: treat
            # it like any other batch failure and solve sequentially
            _log.warning("batched solve returned %d results for %d "
                         "jobs; falling back to sequential runs",
                         len(results), len(misses))
            for job_id, record in misses:
                self._run_single(job_id, record)
            return
        elapsed = time.perf_counter() - t0
        occupancy = len(misses)
        self.registry.histogram("serve.batch_occupancy",
                                edges=_OCCUPANCY_EDGES).observe(occupancy)
        # the batch wall-clock is recorded once; each member observes its
        # amortized share so per-tenant run-time histograms stay
        # comparable with sequential execution of the same jobs
        self.registry.histogram("serve.batch_seconds").observe(elapsed)
        share = elapsed / occupancy
        for (job_id, record), result in zip(misses, results):
            self.registry.histogram("serve.run_seconds",
                                    tenant=record.tenant).observe(share)
            if record.cache_key:
                self.cache.put(record.cache_key, result, job_id=job_id,
                               batched=True)
            self.store.write_result(job_id, {
                "schema": J.JOB_SCHEMA, "job_id": job_id,
                "cache_hit": False, "batched": True,
                "batch_size": occupancy,
                "result": jsonable(result),
            })
            self.store.transition(job_id, (J.RUNNING,), state=J.DONE,
                                  finished=time.time(), batched=True,
                                  batch_size=occupancy)
            self._plans.pop(job_id, None)
            member_tid = getattr(record, "trace_id", "")
            if _trace.on and member_tid:
                _trace.instant("serve.job_done", "serve",
                               trace_id=member_tid, job=job_id,
                               batch_trace_id=batch_tid,
                               batch_size=occupancy)
                self._write_trace_artifact(job_id, record,
                                           extra_ids=(batch_tid,))
            self.registry.counter("serve.jobs_done",
                                  tenant=record.tenant).inc()
            self.registry.counter("serve.batched_jobs",
                                  tenant=record.tenant).inc()

    def _finish_failed(self, job_id: str, record: Any, error: str,
                       attempts: int = 0, restarts: int = 0) -> None:
        self.store.transition(job_id, (J.RUNNING,), state=J.FAILED,
                              finished=time.time(), error=error,
                              attempts=attempts, restarts=restarts)
        self._plans.pop(job_id, None)
        self.registry.counter("serve.jobs_failed",
                              tenant=record.tenant).inc()
        _log.warning("job %s failed: %s", job_id, error)
