"""The multi-tenant simulation service facade.

One object ties the subsystem together: a :class:`~repro.serve.jobs.JobStore`
for durability, a :class:`~repro.serve.cache.ResultCache` for
content-addressed reuse, a :class:`~repro.serve.scheduler.Scheduler` for
execution, and the metrics registry for per-tenant observability.  The
CLI (:mod:`repro.serve.__main__`) is a thin shell over this class;
library users drive it directly::

    with SimulationService(root) as svc:
        job_id = svc.submit(script, params={"Initializer.T0": 1100.0},
                            tenant="alice")
        svc.drain()
        result = svc.result(job_id)["result"]

Everything is filesystem-backed under ``root`` — no sockets, no
daemons — so separate CLI invocations (submit now, run later, query
after) compose through the store, and tests stay hermetic.

*Admission control*: before a job is enqueued, the RA41x contract pass
(:func:`repro.analysis.contracts.check_job`) statically validates the
script and the overrides against the committed component manifests.
Error findings (unknown parameter, out-of-range value, wrong type,
missing required parameter, unconnected required port, unknown
execution backend) fail the job instantly — the findings land on the job record, a per-tenant
``serve.rejected`` counter ticks, and no worker ever sees it.
Warning-severity findings are recorded on the job and it proceeds.
Admitted override values are coerced to their declared manifest types,
so ``"1100"`` and ``1100.0`` share one cache address.  Pass
``admission=False`` to restore the old trust-the-caller behavior.

*Starting the workers* (``autostart=True`` or an explicit
:meth:`SimulationService.start`) first *recovers* the store: jobs found
``queued`` are re-enqueued; jobs found ``running`` (a previous process
died mid-run) are re-queued too — the supervised runner makes
re-execution safe, and the content cache makes it cheap when the result
actually landed.  A service opened with ``autostart=False`` for
read-only access (status / result / stats / cancel) never mutates other
jobs' states, so querying the store is safe while another process is
executing it.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.contracts import check_job, coerce_job_params
from repro.analysis.findings import Severity
from repro.errors import ReproError, ServeError
from repro.obs import trace as _trace
from repro.obs.export import metrics_payload
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serve import jobs as J
from repro.serve.batching import BatchPlan, plan_for
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, JobStore
from repro.serve.scheduler import Scheduler


class SimulationService:
    """Submit / schedule / batch / cache / observe (see module doc)."""

    def __init__(self, root: str, *, workers: int = 2, batch_size: int = 8,
                 classes: Iterable | None = None,
                 registry: MetricsRegistry | None = None,
                 fingerprint: Mapping[str, Any] | None = None,
                 autostart: bool = True, admission: bool = True) -> None:
        self.root = root
        #: static admission control: run the RA41x contract pass over
        #: (script + overrides) at submit; error findings fail the job
        #: instantly with the findings on the record — no worker runs.
        self.admission = bool(admission)
        os.makedirs(root, exist_ok=True)
        self.store = JobStore(os.path.join(root, "jobs"))
        self.cache = ResultCache(os.path.join(root, "cache"),
                                 fingerprint=fingerprint)
        self.registry = registry if registry is not None else get_registry()
        self.scheduler = Scheduler(self.store, self.cache, workers=workers,
                                   batch_size=batch_size, classes=classes,
                                   registry=self.registry)
        if autostart:
            self.start()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> list[str]:
        """Recover the store, then start the worker pool.

        Recovery only happens here — never on read-only access — so a
        status/result/stats query cannot re-queue a job another process
        is running.  Returns the recovered (re-enqueued) job ids.
        """
        if self.scheduler.running:  # never re-queue our own live jobs
            return []
        recovered = self._recover()
        self.scheduler.start()
        return recovered

    def _recover(self) -> list[str]:
        """Re-enqueue jobs a previous process left unfinished."""
        pending: list[tuple[str, int, BatchPlan | None]] = []
        known = self.scheduler.queued_ids()
        for record in self.store.records():
            if record.job_id in known:  # submitted by this process
                continue
            if record.state == J.RUNNING:
                record = self.store.transition(
                    record.job_id, (J.RUNNING,), state=J.QUEUED,
                    started=0.0)
                if record is None:
                    continue
            if record.state != J.QUEUED:
                continue
            try:
                spec = self.store.get_spec(record.job_id)
            except ServeError:
                continue
            pending.append((record.job_id, record.priority,
                            self._plan(spec)))
        if pending:
            self.scheduler.enqueue_many(pending)
        return [job_id for job_id, _, _ in pending]

    def close(self) -> None:
        self.scheduler.stop()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -------------------------------------------------------
    @staticmethod
    def _plan(spec: JobSpec) -> BatchPlan | None:
        """Fault-injected, multi-rank, or non-default-backend jobs never
        batch; the planner decides for the rest.  (A coalesced batch is
        solved once by the worker thread — routing it through another
        execution backend would silently change what the tenant asked
        for.)"""
        if spec.fault or spec.nprocs != 1 or spec.backend:
            return None
        return plan_for(spec.script, spec.params)

    @staticmethod
    def _canonical_backend(backend: str) -> str:
        """The registry-canonical backend name ("" stays "" — the
        service default).  Unknown names raise; :meth:`_submit_one`
        turns that into an RA419 rejection instead of propagating."""
        backend = str(backend or "").strip()
        if not backend:
            return ""
        from repro.exec import resolve_name
        return resolve_name(backend)

    def submit(self, script: str, *,
               params: Mapping[str, Any] | None = None,
               tenant: str = "default", priority: int = 0, nprocs: int = 1,
               retries: int = 0, backoff: float = 0.0, fault: str = "",
               use_cache: bool = True, backend: str = "") -> str:
        """Register one job; returns its id.  A content-cache hit at
        submit time completes the job immediately (no queue round
        trip)."""
        job_id, pending = self._submit_one(
            script, params=params, tenant=tenant, priority=priority,
            nprocs=nprocs, retries=retries, backoff=backoff, fault=fault,
            use_cache=use_cache, backend=backend)
        if pending is not None:
            self.scheduler.enqueue_many([pending])
        return job_id

    @staticmethod
    def _mint_trace_id() -> str:
        """A fresh distributed-trace id (stamped on the job record and
        carried by every span the job causes)."""
        return f"tr-{os.urandom(6).hex()}"

    def _submit_one(self, script: str, *, params, tenant, priority, nprocs,
                    retries, backoff, fault, use_cache,
                    backend="") -> tuple[
                        str, tuple[str, int, BatchPlan | None] | None]:
        trace_id = self._mint_trace_id()
        overrides = J.canonical_params(params)
        findings: list = []
        errors: list = []
        if self.admission:
            findings = check_job(script, overrides,
                                 backend=str(backend or ""))
            errors = [f for f in findings if f.severity >= Severity.ERROR]
            if not errors:
                # coerce override values to their declared manifest
                # types so "1100" and 1100.0 key the cache identically
                overrides = coerce_job_params(script, overrides)
        try:
            backend = self._canonical_backend(backend)
        except ReproError:
            # unknown backend: with admission on, the RA419 finding has
            # already put the job on the rejection path below; with
            # admission off, keep the verbatim name and let the
            # scheduler's own resolve surface the error at run time.
            backend = str(backend or "").strip()
        spec = JobSpec(script=script, params=overrides,
                       tenant=str(tenant), priority=int(priority),
                       nprocs=int(nprocs), retries=int(retries),
                       backoff=float(backoff), fault=str(fault or ""),
                       use_cache=bool(use_cache),
                       backend=backend)
        if errors:
            record = self.store.new_job(spec)
            now = time.time()
            first = errors[0]
            self.store.transition(
                record.job_id, (J.QUEUED,), state=J.FAILED, started=now,
                finished=now, rejected=True, backend=spec.backend,
                trace_id=trace_id,
                findings=[f.to_dict() for f in findings],
                error=(f"admission: {len(errors)} contract error(s); "
                       f"first: {first.code} {first.message}"))
            self.registry.counter("serve.jobs_submitted",
                                  tenant=spec.tenant).inc()
            self.registry.counter("serve.rejected",
                                  tenant=spec.tenant).inc()
            return record.job_id, None
        plan = self._plan(spec)
        # fault-injected runs are experiments on the failure path, not
        # reusable results: exclude them from the cache entirely
        key = self.cache.key(script, spec.params, nprocs=spec.nprocs,
                             backend=spec.backend) \
            if spec.use_cache and not spec.fault else ""
        record = self.store.new_job(spec)
        self.store.transition(record.job_id, (J.QUEUED,), cache_key=key,
                              signature=plan.group_key if plan else "",
                              backend=spec.backend, trace_id=trace_id,
                              findings=[f.to_dict() for f in findings])
        self.registry.counter("serve.jobs_submitted", tenant=spec.tenant).inc()
        if _trace.on:
            _trace.instant("serve.submit", "serve", trace_id=trace_id,
                           job=record.job_id, tenant=spec.tenant)
        entry = self.cache.get(key) if key else None
        if entry is not None:
            now = time.time()
            self.store.write_result(record.job_id, {
                "schema": J.JOB_SCHEMA, "job_id": record.job_id,
                "cache_hit": True, "batched": False,
                "result": entry["result"],
            })
            self.store.transition(record.job_id, (J.QUEUED,), state=J.DONE,
                                  started=now, finished=now, cache_hit=True)
            self.registry.counter("serve.cache_hits",
                                  tenant=spec.tenant).inc()
            self.registry.counter("serve.jobs_done",
                                  tenant=spec.tenant).inc()
            return record.job_id, None
        return record.job_id, (record.job_id, spec.priority, plan)

    def sweep(self, script: str, grid: Mapping[str, Sequence[Any]], *,
              params: Mapping[str, Any] | None = None,
              **submit_kwargs: Any) -> list[str]:
        """Submit the cartesian product of ``grid`` as one job family.

        ``grid`` maps override keys (``"Initializer.T0"``) to value
        lists; ``params`` holds overrides common to every point.  All
        jobs are enqueued under one lock so the batching planner sees
        the whole family before the first claim.
        """
        if not grid:
            raise ServeError("sweep needs a non-empty grid")
        keys = sorted(grid)
        job_ids: list[str] = []
        pending: list[tuple[str, int, BatchPlan | None]] = []
        for values in itertools.product(*(grid[k] for k in keys)):
            point = dict(params or {})
            point.update(dict(zip(keys, values)))
            job_id, entry = self._submit_one(
                script, params=point,
                tenant=submit_kwargs.get("tenant", "default"),
                priority=submit_kwargs.get("priority", 0),
                nprocs=submit_kwargs.get("nprocs", 1),
                retries=submit_kwargs.get("retries", 0),
                backoff=submit_kwargs.get("backoff", 0.0),
                fault=submit_kwargs.get("fault", ""),
                use_cache=submit_kwargs.get("use_cache", True),
                backend=submit_kwargs.get("backend", ""))
            job_ids.append(job_id)
            if entry is not None:
                pending.append(entry)
        if pending:
            self.scheduler.enqueue_many(pending)
        return job_ids

    # -- queries ----------------------------------------------------------
    def status(self, job_id: str) -> dict[str, Any]:
        return self.store.get_record(job_id).to_json()

    def result(self, job_id: str) -> dict[str, Any]:
        """The stored result payload of a finished job."""
        record = self.store.get_record(job_id)
        if record.state == J.FAILED:
            raise ServeError(f"job {job_id} failed: {record.error}")
        if record.state != J.DONE:
            raise ServeError(f"job {job_id} is {record.state}, not done")
        return self.store.read_result(job_id)

    def cancel(self, job_id: str) -> bool:
        self.store.get_record(job_id)  # raise ServeError on unknown id
        return self.scheduler.cancel(job_id)

    def drain(self, timeout: float | None = None) -> bool:
        return self.scheduler.drain(timeout)

    # -- observability ----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Service-level statistics: a schema-1 metrics envelope (the
        registry's ``serve.*`` records) plus durable aggregates derived
        from the job store, per tenant and total."""
        records = self.store.records()
        by_state: dict[str, int] = {s: 0 for s in J.STATES}
        tenants: dict[str, dict[str, Any]] = {}
        occupancies: list[int] = []
        for r in records:
            by_state[r.state] = by_state.get(r.state, 0) + 1
            t = tenants.setdefault(r.tenant, {
                "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
                "rejected": 0, "cache_hits": 0, "batched": 0})
            t["submitted"] += 1
            if r.rejected:
                t["rejected"] += 1
            if r.state == J.DONE:
                t["done"] += 1
            elif r.state == J.FAILED:
                t["failed"] += 1
            elif r.state == J.CANCELLED:
                t["cancelled"] += 1
            if r.cache_hit:
                t["cache_hits"] += 1
            if r.batched:
                t["batched"] += 1
                occupancies.append(r.batch_size)
        for t in tenants.values():
            finished = t["done"] + t["failed"]
            t["cache_hit_ratio"] = (t["cache_hits"] / finished
                                    if finished else 0.0)
        traces = {
            r.job_id: {"trace_id": r.trace_id,
                       "artifact": r.trace_path or None}
            for r in records
            if r.trace_id and r.state in J.TERMINAL
        }
        payload = metrics_payload(self.registry, prefix="serve.")
        payload.update({
            "traces": traces,
            "jobs": {"total": len(records), **by_state},
            "tenants": tenants,
            "cache": {
                "entries": len(self.cache),
                "hits": sum(t["cache_hits"] for t in tenants.values()),
            },
            "batching": {
                "batched_jobs": sum(t["batched"]
                                    for t in tenants.values()),
                "mean_occupancy": (sum(occupancies) / len(occupancies)
                                   if occupancies else 0.0),
            },
            "queue_depth": self.scheduler.queue_depth(),
        })
        return payload


def load_script(script: str | None, script_path: str | None) -> str:
    """Resolve the script text from inline text or a file path."""
    if (script is None) == (script_path is None):
        raise ServeError("exactly one of script / script_path is required")
    if script is not None:
        return script
    try:
        with open(script_path, encoding="utf-8") as fh:  # type: ignore[arg-type]
            return fh.read()
    except OSError as exc:
        raise ServeError(f"cannot read script {script_path!r}: {exc}") \
            from None


__all__ = ["SimulationService", "load_script"]
