"""The batching planner: which queued jobs may share one solve.

A job is *batchable* when its effective script (overrides applied) is
recognizably the canonical 0D-ignition assembly — the same seven
component classes, the same ten connections, one ``go`` on the driver —
and every ``parameter`` directive belongs to a known family:

* **conditions** (may differ across the batch): ``Initializer`` T0 / P0 /
  phi, ``ThermoChemistry`` rate_scale;
* **settings** (must match for jobs to coalesce): mechanism, rtol,
  atol, method, t_end, n_output.

The plan hashes the settings into a *group key*; the scheduler coalesces
queued jobs sharing a group key into one
:func:`repro.apps.ignition0d.run_ignition0d_batch` call and demuxes the
per-condition results.  Anything the template does not recognize —
renamed instances are fine (matching is by *class*), but an extra
component, an unknown parameter (e.g. checkpointing knobs), a fault
spec — yields ``None`` and the job simply runs sequentially through the
full framework.  Batching is an optimization with a bitwise-equivalence
contract, never a semantic fork.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cca.script import _parse_value, parse_script
from repro.errors import ScriptError
from repro.serve.jobs import apply_overrides

BATCH_SCHEMA = 1

#: classes of the canonical assembly, each instantiated exactly once
_CLASSES = frozenset({
    "Initializer", "ThermoChemistry", "ProblemModeler", "DPDt",
    "CvodeComponent", "StatisticsComponent", "Ignition0DDriver",
})

#: the assembly's wiring, expressed over classes (instance names are free)
_CONNECTS = frozenset({
    ("Initializer", "chem", "ThermoChemistry", "chemistry"),
    ("DPDt", "chem", "ThermoChemistry", "chemistry"),
    ("ProblemModeler", "chem", "ThermoChemistry", "chemistry"),
    ("ProblemModeler", "dpdt", "DPDt", "dpdt"),
    ("CvodeComponent", "rhs", "ProblemModeler", "model"),
    ("Ignition0DDriver", "ic", "Initializer", "ic"),
    ("Ignition0DDriver", "solver", "CvodeComponent", "solver"),
    ("Ignition0DDriver", "model", "ProblemModeler", "model"),
    ("Ignition0DDriver", "chem", "ThermoChemistry", "chemistry"),
    ("Ignition0DDriver", "stats", "StatisticsComponent", "stats"),
})

#: (class, parameter) -> per-job condition name
_CONDITION_KEYS = {
    ("Initializer", "T0"): "T0",
    ("Initializer", "P0"): "P0",
    ("Initializer", "phi"): "phi",
    ("ThermoChemistry", "rate_scale"): "rate_scale",
}

#: (class, parameter) -> (setting name, converter)
_SETTING_KEYS = {
    ("ThermoChemistry", "mechanism"): ("mechanism", str),
    ("CvodeComponent", "rtol"): ("rtol", float),
    ("CvodeComponent", "atol"): ("atol", float),
    ("CvodeComponent", "method"): ("method", str),
    ("Ignition0DDriver", "t_end"): ("t_end", float),
    ("Ignition0DDriver", "n_output"): ("n_output", int),
}

#: shared-setting defaults (= the component parameter defaults)
DEFAULT_SETTINGS = {
    "mechanism": "h2-air",
    "rtol": 1e-8,
    "atol": 1e-12,
    "method": "bdf",
    "t_end": 1e-3,
    "n_output": 20,
}


@dataclass(frozen=True)
class BatchPlan:
    """One job's membership card for a coalesced solve."""

    #: jobs with equal group keys may share one batched call
    group_key: str
    #: kwargs for :func:`repro.apps.ignition0d.run_ignition0d_batch`
    settings: dict[str, Any] = field(hash=False)
    #: this job's row of the batch (T0 / P0 / phi / rate_scale)
    condition: dict[str, float] = field(hash=False)


def plan_for(script: str, params: Mapping[str, Any] | None = None
             ) -> BatchPlan | None:
    """A :class:`BatchPlan` when (script, params) is the canonical
    0D-ignition assembly with only recognized parameters; else None."""
    try:
        text = apply_overrides(script, params)
        directives = parse_script(text)
    except Exception:
        return None

    class_of: dict[str, str] = {}
    connects: set[tuple[str, str, str, str]] = set()
    parameters: dict[tuple[str, str], Any] = {}
    gos: list[tuple[str, str]] = []
    for d in directives:
        if d.verb == "instantiate":
            cls, instance = d.args
            if instance in class_of:
                return None  # duplicate instance name: not the template
            class_of[instance] = cls
        elif d.verb == "connect":
            connects.add(d.args)
        elif d.verb == "parameter":
            parameters[(d.args[0], d.args[1])] = _parse_value(
                list(d.args[2:]))
        elif d.verb == "go":
            gos.append((d.args[0],
                        d.args[1] if len(d.args) == 2 else "go"))
        # "repository" directives are existence assertions; ignore

    # shape check: exactly the seven classes, once each
    if set(class_of.values()) != _CLASSES or len(class_of) != len(_CLASSES):
        return None
    # wiring check, lifted from instances to classes
    try:
        lifted = {(class_of[u], up, class_of[p], pp)
                  for (u, up, p, pp) in connects}
    except KeyError:
        return None  # connect names an instance that was never created
    if lifted != _CONNECTS:
        return None
    # exactly one go, on the driver's default go port
    if len(gos) != 1:
        return None
    go_instance, go_port = gos[0]
    if class_of.get(go_instance) != "Ignition0DDriver" or go_port != "go":
        return None

    settings = dict(DEFAULT_SETTINGS)
    condition: dict[str, float] = {}
    for (instance, key), value in parameters.items():
        owner = class_of.get(instance)
        if owner is None:
            return None
        ckey = _CONDITION_KEYS.get((owner, key))
        if ckey is not None:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                return None
            condition[ckey] = float(value)
            continue
        skey = _SETTING_KEYS.get((owner, key))
        if skey is None:
            return None  # unknown parameter (checkpointing, ...): bail
        name, conv = skey
        try:
            settings[name] = conv(value)
        except (TypeError, ValueError):
            return None

    blob = json.dumps({"schema": BATCH_SCHEMA, "settings": settings},
                      sort_keys=True, separators=(",", ":"))
    group_key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return BatchPlan(group_key=group_key, settings=settings,
                     condition=condition)


__all__ = ["BatchPlan", "plan_for", "DEFAULT_SETTINGS"]
