"""``python -m repro.serve`` — the service front end.

Hermetic by construction: every subcommand talks to a filesystem-backed
job store under ``--root`` (default ``$REPRO_SERVE_ROOT`` or
``.repro_serve``), so *submit now, run later, query after* compose
across separate invocations with no daemon and no network::

    python -m repro.serve submit examples/ignition0d.rc \\
        --param Initializer.T0=1100 --tenant alice
    python -m repro.serve sweep examples/ignition0d.rc \\
        --grid Initializer.T0=1000:1150:12 --tenant alice --run
    python -m repro.serve run                  # execute everything queued
    python -m repro.serve status j-000001
    python -m repro.serve result j-000001
    python -m repro.serve stats

Grid values are either comma lists (``bdf,adams``) or
``start:stop:count`` linear spans (``1000:1150:12``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

import numpy as np

from repro.errors import ReproError, ServeError
from repro.resilience.runner import parse_fault_spec
from repro.serve import jobs as J
from repro.serve.service import SimulationService, load_script

DEFAULT_ROOT = ".repro_serve"


def _root(args: argparse.Namespace) -> str:
    return args.root or os.environ.get("REPRO_SERVE_ROOT", DEFAULT_ROOT)


def _parse_param(item: str) -> tuple[str, str]:
    if "=" not in item:
        raise ServeError(
            f"bad --param {item!r} (expected Instance.key=value)")
    key, value = item.split("=", 1)
    return key.strip(), value.strip()


def _parse_grid_values(spec: str) -> list[Any]:
    """``a,b,c`` enumerations or ``start:stop:count`` linear spans."""
    parts = spec.split(":")
    if len(parts) == 3:
        try:
            lo, hi, n = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError:
            pass
        else:
            if n < 1:
                raise ServeError(f"grid span {spec!r} needs count >= 1")
            return [float(v) for v in np.linspace(lo, hi, n)]
    return [v.strip() for v in spec.split(",") if v.strip()]


def _print_json(doc: Any) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def _service(args: argparse.Namespace, *,
             autostart: bool) -> SimulationService:
    return SimulationService(_root(args), workers=getattr(args, "workers", 2),
                             batch_size=getattr(args, "batch_size", 8),
                             autostart=autostart,
                             admission=not getattr(args, "no_admission",
                                                   False))


def _submit_kwargs(args: argparse.Namespace) -> dict[str, Any]:
    if args.fault:
        parse_fault_spec(args.fault)  # fail fast on a bad spec
    return {
        "tenant": args.tenant,
        "priority": args.priority,
        "nprocs": args.nprocs,
        "retries": args.retries,
        "backoff": args.backoff,
        "fault": args.fault,
        "use_cache": not args.no_cache,
        "backend": args.backend,
    }


def _drain_and_report(svc: SimulationService, job_ids: list[str]) -> int:
    svc.drain()
    failed = [j for j in job_ids
              if svc.status(j)["state"] == J.FAILED]
    for job_id in failed:
        print(f"{job_id}: FAILED: {svc.status(job_id)['error']}",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_submit(args: argparse.Namespace) -> int:
    script = load_script(None, args.script)
    params = dict(_parse_param(p) for p in args.param)
    with _service(args, autostart=args.run) as svc:
        job_id = svc.submit(script, params=params, **_submit_kwargs(args))
        print(job_id)
        if args.run:
            return _drain_and_report(svc, [job_id])
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    script = load_script(None, args.script)
    params = dict(_parse_param(p) for p in args.param)
    grid: dict[str, list[Any]] = {}
    for item in args.grid:
        key, spec = _parse_param(item)
        grid[key] = _parse_grid_values(spec)
    with _service(args, autostart=args.run) as svc:
        job_ids = svc.sweep(script, grid, params=params,
                            **_submit_kwargs(args))
        for job_id in job_ids:
            print(job_id)
        if args.run:
            return _drain_and_report(svc, job_ids)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with _service(args, autostart=False) as svc:
        queued = svc.start()  # recovery happens here, not in __init__
        code = _drain_and_report(svc, queued)
        done = sum(1 for j in queued if svc.status(j)["state"] == J.DONE)
        print(f"processed {len(queued)} job(s): {done} done, "
              f"{len(queued) - done} not done")
        return code


def _cmd_status(args: argparse.Namespace) -> int:
    with _service(args, autostart=False) as svc:
        if args.job_id:
            _print_json(svc.status(args.job_id))
        else:
            _print_json([r.to_json() for r in svc.store.records()])
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    with _service(args, autostart=False) as svc:
        _print_json(svc.result(args.job_id))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    with _service(args, autostart=False) as svc:
        ok = svc.cancel(args.job_id)
        print(f"{args.job_id}: {'cancelled' if ok else 'not cancellable'}")
        return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    with _service(args, autostart=False) as svc:
        payload = svc.stats()
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(args.out)
    else:
        _print_json(payload)
    return 0


def _add_submit_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--param", action="append", default=[],
                   metavar="Instance.key=value",
                   help="parameter override (repeatable)")
    p.add_argument("--tenant", default="default")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--nprocs", type=int, default=1)
    p.add_argument("--retries", type=int, default=0)
    p.add_argument("--backoff", type=float, default=0.0)
    p.add_argument("--fault", default="",
                   help="fault-injection spec (key=value[,key=value...])")
    p.add_argument("--backend", default="",
                   help="execution backend: threads | mp | mpiexec "
                        "(default: the service default, $REPRO_BACKEND "
                        "then threads); unknown names are rejected at "
                        "admission (RA419)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed result cache")
    p.add_argument("--no-admission", action="store_true",
                   help="skip the RA41x static admission gate (contract "
                        "pass over script + overrides at submit)")
    p.add_argument("--run", action="store_true",
                   help="execute immediately instead of only queueing")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=8)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant simulation service over a filesystem "
                    "job store.")
    parser.add_argument("--root", default=None,
                        help=f"service root (default: $REPRO_SERVE_ROOT "
                             f"or {DEFAULT_ROOT})")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="queue one job")
    p.add_argument("script", help="rc-script path")
    _add_submit_options(p)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("sweep", help="queue a parameter-grid job family")
    p.add_argument("script", help="rc-script path")
    p.add_argument("--grid", action="append", required=True,
                   metavar="Instance.key=v1,v2|lo:hi:n",
                   help="sweep axis (repeatable; cartesian product)")
    _add_submit_options(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("run", help="execute every queued job, then exit")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=8)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("status", help="job record(s) as JSON")
    p.add_argument("job_id", nargs="?", default=None)
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("result", help="stored result of a finished job")
    p.add_argument("job_id")
    p.set_defaults(func=_cmd_result)

    p = sub.add_parser("cancel", help="cancel a still-queued job")
    p.add_argument("job_id")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser("stats", help="service statistics "
                                     "(schema-1 metrics envelope)")
    p.add_argument("--out", default=None, help="write JSON here instead "
                                               "of stdout")
    p.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
