"""Job model and the filesystem-backed job store.

A *job* is one request to run an assembly: an rc-script (inline text)
plus a parameter-override dict, stamped with a tenant label and a
priority.  The store keeps every job as a directory of small JSON
documents under ``<root>/<job_id>/``::

    spec.json      what was asked (script, params, tenant, knobs)
    record.json    where it is (state, timestamps, cache/batch markers)
    result.json    what came out (written once, on completion)

All writes are atomic (tmp + ``os.replace``) and state transitions are
guarded, so a crashed service leaves a store the next boot can recover:
``queued`` records are re-enqueued, ``running`` ones are re-queued too
(the run never finished — the supervised runner makes re-execution
safe), terminal states are left alone.  No sockets, no daemons: the
store *is* the service's interface with the disk, which keeps tests and
CI hermetic.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.cca.script import parse_script
from repro.errors import ServeError

JOB_SCHEMA = 1

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
#: States a job never leaves.
TERMINAL = (DONE, FAILED, CANCELLED)

_ID_RE = re.compile(r"^j-(\d{6,})$")


def jsonable(value: Any) -> Any:
    """Recursively convert a result object to plain JSON types.

    Arrays and tuples become lists, numpy scalars become Python
    numbers — float values survive the JSON round trip bitwise, which is
    what lets cached and batched results be compared for exact equality
    with fresh sequential runs.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    return repr(value)


def normalize_value(value: Any) -> Any:
    """Parameter values as the rc-script parser would see them: strings
    are tried as int, then float, else kept; numbers pass through.  Used
    for canonical cache keys, so ``--param Driver.t_end=0.001`` from the
    CLI and ``{"Driver.t_end": 0.001}`` from Python key identically."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value
    text = str(value)
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


def canonical_params(params: Mapping[str, Any] | None) -> dict[str, Any]:
    """Sorted, value-normalized override dict (the cache-key form)."""
    out: dict[str, Any] = {}
    for key, value in (params or {}).items():
        key = str(key)
        if "." not in key:
            raise ServeError(
                f"parameter override key {key!r} must be "
                f"'<Instance>.<key>'")
        out[key] = normalize_value(value)
    return dict(sorted(out.items()))


def _format_value(value: Any) -> str:
    """Override value as rc-script text (``repr`` for floats keeps every
    bit through the parse round trip)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def apply_overrides(text: str, params: Mapping[str, Any] | None) -> str:
    """The job's effective script: ``parameter`` overrides applied.

    Existing ``parameter <instance> <key> ...`` lines matching an
    override are rewritten in place — but only when they precede the
    first ``go``, since later ones do not take effect.  Overrides with
    no effective existing line (missing, or present only after the
    ``go``) are injected ahead of the first ``go``, preserving the
    directive order the assembly relies on.
    """
    params = canonical_params(params)
    if not params:
        return text
    directives = parse_script(text)
    by_line: dict[int, tuple[str, str]] = {}
    for d in directives:
        if d.verb == "parameter":
            by_line[d.line_no] = (d.args[0], d.args[1])
    go_lines = [d.line_no for d in directives if d.verb == "go"]
    first_go = min(go_lines) if go_lines else None
    lines = text.splitlines()
    seen: set[str] = set()
    for line_no, (instance, key) in by_line.items():
        if first_go is not None and line_no > first_go:
            continue  # inert line; the override is injected instead
        dotted = f"{instance}.{key}"
        if dotted in params:
            lines[line_no - 1] = (
                f"parameter {instance} {key} "
                f"{_format_value(params[dotted])}")
            seen.add(dotted)
    inject = [f"parameter {k.split('.', 1)[0]} {k.split('.', 1)[1]} "
              f"{_format_value(v)}"
              for k, v in params.items() if k not in seen]
    if inject:
        cut = (first_go - 1) if first_go is not None else len(lines)
        lines = lines[:cut] + inject + lines[cut:]
    return "\n".join(lines)


@dataclass
class JobSpec:
    """What a tenant asked for (immutable once stored)."""

    script: str
    params: dict[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    nprocs: int = 1
    retries: int = 0
    backoff: float = 0.0
    #: fault-injection spec string (see
    #: :func:`repro.resilience.runner.parse_fault_spec`); "" = none.
    #: Fault-injected jobs are never cached and never batched.
    fault: str = ""
    use_cache: bool = True
    #: execution backend name (see :mod:`repro.exec`); "" = the service
    #: default.  Stored canonicalized at submit; part of the cache key.
    backend: str = ""

    def effective_script(self) -> str:
        return apply_overrides(self.script, self.params)

    def to_json(self) -> dict[str, Any]:
        return {"schema": JOB_SCHEMA, **asdict(self)}

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "JobSpec":
        fields = {k: doc[k] for k in (
            "script", "params", "tenant", "priority", "nprocs", "retries",
            "backoff", "fault", "use_cache", "backend") if k in doc}
        return JobSpec(**fields)


@dataclass
class JobRecord:
    """Where a job is in its lifecycle (mutated through the store)."""

    job_id: str
    tenant: str = "default"
    priority: int = 0
    state: str = QUEUED
    created: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    error: str = ""
    cache_hit: bool = False
    batched: bool = False
    #: jobs solved together in this job's coalesced batch (0 = ran alone)
    batch_size: int = 0
    attempts: int = 0
    restarts: int = 0
    #: canonical execution backend the job runs (ran) under
    backend: str = ""
    cache_key: str = ""
    #: batch-group key (jobs sharing it may coalesce); "" = not batchable
    signature: str = ""
    #: failed static admission (RA41x contract errors) — never ran
    rejected: bool = False
    #: admission findings (Finding.to_dict() docs): all of them for a
    #: rejected job, warnings-only for an admitted one
    findings: list = field(default_factory=list)
    #: distributed-trace id minted at submit; every span the job causes
    #: (scheduler, supervisor, backend ranks) carries it in its args
    trace_id: str = ""
    #: per-job Chrome trace artifact (written when the service traces)
    trace_path: str = ""

    def to_json(self) -> dict[str, Any]:
        return {"schema": JOB_SCHEMA, **asdict(self)}

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "JobRecord":
        fields = {k: doc[k] for k in (
            "job_id", "tenant", "priority", "state", "created", "started",
            "finished", "error", "cache_hit", "batched", "batch_size",
            "attempts", "restarts", "backend", "cache_key", "signature",
            "rejected", "findings", "trace_id", "trace_path") if k in doc}
        return JobRecord(**fields)


def _write_json(path: str, doc: Mapping[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class JobStore:
    """Filesystem job store (see the module docstring).

    One in-process lock guards id allocation and state transitions; the
    individual document writes are atomic, so concurrent submitters and
    worker threads never observe a torn record.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths ------------------------------------------------------------
    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.root, job_id)

    def _doc(self, job_id: str, name: str) -> str:
        return os.path.join(self.job_dir(job_id), name)

    # -- creation ---------------------------------------------------------
    def new_job(self, spec: JobSpec) -> JobRecord:
        """Allocate an id (atomic ``mkdir``), persist spec + record."""
        with self._lock:
            serial = self._next_serial()
            while True:
                job_id = f"j-{serial:06d}"
                try:
                    os.mkdir(self.job_dir(job_id))
                    break
                except FileExistsError:
                    serial += 1
            record = JobRecord(job_id=job_id, tenant=spec.tenant,
                               priority=spec.priority, state=QUEUED,
                               created=time.time())
            _write_json(self._doc(job_id, "spec.json"), spec.to_json())
            _write_json(self._doc(job_id, "record.json"), record.to_json())
            return record

    def _next_serial(self) -> int:
        top = 0
        for name in os.listdir(self.root):
            m = _ID_RE.match(name)
            if m:
                top = max(top, int(m.group(1)))
        return top + 1

    # -- reads ------------------------------------------------------------
    def job_ids(self) -> list[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n for n in names if _ID_RE.match(n))

    def get_spec(self, job_id: str) -> JobSpec:
        try:
            return JobSpec.from_json(_read_json(self._doc(job_id,
                                                          "spec.json")))
        except (OSError, ValueError, KeyError) as exc:
            raise ServeError(f"no job {job_id!r}: {exc}") from None

    def get_record(self, job_id: str) -> JobRecord:
        try:
            return JobRecord.from_json(
                _read_json(self._doc(job_id, "record.json")))
        except (OSError, ValueError, KeyError) as exc:
            raise ServeError(f"no job {job_id!r}: {exc}") from None

    def records(self) -> list[JobRecord]:
        out = []
        for job_id in self.job_ids():
            try:
                out.append(self.get_record(job_id))
            except ServeError:
                continue
        return out

    # -- writes -----------------------------------------------------------
    def save_record(self, record: JobRecord) -> None:
        with self._lock:
            _write_json(self._doc(record.job_id, "record.json"),
                        record.to_json())

    def transition(self, job_id: str, allowed_from: Iterable[str],
                   **changes: Any) -> JobRecord | None:
        """Guarded state change: load, check ``state in allowed_from``,
        apply ``changes``, persist — all under the store lock.  Returns
        the updated record, or None when the job is not in an allowed
        state (e.g. it was cancelled while queued)."""
        with self._lock:
            record = self.get_record(job_id)
            if record.state not in tuple(allowed_from):
                return None
            for key, value in changes.items():
                if not hasattr(record, key):
                    raise ServeError(f"unknown record field {key!r}")
                setattr(record, key, value)
            self.save_record(record)
            return record

    def write_result(self, job_id: str, payload: Mapping[str, Any]) -> None:
        _write_json(self._doc(job_id, "result.json"), payload)

    def read_result(self, job_id: str) -> dict[str, Any]:
        try:
            return _read_json(self._doc(job_id, "result.json"))
        except (OSError, ValueError) as exc:
            raise ServeError(
                f"no result for job {job_id!r}: {exc}") from None
