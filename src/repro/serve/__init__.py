"""repro.serve — a multi-tenant simulation service.

The paper's components answer *one* question per run; this package turns
the component assemblies into a **service**: many tenants submit
rc-script jobs, a bounded scheduler executes them under the resilience
supervisor, a content-addressed cache answers repeated questions from
disk, and a batching planner coalesces structurally-identical
0D-ignition requests into one vectorized solve — with a bitwise
equivalence contract back to the sequential framework path, so batching
and caching are pure optimizations, never semantic forks.

Layers (each its own module):

* :mod:`repro.serve.jobs` — job model + filesystem job store
* :mod:`repro.serve.cache` — content-addressed result cache
* :mod:`repro.serve.batching` — which jobs may share one solve
* :mod:`repro.serve.scheduler` — the bounded worker pool
* :mod:`repro.serve.service` — the facade tying it together
* :mod:`repro.serve.__main__` — ``python -m repro.serve`` CLI
"""

from repro.serve.batching import BatchPlan, plan_for
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    JobRecord,
    JobSpec,
    JobStore,
    apply_overrides,
)
from repro.serve.scheduler import Scheduler
from repro.serve.service import SimulationService, load_script

__all__ = [
    "BatchPlan",
    "plan_for",
    "ResultCache",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "apply_overrides",
    "Scheduler",
    "SimulationService",
    "load_script",
]
