"""Content-addressed result cache.

A result is addressed by what *produced* it: the sha256 of the
rc-script text, the canonicalized parameter overrides, the execution
layout (``nprocs`` — a one-rank run stores a single result document, a
multi-rank run the per-rank list), and the code fingerprint
(:func:`repro.bench.trajectory.code_fingerprint` — commit, host,
fast-mode, Python version).  Two submissions with the same key are the
same computation, so the second one can be answered from disk; any
change to the code or environment changes the fingerprint and therefore
the key, which makes stale hits structurally impossible rather than a
TTL guess.

Entries live under ``<root>/<key[:2]>/<key>.json`` and are written
atomically.  ``get`` validates the envelope (schema + embedded key) and
*evicts* anything malformed — a corrupted entry degrades to a cache
miss, never to a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Mapping

from repro.bench.trajectory import code_fingerprint
from repro.serve.jobs import canonical_params, jsonable

CACHE_SCHEMA = 1


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem content-addressed cache (see the module docstring)."""

    def __init__(self, root: str,
                 fingerprint: Mapping[str, Any] | None = None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.fingerprint = dict(fingerprint) if fingerprint is not None \
            else code_fingerprint()

    # -- addressing -------------------------------------------------------
    def key(self, script: str, params: Mapping[str, Any] | None, *,
            nprocs: int = 1, backend: str = "") -> str:
        """The content address of (script, params, nprocs, backend)
        under this code.  ``nprocs`` is key material because the stored
        result shape depends on it (single document vs per-rank list);
        ``backend`` (canonical :mod:`repro.exec` name, "" treated as the
        default) because different transports are different execution
        substrates — equivalence between them is something the test
        suite *proves*, not something the cache may silently assume."""
        from repro.exec import DEFAULT_BACKEND
        material = {
            "schema": CACHE_SCHEMA,
            "script_sha256": _sha256_text(script),
            "params": canonical_params(params),
            "nprocs": int(nprocs),
            "backend": str(backend) or DEFAULT_BACKEND,
            "fingerprint": self.fingerprint,
        }
        blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- access -----------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The cached entry, or None.  Malformed entries are evicted."""
        path = self.path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA
                or entry.get("key") != key
                or "result" not in entry):
            self._evict(path)
            return None
        return entry

    def put(self, key: str, result: Any, **meta: Any) -> dict[str, Any]:
        """Store ``result`` (made JSON-safe) under ``key``; concurrent
        racers writing the same key both succeed — last ``os.replace``
        wins with identical content, since the key *is* the content."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "fingerprint": self.fingerprint,
            "result": jsonable(result),
            **{k: jsonable(v) for k, v in meta.items()},
        }
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return entry

    @staticmethod
    def _evict(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- introspection ----------------------------------------------------
    def keys(self) -> list[str]:
        out = []
        for shard in sorted(os.listdir(self.root)):
            sub = os.path.join(self.root, shard)
            if not os.path.isdir(sub):
                continue
            for name in sorted(os.listdir(sub)):
                if name.endswith(".json"):
                    out.append(name[:-5])
        return out

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))
