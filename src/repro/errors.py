"""Exception hierarchy shared across the repro toolkit.

Every subsystem raises subclasses of :class:`ReproError` so applications can
catch toolkit failures without masking genuine programming errors.
"""


class ReproError(Exception):
    """Base class for all toolkit errors."""


class CCAError(ReproError):
    """Errors raised by the component framework (bad wiring, lifecycle)."""


class PortNotConnectedError(CCAError):
    """A component asked for a uses-port that has not been connected."""


class PortTypeError(CCAError):
    """A connection was attempted between incompatible port types."""


class ComponentLifecycleError(CCAError):
    """A component was used outside its legal lifecycle (e.g. before
    ``setServices``)."""


class ScriptError(CCAError):
    """The rc-script parser met an unknown directive or bad arguments."""


class MPIError(ReproError):
    """Errors from the in-process MPI substrate."""


class CommAbortedError(MPIError):
    """The parallel world was aborted (by ``Comm.abort`` or a peer crash)."""


class DataRaceError(MPIError):
    """The runtime sanitizer (:mod:`repro.mpi.sanitizer`) observed two
    rank-threads accessing one shared object with no happens-before edge;
    the message carries both stacks, both ranks, and each rank's last
    ordering collective."""


class MeshError(ReproError):
    """Errors from the SAMR substrate (bad boxes, nesting violations...)."""


class IntegratorError(ReproError):
    """Time integration failed (too many error-test or Newton failures)."""


class ConvergenceError(IntegratorError):
    """An iterative solve (Newton, Riemann star state) did not converge."""


class ChemistryError(ReproError):
    """Errors from the thermochemistry substrate (unknown species...)."""


class HydroError(ReproError):
    """Errors from the hydrodynamics kernels (negative density/pressure)."""


class ObsError(ReproError):
    """Errors from the observability subsystem (metric type clashes...)."""


class AnalysisError(ReproError):
    """Errors from the static-analysis subsystem (unresolvable targets)."""


class ResilienceError(ReproError):
    """Errors from the resilience subsystem (checkpoint/restart, faults)."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, located, or restored (format
    version mismatch, missing rank shards, corrupt manifest...)."""


class InjectedFault(ResilienceError):
    """A deliberately injected failure (fault-injection testing).

    Raised only while :mod:`repro.resilience.faults` is active; catching
    it in production code defeats the purpose of chaos testing."""


class ServeError(ReproError):
    """Errors from the simulation service (unknown job, bad request,
    result not ready, malformed job store)."""
