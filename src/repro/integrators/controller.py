"""Step-size controllers shared by the integrators.

Both controllers act on the weighted-RMS error estimate ``err`` normalized
so that ``err <= 1`` means the step passes the local error test.
"""

from __future__ import annotations

from repro.errors import IntegratorError


class IController:
    """Classic integral (deadbeat) controller: ``h *= err^(-1/(p+1))``."""

    def __init__(self, order: int, safety: float = 0.9,
                 min_factor: float = 0.2, max_factor: float = 5.0) -> None:
        if order < 1:
            raise IntegratorError("controller order must be >= 1")
        self.order = order
        self.safety = safety
        self.min_factor = min_factor
        self.max_factor = max_factor

    def factor(self, err: float) -> float:
        """Step-size multiplier given the normalized error."""
        if err <= 0.0:
            return self.max_factor
        raw = self.safety * err ** (-1.0 / (self.order + 1))
        return min(self.max_factor, max(self.min_factor, raw))

    def accept(self, err: float) -> bool:
        return err <= 1.0


class PIController(IController):
    """Proportional-integral controller (smoother step sequences).

    ``h *= err_n^(-kI/(p+1)) * err_{n-1}^(kP/(p+1))`` with the usual
    (0.7, 0.4) gains; falls back to the I-controller on the first step.
    """

    def __init__(self, order: int, safety: float = 0.9,
                 min_factor: float = 0.2, max_factor: float = 5.0,
                 ki: float = 0.7, kp: float = 0.4) -> None:
        super().__init__(order, safety, min_factor, max_factor)
        self.ki = ki
        self.kp = kp
        self._prev_err: float | None = None

    def factor(self, err: float) -> float:
        if err <= 0.0:
            self._prev_err = err
            return self.max_factor
        expo = 1.0 / (self.order + 1)
        if self._prev_err is None or self._prev_err <= 0.0:
            raw = self.safety * err ** (-expo)
        else:
            raw = (self.safety * err ** (-self.ki * expo)
                   * self._prev_err ** (self.kp * expo))
        self._prev_err = err
        return min(self.max_factor, max(self.min_factor, raw))
