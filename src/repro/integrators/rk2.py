"""Second-order strong-stability-preserving Runge-Kutta (Heun / SSP-RK2).

The time integrator of the shock-interface application
(``ExplicitIntegratorRK2``): TVD with CFL coefficient 1, the standard
partner of MUSCL/Godunov spatial discretizations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

RHS = Callable[[float, np.ndarray], np.ndarray]


def rk2_step(rhs: RHS, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One SSP-RK2 step: convex combination of two Euler stages."""
    y1 = y + dt * rhs(t, y)
    return 0.5 * y + 0.5 * (y1 + dt * rhs(t + dt, y1))


def ssp_rk2(rhs: RHS, t0: float, y0: np.ndarray, t_end: float,
            dt: float) -> np.ndarray:
    """March from ``t0`` to ``t_end`` with fixed steps (last clipped)."""
    t, y = t0, np.asarray(y0, dtype=float)
    while t < t_end - 1e-15 * max(1.0, abs(t_end)):
        step = min(dt, t_end - t)
        y = rk2_step(rhs, t, y, step)
        t += step
    return y
