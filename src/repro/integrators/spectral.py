"""Spectral-radius estimation for dynamic time-step sizing.

The explicit-integration subsystem "contains components that analyze the
field to determine an approximation of the highest eigenvalue that the
integrator will encounter.  This information is used by the integrator to
dynamically adjust the timestep."  (paper §4, subsystem 4)
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import IntegratorError


def estimate_spectral_radius(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    t: float,
    y: np.ndarray,
    f0: np.ndarray | None = None,
    maxiter: int = 30,
    tol: float = 0.05,
    seed: int = 0,
) -> float:
    """Nonlinear power iteration on the finite-difference Jacobian action.

    Iterates ``v <- (f(y + eps v) - f(y)) / eps`` normalized, returning the
    converged Rayleigh-quotient magnitude — the standard RKC trick that
    never forms the Jacobian.
    """
    y = np.asarray(y, dtype=float)
    if f0 is None:
        f0 = np.asarray(rhs(t, y), dtype=float)
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(y.shape)
    vnorm = np.linalg.norm(v)
    if vnorm == 0.0:
        raise IntegratorError("degenerate start vector")
    v /= vnorm
    ynorm = np.linalg.norm(y)
    eps = np.sqrt(np.finfo(float).eps) * max(ynorm, 1.0)
    sigma_prev = 0.0
    for _ in range(maxiter):
        fv = np.asarray(rhs(t, y + eps * v), dtype=float)
        jv = (fv - f0) / eps
        sigma = np.linalg.norm(jv)
        if sigma == 0.0:
            return 0.0
        v = jv / sigma
        if abs(sigma - sigma_prev) <= tol * sigma:
            return float(1.1 * sigma)  # small safety factor
        sigma_prev = sigma
    return float(1.2 * sigma_prev)


def gershgorin_diffusion(d_max: float, dx: Sequence[float]) -> float:
    """Gershgorin bound on the spectral radius of the discrete Laplacian
    scaled by the largest diffusion coefficient: ``rho <= 4 D sum(1/dx^2)``.

    This is what ``MaxDiffCoeffEvaluator`` feeds the RKC integrator.
    """
    if d_max < 0.0:
        raise IntegratorError(f"diffusion coefficient must be >= 0: {d_max}")
    return 4.0 * d_max * sum(1.0 / float(h) ** 2 for h in dx)
