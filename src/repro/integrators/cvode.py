"""A from-scratch CVODE-style stiff/non-stiff ODE integrator.

Reimplements the algorithm family of CVODE (Cohen & Hindmarsh, "CVODE, a
stiff/nonstiff ODE solver in C", Computers in Physics 1996) — the library
the paper wraps as ``CvodeComponent``:

* **BDF mode** (stiff): variable-order (1-5), variable-step backward
  differentiation formulas on a non-uniform time grid, solved by modified
  Newton iteration with a finite-difference dense Jacobian that is reused
  across steps until convergence degrades.
* **Adams mode** (non-stiff): variable-order (1-5) Adams-Moulton
  predictor-corrector solved by functional iteration.

Local error is controlled in the weighted RMS norm
``||e|| = sqrt(mean((e_i / (rtol |y_i| + atol_i))^2))`` with a
proportional-integral step controller; order ramps up as history accrues
and backs off on repeated failures — the same control structure as CVODE,
with the Nordsieck array replaced by an explicit solution history (whose
divided-difference predictors are algebraically equivalent).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.errors import ConvergenceError, IntegratorError
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry

RHS = Callable[[float, np.ndarray], np.ndarray]

_MAX_ORDER = 5
_MAX_NEWTON = 4
_MAX_FUNCTIONAL = 10
_MAX_STEP_FAILS = 12


@dataclass
class CVodeStats:
    """Cumulative integrator statistics (mirrors CVodeGetNumSteps &c)."""

    nsteps: int = 0
    nfe: int = 0
    nje: int = 0
    nni: int = 0          # nonlinear iterations
    nerrfail: int = 0     # error-test failures
    nconvfail: int = 0    # nonlinear-convergence failures


def _derivative_weights(nodes: np.ndarray) -> np.ndarray:
    """Weights c_i with p'(nodes[0]) = sum_i c_i y(nodes[i]) for the
    interpolating polynomial through ``nodes``."""
    x0 = nodes[0]
    n = len(nodes)
    c = np.zeros(n)
    c[0] = sum(1.0 / (x0 - nodes[m]) for m in range(1, n))
    for i in range(1, n):
        num = 1.0
        den = 1.0
        for m in range(n):
            if m == i:
                continue
            if m != 0:
                num *= x0 - nodes[m]
            den *= nodes[i] - nodes[m]
        c[i] = num / den
    return c


def _integral_weights(nodes: np.ndarray, a: float, b: float) -> np.ndarray:
    """Weights w_i with ∫_a^b p(t) dt = sum_i w_i f(nodes[i]) for the
    interpolating polynomial through ``nodes`` (Lagrange basis integrals).

    Nodes are shifted/scaled to [-1, 1]-ish magnitudes before forming the
    monomial basis, keeping the small systems (n <= 6) well conditioned.
    """
    n = len(nodes)
    scale = max(abs(b - a), 1e-300)
    t = (np.asarray(nodes) - a) / scale
    bb = (b - a) / scale
    w = np.zeros(n)
    for i in range(n):
        poly = np.array([1.0])
        for m in range(n):
            if m == i:
                continue
            poly = np.convolve(poly, np.array([1.0, -t[m]]))
            poly /= t[i] - t[m]
        integ = np.polyint(poly)
        w[i] = (np.polyval(integ, bb) - np.polyval(integ, 0.0)) * scale
    return w


def _interp_eval(nodes: np.ndarray, values: list[np.ndarray],
                 t: float) -> np.ndarray:
    """Evaluate the interpolating polynomial through (nodes, values) at t."""
    n = len(nodes)
    out = np.zeros_like(values[0])
    for i in range(n):
        li = 1.0
        for m in range(n):
            if m != i:
                li *= (t - nodes[m]) / (nodes[i] - nodes[m])
        out = out + li * values[i]
    return out


class CVode:
    """Variable-order, variable-step BDF/Adams integrator.

    Parameters
    ----------
    rhs:
        ``f(t, y) -> dy/dt``.
    t0, y0:
        Initial condition.
    rtol, atol:
        Relative / absolute tolerances (``atol`` scalar or per-component).
    method:
        ``"bdf"`` (stiff; modified Newton) or ``"adams"`` (non-stiff;
        functional iteration).
    max_order:
        Cap on the method order (<= 5).
    h0:
        Optional initial step; otherwise chosen from the initial slope.
    max_step:
        Optional upper bound on the internal step size.
    """

    def __init__(self, rhs: RHS, t0: float, y0: np.ndarray,
                 rtol: float = 1e-6, atol: float | np.ndarray = 1e-9,
                 method: str = "bdf", max_order: int = _MAX_ORDER,
                 h0: float | None = None,
                 max_step: float | None = None) -> None:
        if method not in ("bdf", "adams"):
            raise IntegratorError(f"unknown method {method!r}")
        if not (0 < rtol < 1):
            raise IntegratorError(f"rtol must be in (0, 1), got {rtol}")
        if not 1 <= max_order <= _MAX_ORDER:
            raise IntegratorError(
                f"max_order must be in [1, {_MAX_ORDER}], got {max_order}")
        self.rhs = rhs
        self.method = method
        self.rtol = float(rtol)
        self.atol = np.asarray(atol, dtype=float)
        if np.any(self.atol <= 0):
            raise IntegratorError("atol must be positive")
        self.max_order = max_order
        self.max_step = max_step
        self.stats = CVodeStats()

        y0 = np.asarray(y0, dtype=float)
        self.n = y0.size
        f0 = self._f(t0, y0)
        # history of (t, y, f), newest first
        self._ts: deque[float] = deque([t0], maxlen=_MAX_ORDER + 2)
        self._ys: deque[np.ndarray] = deque([y0.copy()], maxlen=_MAX_ORDER + 2)
        self._fs: deque[np.ndarray] = deque([f0], maxlen=_MAX_ORDER + 2)
        self.order = 1
        self.h = h0 if h0 is not None else self._initial_step(t0, y0, f0)
        self._jac: np.ndarray | None = None
        self._lu = None
        self._gamma_lu = 0.0
        self._steps_since_jac = 0
        self._errs: deque[float] = deque(maxlen=3)

    # -- public API ------------------------------------------------------------
    @property
    def t(self) -> float:
        return self._ts[0]

    @property
    def y(self) -> np.ndarray:
        return self._ys[0].copy()

    def step(self) -> tuple[float, np.ndarray]:
        """Advance by one internal step; returns the new (t, y)."""
        fails = 0
        while True:
            try:
                err = self._attempt(self.h)
            except ConvergenceError:
                self.stats.nconvfail += 1
                fails += 1
                self._jac = None  # force a fresh Jacobian
                self.h *= 0.25
                if self.order > 1:
                    self.order -= 1
                if fails > _MAX_STEP_FAILS:
                    raise IntegratorError(
                        f"too many nonlinear failures at t={self.t:.6g}")
                continue
            if err <= 1.0:
                break
            self.stats.nerrfail += 1
            fails += 1
            if fails > _MAX_STEP_FAILS:
                raise IntegratorError(
                    f"too many error-test failures at t={self.t:.6g}, "
                    f"h={self.h:.3e}")
            factor = max(0.1, 0.9 * err ** (-1.0 / (self.order + 1)))
            self.h *= min(factor, 0.5)
            if fails >= 3 and self.order > 1:
                self.order -= 1
        # accepted
        self.stats.nsteps += 1
        self._errs.append(err)
        self._adapt_order()
        factor = 0.9 * (max(err, 1e-10)) ** (-1.0 / (self.order + 1))
        self.h *= min(3.0, max(0.2, factor))
        if self.max_step is not None:
            self.h = min(self.h, self.max_step)
        return self.t, self.y

    def integrate_to(self, t_end: float) -> np.ndarray:
        """Step internally past ``t_end`` and interpolate back to it."""
        if t_end < self.t:
            raise IntegratorError(
                f"cannot integrate backwards ({t_end} < {self.t})")
        if t_end == self.t:
            return self.y
        t0 = time.perf_counter() if _obs.on else 0.0
        nsteps0, nfe0 = self.stats.nsteps, self.stats.nfe
        while self.t < t_end:
            if self.t + self.h > t_end:
                # stretch the final step only when it is nearly there
                self.h = min(self.h, max(t_end - self.t, 1e-300))
            self.step()
        out = self.interpolate(t_end)
        if _obs.on:
            dsteps = self.stats.nsteps - nsteps0
            dnfe = self.stats.nfe - nfe0
            _obs.complete("cvode.integrate_to", "integrator", t0,
                          t_end=t_end, nsteps=dsteps, nfe=dnfe)
            reg = _obs_registry()
            reg.counter("integrator.steps", kind="cvode").inc(dsteps)
            reg.counter("integrator.rhs_evals", kind="cvode").inc(dnfe)
        return out

    def integrate_to_event(self, t_max: float,
                           event: Callable[[float, np.ndarray], float],
                           tol: float = 1e-10
                           ) -> tuple[float, np.ndarray, bool]:
        """Integrate until ``event(t, y)`` changes sign or ``t_max``.

        Root localization uses bisection on the dense output inside the
        step that bracketed the sign change (CVODE's rootfinding role —
        used e.g. to measure ignition delay).  Returns
        ``(t, y, event_found)``.
        """
        g_prev = float(event(self.t, self.y))
        while self.t < t_max:
            t_prev = self.t
            if self.t + self.h > t_max:
                self.h = min(self.h, max(t_max - self.t, 1e-300))
            self.step()
            g_now = float(event(self.t, self.y))
            if g_prev == 0.0:
                return t_prev, self.interpolate(t_prev), True
            if g_prev * g_now < 0.0:
                lo, hi = t_prev, self.t
                g_lo = g_prev
                while hi - lo > tol * max(1.0, abs(hi)):
                    mid = 0.5 * (lo + hi)
                    g_mid = float(event(mid, self.interpolate(mid)))
                    if g_lo * g_mid <= 0.0:
                        hi = mid
                    else:
                        lo, g_lo = mid, g_mid
                t_root = 0.5 * (lo + hi)
                return t_root, self.interpolate(t_root), True
            g_prev = g_now
        return self.t, self.y, False

    def interpolate(self, t: float) -> np.ndarray:
        """Dense output via the current history polynomial."""
        k = min(self.order + 1, len(self._ts))
        nodes = np.array(list(self._ts)[:k])
        values = list(self._ys)[:k]
        if not (min(nodes) - 1e-12 <= t <= max(nodes) + 1e-12):
            raise IntegratorError(
                f"interpolation point {t} outside history range "
                f"[{min(nodes)}, {max(nodes)}]")
        return _interp_eval(nodes, values, t)

    # -- internals --------------------------------------------------------------
    def _f(self, t: float, y: np.ndarray) -> np.ndarray:
        self.stats.nfe += 1
        return np.asarray(self.rhs(t, y), dtype=float)

    def _wrms(self, e: np.ndarray, y: np.ndarray) -> float:
        w = self.rtol * np.abs(y) + self.atol
        return float(np.sqrt(np.mean((e / w) ** 2)))

    def _initial_step(self, t0: float, y0: np.ndarray,
                      f0: np.ndarray) -> float:
        """Conservative first-step guess from the initial slope."""
        w = self.rtol * np.abs(y0) + self.atol
        d0 = np.sqrt(np.mean((y0 / w) ** 2))
        d1 = np.sqrt(np.mean((f0 / w) ** 2))
        h = 0.01 * d0 / d1 if d0 > 1e-5 and d1 > 1e-5 else 1e-6
        if self.max_step is not None:
            h = min(h, self.max_step)
        return max(h, 1e-14)

    def _predict(self, t_new: float, k: int) -> np.ndarray:
        """Extrapolate the order-k history polynomial to t_new."""
        m = min(k + 1, len(self._ts))
        nodes = np.array(list(self._ts)[:m])
        values = list(self._ys)[:m]
        return _interp_eval(nodes, values, t_new)

    def _attempt(self, h: float) -> float:
        """Try one step of the current order; returns the normalized error
        and commits the step to history on success (caller checks err)."""
        k = min(self.order, len(self._ts))
        t_new = self._ts[0] + h
        # predictors at neighbouring orders feed the order-selection logic
        candidates = [q for q in (k - 1, k, k + 1)
                      if 1 <= q <= self.max_order and q + 1 <= len(self._ts) + 1]
        preds = {q: self._predict(t_new, q) for q in candidates}
        y_pred = preds[k]
        if self.method == "bdf":
            y_new, f_new = self._solve_bdf(t_new, h, k, y_pred)
        else:
            y_new, f_new = self._solve_adams(t_new, h, k, y_pred)
        # local error estimate: corrector minus same-order predictor,
        # scaled by the standard order-dependent constant.
        err = self._wrms(y_new - y_pred, y_new) / (k + 2)
        if err <= 1.0:
            self._order_ests = {
                q: self._wrms(y_new - pq, y_new) / (q + 2)
                for q, pq in preds.items()
            }
            self._ts.appendleft(t_new)
            self._ys.appendleft(y_new)
            self._fs.appendleft(f_new)
        return err

    # -- BDF ---------------------------------------------------------------
    def _solve_bdf(self, t_new: float, h: float, k: int,
                   y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nodes = np.concatenate(([t_new], list(self._ts)[:k]))
        c = _derivative_weights(nodes)
        gamma = 1.0 / c[0]
        psi = np.zeros(self.n)
        for i in range(1, len(nodes)):
            psi -= gamma * c[i] * self._ys[i - 1]
        # solve y = gamma f(t,y) + psi
        y = y_pred.copy()
        self._ensure_lu(t_new, y, gamma)
        prev_norm = None
        for it in range(_MAX_NEWTON):
            self.stats.nni += 1
            f = self._f(t_new, y)
            resid = y - gamma * f - psi
            delta = lu_solve(self._lu, resid)
            y = y - delta
            norm = self._wrms(delta, y)
            if norm < 0.1:
                return y, self._f(t_new, y)
            if prev_norm is not None and norm > 2.0 * prev_norm:
                break  # diverging
            prev_norm = norm
        # retry once with a fresh Jacobian before reporting failure
        if self._steps_since_jac > 0:
            self._jac = None
            self._ensure_lu(t_new, y_pred, gamma)
            y = y_pred.copy()
            for it in range(_MAX_NEWTON):
                self.stats.nni += 1
                f = self._f(t_new, y)
                resid = y - gamma * f - psi
                delta = lu_solve(self._lu, resid)
                y = y - delta
                if self._wrms(delta, y) < 0.1:
                    return y, self._f(t_new, y)
        raise ConvergenceError(
            f"Newton iteration failed at t={t_new:.6g}, h={h:.3e}")

    def _ensure_lu(self, t: float, y: np.ndarray, gamma: float) -> None:
        stale = (self._jac is None or self._steps_since_jac > 20
                 or abs(gamma / self._gamma_lu - 1.0) > 0.3)
        if self._jac is None or stale:
            self._jac = self._fd_jacobian(t, y)
            self._steps_since_jac = 0
        else:
            self._steps_since_jac += 1
        if self._lu is None or stale or gamma != self._gamma_lu:
            self._lu = lu_factor(np.eye(self.n) - gamma * self._jac)
            self._gamma_lu = gamma

    def _fd_jacobian(self, t: float, y: np.ndarray) -> np.ndarray:
        self.stats.nje += 1
        f0 = self._f(t, y)
        J = np.empty((self.n, self.n))
        w = self.rtol * np.abs(y) + self.atol
        for j in range(self.n):
            dy = max(np.sqrt(np.finfo(float).eps) * abs(y[j]),
                     1e-7 * w[j])
            yp = y.copy()
            yp[j] += dy
            J[:, j] = (self._f(t, yp) - f0) / dy
        return J

    # -- Adams --------------------------------------------------------------
    def _solve_adams(self, t_new: float, h: float, k: int,
                     y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        t_n = self._ts[0]
        m = min(k, len(self._fs))
        f_nodes = np.concatenate(([t_new], list(self._ts)[:m]))
        w = _integral_weights(f_nodes, t_n, t_new)
        known = np.zeros(self.n)
        for i in range(1, len(f_nodes)):
            known += w[i] * self._fs[i - 1]
        # functional iteration: y = y_n + w0 f(t,y) + known
        y = y_pred.copy()
        y_n = self._ys[0]
        prev_norm = None
        for it in range(_MAX_FUNCTIONAL):
            self.stats.nni += 1
            f = self._f(t_new, y)
            y_next = y_n + w[0] * f + known
            norm = self._wrms(y_next - y, y_next)
            y = y_next
            if norm < 0.1:
                return y, self._f(t_new, y)
            if prev_norm is not None and norm > prev_norm:
                break
            prev_norm = norm
        raise ConvergenceError(
            f"functional iteration failed at t={t_new:.6g}, h={h:.3e} "
            f"(problem may be stiff: use method='bdf')")

    # -- order control ---------------------------------------------------------
    def _adapt_order(self) -> None:
        """CVODE-style order selection: compare the step-size multipliers
        implied by the error estimates at orders k-1, k, k+1 and move to
        the order promising the largest step (with a 20% switching bias
        toward staying put)."""
        ests = getattr(self, "_order_ests", None)
        if not ests:
            return

        def eta(q: int) -> float:
            est = max(ests[q], 1e-14)
            return est ** (-1.0 / (q + 1))

        best_q = self.order
        best = eta(self.order) if self.order in ests else 0.0
        for q, _ in ests.items():
            if q == self.order:
                continue
            # a higher order also needs enough history to predict with
            if q > self.order and len(self._ts) < q + 1:
                continue
            if eta(q) > 1.2 * best:
                best_q, best = q, eta(q)
        self.order = best_q
