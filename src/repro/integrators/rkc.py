"""Runge-Kutta-Chebyshev: stabilized explicit integration for diffusion.

Implements the second-order damped RKC scheme of Sommeijer, Shampine &
Verwer ("RKC: an explicit solver for parabolic PDEs", J. Comp. Appl. Math.
88, 1998) — the paper's ``ExplicitIntegrator``.  The stage count ``s`` is
chosen so the stability interval ``beta(s)`` (exact; asymptotically
``~ 0.653 s^2``) covers ``dt * rho`` where ``rho`` bounds the spectral
radius of the diffusion operator (supplied by ``MaxDiffCoeffEvaluator``
in the component assembly).
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.errors import IntegratorError
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry

RHS = Callable[[float, np.ndarray], np.ndarray]

#: Damping parameter of the standard scheme.
_EPS = 2.0 / 13.0


def beta(s: int) -> float:
    """Exact damped stability boundary of the ``s``-stage scheme.

    ``beta(s) = (1 + w0) T''_s(w0) / T'_s(w0)`` with ``w0 = 1 + eps/s^2``
    (Sommeijer et al. eq. 2.4).  The familiar ``0.653 s^2`` is its large-s
    asymptote and *over*estimates it for small ``s`` — stage selection must
    use the exact value or steps near the boundary are unstable.
    """
    if s < 2:
        raise IntegratorError(f"RKC needs at least 2 stages, got {s}")
    w0 = 1.0 + _EPS / s**2
    _T, dT, ddT = _cheb_row(s, w0)
    return (1.0 + w0) * ddT[s] / dT[s]


def stages_for(dt: float, rho: float, safety: float = 1.05) -> int:
    """Smallest stage count whose stability region covers ``dt * rho``."""
    if dt <= 0.0:
        raise IntegratorError(f"dt must be positive, got {dt}")
    if rho < 0.0:
        raise IntegratorError(f"spectral radius must be >= 0, got {rho}")
    z = safety * dt * rho
    # Asymptotic first guess, then correct against the exact boundary
    # (beta(s) <= 0.653 s^2, so at most a step or two of adjustment).
    s = max(2, int(math.ceil(math.sqrt(z / 0.653 + 1.0))))
    while s > 2 and beta(s - 1) >= z:
        s -= 1
    while beta(s) < z:
        s += 1
    return s


def _cheb_row(s: int, w0: float) -> tuple[list[float], list[float], list[float]]:
    """Chebyshev values T_j(w0), T'_j(w0), T''_j(w0) for j = 0..s."""
    T = [1.0, w0]
    dT = [0.0, 1.0]
    ddT = [0.0, 0.0]
    for j in range(2, s + 1):
        T.append(2.0 * w0 * T[j - 1] - T[j - 2])
        dT.append(2.0 * T[j - 1] + 2.0 * w0 * dT[j - 1] - dT[j - 2])
        ddT.append(4.0 * dT[j - 1] + 2.0 * w0 * ddT[j - 1] - ddT[j - 2])
    return T, dT, ddT


def rkc_step(rhs: RHS, t: float, y: np.ndarray, dt: float, rho: float,
             stages: int | None = None) -> np.ndarray:
    """One second-order RKC step from ``t`` to ``t + dt``.

    ``rho`` is an upper bound on the spectral radius of df/dy; ``stages``
    overrides the automatic stage-count selection.
    """
    s = stages if stages is not None else stages_for(dt, rho)
    if s < 2:
        raise IntegratorError(f"RKC needs at least 2 stages, got {s}")
    w0 = 1.0 + _EPS / s**2
    T, dT, ddT = _cheb_row(s, w0)
    w1 = dT[s] / ddT[s]

    b = [0.0] * (s + 1)
    for j in range(2, s + 1):
        b[j] = ddT[j] / dT[j] ** 2
    b[0] = b[2]
    b[1] = 1.0 / w0

    f0 = rhs(t, y)
    y_jm2 = y
    mu1_t = b[1] * w1
    y_jm1 = y + mu1_t * dt * f0
    c_jm2, c_jm1 = 0.0, mu1_t
    for j in range(2, s + 1):
        mu = 2.0 * b[j] * w0 / b[j - 1]
        nu = -b[j] / b[j - 2]
        mu_t = mu * w1 / w0
        a_jm1 = 1.0 - b[j - 1] * T[j - 1]
        gamma_t = -a_jm1 * mu_t
        f = rhs(t + c_jm1 * dt, y_jm1)
        y_j = ((1.0 - mu - nu) * y + mu * y_jm1 + nu * y_jm2
               + mu_t * dt * f + gamma_t * dt * f0)
        c_j = mu * c_jm1 + nu * c_jm2 + mu_t + gamma_t
        y_jm2, y_jm1 = y_jm1, y_j
        c_jm2, c_jm1 = c_jm1, c_j
    return y_jm1


class RKC:
    """Driver advancing a state over macro-steps with per-step stage
    selection and RHS-evaluation accounting.

    Parameters
    ----------
    rhs:
        ``f(t, y)``.
    rho_fn:
        ``rho(t, y) -> float`` spectral-radius bound, re-evaluated each
        macro step (the ``MaxDiffCoeffEvaluator`` hook).
    """

    def __init__(self, rhs: RHS, rho_fn: Callable[[float, np.ndarray], float]):
        self.rhs = rhs
        self.rho_fn = rho_fn
        self.nfe = 0
        self.nsteps = 0
        self.last_stages = 0

    def _counted_rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        self.nfe += 1
        return self.rhs(t, y)

    def advance(self, t: float, y: np.ndarray, dt: float) -> np.ndarray:
        """One macro step of size ``dt``."""
        t0 = time.perf_counter() if _obs.on else 0.0
        nfe0 = self.nfe
        rho = float(self.rho_fn(t, y))
        s = stages_for(dt, rho)
        self.last_stages = s
        self.nsteps += 1
        out = rkc_step(self._counted_rhs, t, y, dt, rho, stages=s)
        if _obs.on:
            _obs.complete("rkc.advance", "integrator", t0,
                          dt=dt, stages=s, rho=rho, nfe=self.nfe - nfe0)
            reg = _obs_registry()
            reg.counter("integrator.steps", kind="rkc").inc()
            reg.counter("integrator.rhs_evals", kind="rkc").inc(
                self.nfe - nfe0)
            reg.gauge("integrator.rkc_stages").set(s)
        return out

    def integrate_to(self, t0: float, y: np.ndarray, t_end: float,
                     dt: float) -> np.ndarray:
        """March from ``t0`` to ``t_end`` in macro steps of ``dt`` (the last
        one clipped)."""
        if t_end < t0:
            raise IntegratorError("cannot integrate backwards")
        t = t0
        while t < t_end - 1e-15 * max(1.0, abs(t_end)):
            step = min(dt, t_end - t)
            y = self.advance(t, y, step)
            t += step
        return y
