"""Time integrators.

* :mod:`repro.integrators.cvode` — a from-scratch reimplementation of the
  CVODE algorithm family (Cohen & Hindmarsh): variable-order variable-step
  BDF(1-5) with modified Newton for stiff problems, Adams-Moulton
  predictor-corrector for non-stiff ones.  Wrapped by the paper's
  ``CvodeComponent``.
* :mod:`repro.integrators.rkc` — the second-order Runge-Kutta-Chebyshev
  stabilized explicit scheme (Sommeijer, Shampine & Verwer) driving the
  diffusion operator of the reaction-diffusion application.
* :mod:`repro.integrators.rk2` — SSP RK2 (Heun) for the hydrodynamics.
* :mod:`repro.integrators.spectral` — spectral-radius estimation (power
  iteration on a finite-difference Jacobian action) used for dynamic
  time-step sizing, plus the Gershgorin diffusion bound.
* :mod:`repro.integrators.controller` — step-size controllers.
"""

from repro.integrators.controller import IController, PIController
from repro.integrators.cvode import CVode, CVodeStats
from repro.integrators.rk2 import rk2_step, ssp_rk2
from repro.integrators.rkc import RKC, rkc_step
from repro.integrators.spectral import estimate_spectral_radius, gershgorin_diffusion

__all__ = [
    "IController",
    "PIController",
    "CVode",
    "CVodeStats",
    "rk2_step",
    "ssp_rk2",
    "RKC",
    "rkc_step",
    "estimate_spectral_radius",
    "gershgorin_diffusion",
]
