"""Atomic weights [kg/mol] for the elements the mechanisms use."""

ATOMIC_WEIGHTS: dict[str, float] = {
    "H": 1.00794e-3,
    "O": 15.9994e-3,
    "N": 14.0067e-3,
    "C": 12.0107e-3,
    "AR": 39.948e-3,
    "HE": 4.002602e-3,
}


def molecular_weight(composition: dict[str, int]) -> float:
    """Molecular weight [kg/mol] from an elemental composition map."""
    try:
        return sum(ATOMIC_WEIGHTS[el] * n for el, n in composition.items())
    except KeyError as exc:
        raise KeyError(f"unknown element {exc.args[0]!r}") from None
