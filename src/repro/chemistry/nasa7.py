"""NASA-7 polynomial thermodynamics.

Standard two-range 7-coefficient parameterization:

    cp/R  = a1 + a2 T + a3 T^2 + a4 T^3 + a5 T^4
    h/RT  = a1 + a2/2 T + a3/3 T^2 + a4/4 T^3 + a5/5 T^4 + a6/T
    s/R   = a1 ln T + a2 T + a3/2 T^2 + a4/3 T^3 + a5/4 T^4 + a7

All evaluators are vectorized over temperature arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ChemistryError

#: Universal gas constant [J / (mol K)]
R_UNIVERSAL = 8.31446261815324


@dataclass(frozen=True)
class Nasa7:
    """Two-range NASA-7 polynomial for one species.

    ``low`` covers ``[t_min, t_mid]``; ``high`` covers ``[t_mid, t_max]``.
    Out-of-range temperatures are evaluated with the nearest range
    (standard practice: polynomials extrapolate smoothly enough for the
    transients integrators probe).
    """

    low: tuple[float, ...]
    high: tuple[float, ...]
    t_mid: float = 1000.0
    t_min: float = 200.0
    t_max: float = 3500.0

    def __post_init__(self) -> None:
        if len(self.low) != 7 or len(self.high) != 7:
            raise ChemistryError("NASA-7 needs exactly 7 coefficients per range")
        if not (self.t_min < self.t_mid < self.t_max):
            raise ChemistryError(
                f"bad temperature ranges {self.t_min}/{self.t_mid}/{self.t_max}")

    def _coeffs(self, T: np.ndarray) -> tuple[np.ndarray, ...]:
        """Per-temperature coefficient arrays (vectorized range select)."""
        low = np.asarray(self.low)
        high = np.asarray(self.high)
        use_high = (np.asarray(T) >= self.t_mid)[..., None]
        a = np.where(use_high, high, low)
        return tuple(a[..., k] for k in range(7))

    def cp_R(self, T: np.ndarray | float) -> np.ndarray:
        """Dimensionless heat capacity cp/R."""
        T = np.asarray(T, dtype=float)
        a1, a2, a3, a4, a5, _, _ = self._coeffs(T)
        return a1 + T * (a2 + T * (a3 + T * (a4 + T * a5)))

    def h_RT(self, T: np.ndarray | float) -> np.ndarray:
        """Dimensionless enthalpy h/(RT)."""
        T = np.asarray(T, dtype=float)
        a1, a2, a3, a4, a5, a6, _ = self._coeffs(T)
        return (a1 + T * (a2 / 2 + T * (a3 / 3 + T * (a4 / 4 + T * a5 / 5)))
                + a6 / T)

    def s_R(self, T: np.ndarray | float) -> np.ndarray:
        """Dimensionless entropy s/R (standard state)."""
        T = np.asarray(T, dtype=float)
        a1, a2, a3, a4, a5, _, a7 = self._coeffs(T)
        return (a1 * np.log(T) + T * (a2 + T * (a3 / 2 + T * (a4 / 3
                + T * a5 / 4))) + a7)

    def g_RT(self, T: np.ndarray | float) -> np.ndarray:
        """Dimensionless Gibbs energy g/(RT) = h/(RT) - s/R."""
        return self.h_RT(T) - self.s_R(T)

    def cp_mol(self, T) -> np.ndarray:
        """Molar heat capacity [J/(mol K)]."""
        return self.cp_R(T) * R_UNIVERSAL

    def h_mol(self, T) -> np.ndarray:
        """Molar enthalpy [J/mol] (includes heat of formation)."""
        return self.h_RT(T) * R_UNIVERSAL * np.asarray(T, dtype=float)

    def s_mol(self, T) -> np.ndarray:
        """Molar entropy [J/(mol K)]."""
        return self.s_R(T) * R_UNIVERSAL
