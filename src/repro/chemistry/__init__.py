"""Thermochemistry substrate.

The paper's ``ThermoChemistry`` component "embodies the chemical
interactions; it provides the source terms for temperature and species due
to chemistry and is a thin C++ wrapper around Fortran 77 subroutines".
This package is the from-scratch replacement for those F77 libraries:

* :mod:`repro.chemistry.nasa7` — NASA-7 polynomial thermodynamics.
* :mod:`repro.chemistry.species` / :mod:`repro.chemistry.elements` —
  species bookkeeping and molecular weights.
* :mod:`repro.chemistry.reaction` — reversible Arrhenius reactions with
  third bodies and Lindemann/Troe falloff.
* :mod:`repro.chemistry.mechanism` — vectorized net production rates and
  mixture thermodynamics over arrays of cells.
* :mod:`repro.chemistry.h2_air` — the 9-species / 19-reaction H2-air
  mechanism of the paper's ignition and flame runs (Yetter-family rates).
* :mod:`repro.chemistry.h2_lite` — the light 8-species / 5-reaction
  mechanism used for the serial-overhead study (Table 4).
* :mod:`repro.chemistry.zerod` — constant-pressure and constant-volume
  reactor right-hand sides (including the dP/dt closure of the paper's
  ``dPdt`` component).

All quantities are SI (kg, m, s, K, J, mol); mechanism input decks use the
conventional (cm^3, mol, s, cal) units and are converted on construction.
"""

from repro.chemistry.nasa7 import Nasa7, R_UNIVERSAL
from repro.chemistry.species import Species
from repro.chemistry.reaction import Arrhenius, Falloff, Reaction
from repro.chemistry.mechanism import Mechanism
from repro.chemistry.h2_air import h2_air_mechanism
from repro.chemistry.h2_lite import h2_lite_mechanism
from repro.chemistry.zerod import (
    ConstantPressureReactor,
    ConstantVolumeReactor,
)
from repro.chemistry.parser import parse_mechanism

__all__ = [
    "parse_mechanism",
    "Nasa7",
    "R_UNIVERSAL",
    "Species",
    "Arrhenius",
    "Falloff",
    "Reaction",
    "Mechanism",
    "h2_air_mechanism",
    "h2_lite_mechanism",
    "ConstantPressureReactor",
    "ConstantVolumeReactor",
]
