"""Mechanism: species + reactions with vectorized rate evaluation.

This is the computational heart of the ``ThermoChemistry`` component: given
temperature and concentrations over a batch of cells it returns net molar
production rates.  Everything is NumPy-vectorized over the cell axis so a
patch's worth of chemistry is one call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.chemistry.nasa7 import R_UNIVERSAL
from repro.chemistry.reaction import P_REF, Reaction
from repro.chemistry.species import Species
from repro.errors import ChemistryError


class Mechanism:
    """A reaction mechanism over a fixed species set.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"h2-air-9sp-19rxn"``).
    species:
        Ordered species list; array layouts follow this order.
    reactions:
        Elementary reactions (balance-checked on construction).
    """

    def __init__(self, name: str, species: Sequence[Species],
                 reactions: Sequence[Reaction]) -> None:
        self.name = name
        self.species = list(species)
        self.reactions = list(reactions)
        if not self.species:
            raise ChemistryError("mechanism needs at least one species")
        self._index = {sp.name: k for k, sp in enumerate(self.species)}
        if len(self._index) != len(self.species):
            raise ChemistryError("duplicate species names")
        by_name = {sp.name: sp for sp in self.species}
        for rxn in self.reactions:
            for side in (rxn.reactants, rxn.products):
                for nm in side:
                    if nm not in self._index:
                        raise ChemistryError(
                            f"reaction {rxn.equation()} uses unknown "
                            f"species {nm!r}")
            rxn.check_balance(by_name)
        ns, nr = len(self.species), len(self.reactions)
        self.nu_react = np.zeros((ns, nr))
        self.nu_prod = np.zeros((ns, nr))
        for j, rxn in enumerate(self.reactions):
            for nm, nu in rxn.reactants.items():
                self.nu_react[self._index[nm], j] = nu
            for nm, nu in rxn.products.items():
                self.nu_prod[self._index[nm], j] = nu
        self.nu_net = self.nu_prod - self.nu_react
        #: Molecular weights [kg/mol], shape (nspecies,).
        self.weights = np.array([sp.weight for sp in self.species])

    # -- bookkeeping ---------------------------------------------------------
    @property
    def n_species(self) -> int:
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    @property
    def names(self) -> list[str]:
        return [sp.name for sp in self.species]

    def species_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ChemistryError(
                f"no species {name!r} in mechanism {self.name}") from None

    def scaled(self, factor: float) -> "Mechanism":
        """A new mechanism with every reaction's forward rate scaled by
        ``factor`` (see :meth:`repro.chemistry.reaction.Reaction.scaled`)
        — the uniform rate perturbation used by UQ ensembles and the
        :mod:`repro.serve` batch planner's ``rate_scale`` condition.

        ``factor == 1.0`` returns ``self`` unchanged, so the unperturbed
        path stays bitwise identical to a mechanism built directly.
        """
        if float(factor) == 1.0:
            return self
        return Mechanism(self.name, self.species,
                         [rxn.scaled(factor) for rxn in self.reactions])

    # -- mixture thermodynamics (mass basis, vectorized over cells) ----------
    def mean_weight(self, Y: np.ndarray) -> np.ndarray:
        """Mixture molecular weight [kg/mol]; ``Y`` shape (nsp, ...)."""
        return 1.0 / np.einsum("i...,i->...", np.asarray(Y),
                               1.0 / self.weights)

    def density(self, T: np.ndarray, P: np.ndarray | float,
                Y: np.ndarray) -> np.ndarray:
        """Ideal-gas density [kg/m^3]."""
        W = self.mean_weight(Y)
        return np.asarray(P) * W / (R_UNIVERSAL * np.asarray(T))

    def pressure(self, T: np.ndarray, rho: np.ndarray,
                 Y: np.ndarray) -> np.ndarray:
        """Ideal-gas pressure [Pa]."""
        W = self.mean_weight(Y)
        return np.asarray(rho) * R_UNIVERSAL * np.asarray(T) / W

    def concentrations(self, rho: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Molar concentrations [mol/m^3], shape (nsp, ...)."""
        return (np.asarray(rho) * np.asarray(Y)
                / self.weights.reshape((-1,) + (1,) * (np.ndim(Y) - 1)))

    def cp_mass(self, T: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Mixture specific heat at constant pressure [J/(kg K)]."""
        cps = np.stack([sp.thermo.cp_mol(T) / sp.weight
                        for sp in self.species])
        return np.einsum("i...,i...->...", np.asarray(Y), cps)

    def cv_mass(self, T: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Mixture specific heat at constant volume [J/(kg K)]."""
        W = self.mean_weight(Y)
        return self.cp_mass(T, Y) - R_UNIVERSAL / W

    def h_mass_species(self, T: np.ndarray) -> np.ndarray:
        """Per-species specific enthalpies [J/kg], shape (nsp, ...)."""
        return np.stack([sp.thermo.h_mol(T) / sp.weight
                         for sp in self.species])

    def u_mass_species(self, T: np.ndarray) -> np.ndarray:
        """Per-species specific internal energies [J/kg]."""
        T = np.asarray(T, dtype=float)
        h = self.h_mass_species(T)
        return h - R_UNIVERSAL * T / self.weights.reshape(
            (-1,) + (1,) * (np.ndim(T)))

    def h_mass(self, T: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Mixture specific enthalpy [J/kg]."""
        return np.einsum("i...,i...->...", np.asarray(Y),
                         self.h_mass_species(T))

    # -- kinetics -------------------------------------------------------------
    def progress_rates(self, T: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Net rate of progress per reaction [mol/(m^3 s)].

        ``T`` shape (...,), ``C`` shape (nsp, ...).  Reverse rates follow
        from NASA-7 equilibrium constants.
        """
        T = np.asarray(T, dtype=float)
        C = np.maximum(np.asarray(C, dtype=float), 0.0)
        g_RT = np.stack([sp.thermo.g_RT(T) for sp in self.species])
        RT_over_P = R_UNIVERSAL * T / P_REF
        q = np.zeros((self.n_reactions,) + T.shape)
        for j, rxn in enumerate(self.reactions):
            kf = rxn.rate.k(T)
            conc_m = None
            if rxn.has_third_body:
                conc_m = C.sum(axis=0).astype(float)
                for nm, eff in rxn.third_body.items():
                    conc_m = conc_m + (eff - 1.0) * C[self._index[nm]]
            if rxn.falloff is not None:
                kf = rxn.falloff.blend(kf, T, conc_m)
            fwd = kf
            for nm, nu in rxn.reactants.items():
                fwd = fwd * C[self._index[nm]] ** nu
            rate = fwd
            if rxn.reversible:
                dg = (self.nu_net[:, j][(...,) + (None,) * T.ndim]
                      * g_RT).sum(axis=0)
                ln_kc = -dg - rxn.delta_nu() * np.log(RT_over_P)
                kr = kf * np.exp(-np.clip(ln_kc, -600, 600))
                rev = kr
                for nm, nu in rxn.products.items():
                    rev = rev * C[self._index[nm]] ** nu
                rate = rate - rev
            if rxn.has_third_body and rxn.falloff is None:
                rate = rate * conc_m
            q[j] = rate
        return q

    def wdot(self, T: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Net molar production rates [mol/(m^3 s)], shape (nsp, ...)."""
        q = self.progress_rates(T, C)
        return np.tensordot(self.nu_net, q, axes=([1], [0]))

    def __repr__(self) -> str:
        return (f"Mechanism({self.name}: {self.n_species} species, "
                f"{self.n_reactions} reactions)")
