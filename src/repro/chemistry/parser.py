"""A Chemkin-flavoured mechanism deck parser.

The paper's F77 thermochemistry libraries read Chemkin-format input; this
parser accepts the same conceptual deck — ELEMENTS / SPECIES / REACTIONS
sections with modified-Arrhenius coefficients, third bodies (``+M``,
enhanced efficiencies) and LOW/TROE falloff lines — and builds a
:class:`~repro.chemistry.mechanism.Mechanism`.  Thermo data comes from the
built-in NASA-7 table (:mod:`repro.chemistry.thermo_data`).

Supported grammar (one reaction per line, ``!`` comments)::

    ELEMENTS H O N END
    SPECIES H2 O2 OH ... END
    REACTIONS            ! A [cm^3/mol/s], b, Ea [cal/mol]
    H + O2 <=> O + OH        1.915E+14  0.00  1.644E+04
    H2 + M <=> H + H + M     4.577E+19 -1.40  1.044E+05
        H2 / 2.5 /  H2O / 12.0 /
    H + O2 (+M) <=> HO2 (+M) 1.475E+12  0.60  0.0
        LOW / 6.366E+20 -1.72 524.8 /
        H2 / 2.5 /  H2O / 12.0 /
    END
"""

from __future__ import annotations

import re

from repro.chemistry.mechanism import Mechanism
from repro.chemistry.reaction import Arrhenius, Falloff, Reaction
from repro.chemistry.thermo_data import available_species, make_species
from repro.errors import ChemistryError

_EFF_RE = re.compile(r"([A-Za-z0-9()*]+)\s*/\s*([0-9.eE+-]+)\s*/")


def parse_mechanism(text: str, name: str = "parsed") -> Mechanism:
    """Parse a deck into a Mechanism (see module docstring)."""
    species_names: list[str] = []
    reactions: list[Reaction] = []
    section = None
    pending: dict | None = None

    def finish_pending() -> None:
        nonlocal pending
        if pending is None:
            return
        rate = Arrhenius.from_cgs(pending["A"], pending["b"],
                                  pending["Ea"], pending["order"])
        falloff = None
        if pending["low"] is not None:
            low_a, low_b, low_e = pending["low"]
            falloff = Falloff(
                low=Arrhenius.from_cgs(low_a, low_b, low_e,
                                       pending["order"] + 1),
                troe=pending["troe"],
            )
        reactions.append(Reaction(
            reactants=pending["reactants"],
            products=pending["products"],
            rate=rate,
            reversible=pending["reversible"],
            third_body=pending["third_body"],
            falloff=falloff,
        ))
        pending = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("!", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("ELEMENTS"):
            section = "elements"
            continue
        if upper.startswith("SPECIES"):
            section = "species"
            line = line[len("SPECIES"):].strip()
            if not line:
                continue
        if upper.startswith("REACTIONS"):
            section = "reactions"
            continue
        if upper == "END":
            if section == "reactions":
                finish_pending()
            section = None
            continue
        if section == "elements":
            continue  # elements come from the thermo table
        if section == "species":
            for token in line.split():
                if token.upper() == "END":
                    section = None
                    break
                if token not in available_species():
                    raise ChemistryError(
                        f"line {line_no}: no thermo data for species "
                        f"{token!r}")
                species_names.append(token)
            continue
        if section == "reactions":
            if upper.startswith("LOW"):
                if pending is None:
                    raise ChemistryError(
                        f"line {line_no}: LOW without a reaction")
                nums = re.findall(r"[-+0-9.eE]+", line.split("/", 1)[1])
                if len(nums) < 3:
                    raise ChemistryError(
                        f"line {line_no}: LOW needs 3 coefficients")
                pending["low"] = tuple(float(v) for v in nums[:3])
                continue
            if upper.startswith("TROE"):
                if pending is None:
                    raise ChemistryError(
                        f"line {line_no}: TROE without a reaction")
                nums = re.findall(r"[-+0-9.eE]+", line.split("/", 1)[1])
                pending["troe"] = tuple(float(v) for v in nums)
                continue
            if "/" in line and "=" not in line:
                if pending is None:
                    raise ChemistryError(
                        f"line {line_no}: efficiencies without a reaction")
                for nm, eff in _EFF_RE.findall(line):
                    if pending["third_body"] is None:
                        raise ChemistryError(
                            f"line {line_no}: efficiencies on a reaction "
                            f"without +M")
                    pending["third_body"][nm] = float(eff)
                continue
            finish_pending()
            pending = _parse_reaction_line(line, line_no)
            continue
        raise ChemistryError(
            f"line {line_no}: content outside any section: {raw!r}")
    finish_pending()
    if not species_names:
        raise ChemistryError("deck declares no species")
    species = [make_species(nm) for nm in species_names]
    return Mechanism(name, species, reactions)


def _parse_reaction_line(line: str, line_no: int) -> dict:
    tokens = line.split()
    if len(tokens) < 4:
        raise ChemistryError(
            f"line {line_no}: need '<equation> A b Ea', got {line!r}")
    try:
        A, b, Ea = (float(v) for v in tokens[-3:])
    except ValueError:
        raise ChemistryError(
            f"line {line_no}: last three tokens must be A b Ea "
            f"in {line!r}") from None
    equation = " ".join(tokens[:-3])
    reversible = "<=>" in equation or ("=" in equation
                                       and "=>" not in equation)
    sep = "<=>" if "<=>" in equation else ("=>" if "=>" in equation
                                           else "=")
    try:
        lhs, rhs = equation.split(sep)
    except ValueError:
        raise ChemistryError(
            f"line {line_no}: bad equation {equation!r}") from None
    falloff_m = "(+M)" in lhs.replace(" ", "") or \
        "(+M)" in rhs.replace(" ", "")
    plain_m = False
    lhs = lhs.replace("(+M)", " ").replace("(+m)", " ")
    rhs = rhs.replace("(+M)", " ").replace("(+m)", " ")

    def parse_side(side: str) -> tuple[dict[str, int], bool]:
        out: dict[str, int] = {}
        has_m = False
        for term in side.split("+"):
            term = term.strip()
            if not term:
                continue
            if term.upper() == "M":
                has_m = True
                continue
            m = re.match(r"^(\d+)\s*(.+)$", term)
            if m:
                nu, nm = int(m.group(1)), m.group(2).strip()
            else:
                nu, nm = 1, term
            out[nm] = out.get(nm, 0) + nu
        return out, has_m

    reactants, m_l = parse_side(lhs)
    products, m_r = parse_side(rhs)
    plain_m = m_l or m_r
    if plain_m and (m_l != m_r):
        raise ChemistryError(
            f"line {line_no}: +M must appear on both sides")
    order = sum(reactants.values()) + (1 if plain_m else 0)
    return {
        "reactants": reactants,
        "products": products,
        "A": A,
        "b": b,
        "Ea": Ea,
        "order": order,
        "reversible": reversible,
        "third_body": {} if (plain_m or falloff_m) else None,
        "low": None,
        "troe": None,
    }
