"""The light 8-species / 5-reaction mechanism for the overhead study.

"We created a code identical to the one in Sec. 4.1, except that the
utilized mechanism had 8 species and 5 reactions ... We deliberately used
a light-weight RHS, so that the virtual function call would be a larger
fraction of the computational time."  (paper §5.1, Table 4)

Species: H2, O2, O, OH, H2O, H, HO2, N2 (no H2O2); the five reactions are
the chain core plus HO2 formation/consumption.
"""

from __future__ import annotations

from repro.chemistry.mechanism import Mechanism
from repro.chemistry.reaction import Arrhenius, Reaction
from repro.chemistry.thermo_data import make_species

SPECIES_8 = ["H2", "O2", "O", "OH", "H2O", "H", "HO2", "N2"]

_EFF = {"H2": 2.5, "H2O": 12.0}


def _r(reactants, products, A, b, Ea, order, third_body=None):
    return Reaction(
        reactants=reactants,
        products=products,
        rate=Arrhenius.from_cgs(A, b, Ea, order),
        reversible=True,
        third_body=third_body,
    )


def h2_lite_mechanism() -> Mechanism:
    """Build the 8-species / 5-reaction light H2-air mechanism."""
    species = [make_species(nm) for nm in SPECIES_8]
    rxns = [
        _r({"H": 1, "O2": 1}, {"O": 1, "OH": 1}, 1.915e14, 0.00, 16440.0, 2),
        _r({"O": 1, "H2": 1}, {"H": 1, "OH": 1}, 5.080e04, 2.67, 6290.0, 2),
        _r({"H2": 1, "OH": 1}, {"H2O": 1, "H": 1}, 2.160e08, 1.51,
           3430.0, 2),
        _r({"H": 1, "O2": 1}, {"HO2": 1}, 6.366e20, -1.72, 524.8, 3,
           third_body=dict(_EFF)),
        _r({"HO2": 1, "H": 1}, {"OH": 2}, 7.079e13, 0.00, 295.0, 2),
    ]
    return Mechanism("h2-lite-8sp-5rxn", species, rxns)
