"""Species descriptors: name, composition, molecular weight, thermo."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chemistry.elements import molecular_weight
from repro.chemistry.nasa7 import Nasa7
from repro.errors import ChemistryError


@dataclass(frozen=True)
class Species:
    """One chemical species.

    Attributes
    ----------
    name:
        Conventional symbol, e.g. ``"H2O"``.
    composition:
        Elemental make-up, e.g. ``{"H": 2, "O": 1}``.
    thermo:
        NASA-7 polynomial set.
    weight:
        Molecular weight [kg/mol]; derived from composition when omitted.
    """

    name: str
    composition: dict[str, int]
    thermo: Nasa7
    weight: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ChemistryError("species needs a name")
        if self.weight <= 0.0:
            object.__setattr__(
                self, "weight", molecular_weight(self.composition))

    def n_atoms(self, element: str) -> int:
        return self.composition.get(element, 0)

    def __repr__(self) -> str:
        return f"Species({self.name}, W={self.weight * 1e3:.3f} g/mol)"
