"""Zero-dimensional reactor models.

The paper's 0D ignition problem (§4.1) solves ``dΦ/dt = G(Φ)`` with
``Φ = {T, Y_1, ..., Y_{N-1}, P0}`` in a rigid, adiabatic vessel (constant
mass and volume); the pressure equation is supplied by the ``dPdt``
component.  :class:`ConstantVolumeReactor` mirrors that state layout.
:class:`ConstantPressureReactor` is the per-cell chemistry model of the 2D
reaction-diffusion flame ("pressure is assumed to be constant in time and
space, i.e. burning in an open domain").
"""

from __future__ import annotations

import numpy as np

from repro.chemistry.mechanism import Mechanism
from repro.chemistry.nasa7 import R_UNIVERSAL
from repro.errors import ChemistryError


class ConstantPressureReactor:
    """Adiabatic constant-pressure reactor.

    State vector: ``y = [T, Y_0, ..., Y_{ns-1}]`` (length ``ns + 1``).
    """

    def __init__(self, mech: Mechanism, pressure: float) -> None:
        if pressure <= 0.0:
            raise ChemistryError(f"non-positive pressure {pressure}")
        self.mech = mech
        self.pressure = float(pressure)
        self.nfe = 0  #: number of RHS evaluations (Table 4's NFE)

    @property
    def n_state(self) -> int:
        return self.mech.n_species + 1

    def initial_state(self, T0: float, Y0: dict[str, float] | np.ndarray
                      ) -> np.ndarray:
        return _pack_state(self.mech, T0, Y0)

    def unpack(self, y: np.ndarray) -> tuple[float, np.ndarray]:
        return float(y[0]), np.asarray(y[1:])

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        """dy/dt = G(y) at constant pressure."""
        self.nfe += 1
        mech = self.mech
        T = max(float(y[0]), 50.0)
        Y = np.clip(y[1:], 0.0, None)
        rho = mech.density(T, self.pressure, Y)
        C = mech.concentrations(rho, Y)
        wdot = mech.wdot(T, C)
        dY = wdot * mech.weights / rho
        h = mech.h_mass_species(T)
        cp = mech.cp_mass(T, Y)
        dT = -float(np.dot(h, wdot * mech.weights)) / (rho * cp)
        return np.concatenate(([dT], dY))


class ConstantVolumeReactor:
    """Adiabatic constant-mass, constant-volume reactor (rigid walls).

    State vector: ``y = [T, Y_0, ..., Y_{ns-1}, P]`` — pressure rides along
    exactly as in the paper's Φ, with its own evolution equation (the
    ``dPdt`` closure).
    """

    def __init__(self, mech: Mechanism, T0: float, P0: float,
                 Y0: dict[str, float] | np.ndarray) -> None:
        if T0 <= 0.0 or P0 <= 0.0:
            raise ChemistryError("initial T and P must be positive")
        self.mech = mech
        state0 = _pack_state(mech, T0, Y0)
        #: fixed density set by the initial fill [kg/m^3]
        self.rho = float(mech.density(T0, P0, state0[1:]))
        self._y0 = np.concatenate((state0, [P0]))
        self.nfe = 0

    @property
    def n_state(self) -> int:
        return self.mech.n_species + 2

    def initial_state(self) -> np.ndarray:
        return self._y0.copy()

    def unpack(self, y: np.ndarray) -> tuple[float, np.ndarray, float]:
        return float(y[0]), np.asarray(y[1:-1]), float(y[-1])

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        """dy/dt = G(y) at constant mass and volume."""
        self.nfe += 1
        mech = self.mech
        T = max(float(y[0]), 50.0)
        Y = np.clip(y[1:-1], 0.0, None)
        rho = self.rho
        C = mech.concentrations(rho, Y)
        wdot = mech.wdot(T, C)
        dY = wdot * mech.weights / rho
        u = mech.u_mass_species(T)
        cv = mech.cv_mass(T, Y)
        dT = -float(np.dot(u, wdot * mech.weights)) / (rho * cv)
        dP = self.dPdt(T, Y, dT, dY)
        return np.concatenate(([dT], dY, [dP]))

    def dPdt(self, T: float, Y: np.ndarray, dT: float,
             dY: np.ndarray) -> float:
        """Pressure evolution for the rigid adiabatic vessel.

        From P = ρ R T / W̄ with ρ fixed:
        dP/dt = ρ R (dT/dt / W̄ + T Σ_i (dY_i/dt) / W_i).
        This is exactly what the paper's ``dPdt`` component supplies to the
        heat equation through the ``problemModeler`` adaptor.
        """
        mech = self.mech
        inv_W = float(np.dot(Y, 1.0 / mech.weights))
        dinv_W = float(np.dot(dY, 1.0 / mech.weights))
        return self.rho * R_UNIVERSAL * (dT * inv_W + T * dinv_W)


def constant_volume_rhs(mech: Mechanism, rho: float):
    """``f(t, y) -> dy/dt`` for one rigid adiabatic vessel of fixed
    density ``rho`` over ``y = [T, Y..., P]``.

    This closure performs *operation-for-operation* the same float
    arithmetic as the assembled component path
    (:class:`repro.components.problem_modeler.ProblemModeler`'s RHS plus
    the ``DPDt`` closure), so a solve against it is bitwise identical to
    a solve through the CCA assembly — the contract the
    :mod:`repro.serve` batch planner relies on when it answers a job
    from a coalesced solve instead of a framework run.
    """
    rho = float(rho)

    def rhs(t: float, y: np.ndarray) -> np.ndarray:
        T = max(float(y[0]), 50.0)
        Y = np.clip(y[1:-1], 0.0, None)
        C = mech.concentrations(rho, Y)
        wdot = mech.wdot(T, C)
        dY = wdot * mech.weights / rho
        u = mech.u_mass_species(np.asarray(T, dtype=float))
        cv = mech.cv_mass(T, Y)
        dT = -float(np.dot(u, wdot * mech.weights)) / (rho * cv)
        inv_W = float(np.dot(Y, 1.0 / mech.weights))
        dinv_W = float(np.dot(dY, 1.0 / mech.weights))
        dP = rho * R_UNIVERSAL * (dT * inv_W + T * dinv_W)
        return np.concatenate(([dT], dY, [dP]))

    return rhs


class BatchAdvanceResult:
    """States and per-condition solver statistics of one batched advance."""

    __slots__ = ("states", "nfe", "nsteps")

    def __init__(self, states: np.ndarray, nfe: np.ndarray,
                 nsteps: np.ndarray) -> None:
        self.states = states    #: (B, n_state) advanced state rows
        self.nfe = nfe          #: (B,) RHS evaluations per condition
        self.nsteps = nsteps    #: (B,) solver steps per condition

    def __len__(self) -> int:
        return self.states.shape[0]


def advance_batch(mech: Mechanism, rhos: np.ndarray, states: np.ndarray,
                  t0: float, t1: float, *, rtol: float = 1e-8,
                  atol: float = 1e-12,
                  method: str = "bdf") -> BatchAdvanceResult:
    """Advance a batch of independent constant-volume reactors from
    ``t0`` to ``t1`` in one call.

    ``states`` has shape ``(B, n_species + 2)`` — one ``[T, Y..., P]``
    row per condition — and ``rhos`` the matching fixed vessel
    densities.  Every condition keeps its *own* adaptive solver
    trajectory (a fresh CVODE per row, exactly as
    :class:`~repro.components.cvode_component.CvodeComponent` creates a
    fresh integrator per ``integrate`` call), so the result of each row
    is bitwise identical to solving that condition alone; what the batch
    amortizes is everything around the solve — one mechanism build, one
    process, one scheduling decision for B requests.  A future
    lockstep-vectorized Newton (ROADMAP item 1) can slot in behind this
    signature without changing callers.
    """
    states = np.asarray(states, dtype=float)
    rhos = np.asarray(rhos, dtype=float)
    if states.ndim != 2 or states.shape[1] != mech.n_species + 2:
        raise ChemistryError(
            f"states must be (B, {mech.n_species + 2}), got {states.shape}")
    if rhos.shape != (states.shape[0],):
        raise ChemistryError(
            f"rhos must be ({states.shape[0]},), got {rhos.shape}")
    from repro.integrators.cvode import CVode

    out = np.empty_like(states)
    nfe = np.zeros(states.shape[0], dtype=int)
    nsteps = np.zeros(states.shape[0], dtype=int)
    for i in range(states.shape[0]):
        cv = CVode(constant_volume_rhs(mech, rhos[i]), float(t0),
                   np.asarray(states[i], dtype=float), rtol=rtol, atol=atol,
                   method=method)
        out[i] = cv.integrate_to(float(t1))
        nfe[i] = cv.stats.nfe
        nsteps[i] = cv.stats.nsteps
    return BatchAdvanceResult(out, nfe, nsteps)


def _pack_state(mech: Mechanism, T0: float,
                Y0: dict[str, float] | np.ndarray) -> np.ndarray:
    if isinstance(Y0, dict):
        Y = np.zeros(mech.n_species)
        for nm, val in Y0.items():
            Y[mech.species_index(nm)] = val
    else:
        Y = np.asarray(Y0, dtype=float)
        if Y.shape != (mech.n_species,):
            raise ChemistryError(
                f"Y0 must have {mech.n_species} entries, got {Y.shape}")
    total = Y.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ChemistryError(f"mass fractions sum to {total}, expected 1")
    return np.concatenate(([float(T0)], Y / total))
