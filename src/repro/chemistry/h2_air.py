"""The 9-species / 19-reaction H2-air mechanism.

"We use a H2-Air mechanism with 9 species and 19 reversible reactions
[26]."  (paper §4.1, [26] = Yetter, Dryer & Rabitz).  The rate set below
is the widely used H2/O2 subset of that family (Mueller/Li lineage):
shuffle reactions, recombination with third bodies, the pressure-dependent
HO2 formation and the H2O2 loop.  N2 is the inert bath gas.

Deck units are conventional (cm^3, mol, s, cal/mol); conversion to SI
happens in :func:`repro.chemistry.reaction.Arrhenius.from_cgs`.
"""

from __future__ import annotations

from repro.chemistry.mechanism import Mechanism
from repro.chemistry.reaction import Arrhenius, Falloff, Reaction
from repro.chemistry.thermo_data import make_species

SPECIES_9 = ["H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2"]

#: Standard enhanced collision efficiencies for the H2/O2 system.
_EFF = {"H2": 2.5, "H2O": 12.0}


def _r(reactants, products, A, b, Ea, order, third_body=None, falloff=None):
    return Reaction(
        reactants=reactants,
        products=products,
        rate=Arrhenius.from_cgs(A, b, Ea, order),
        reversible=True,
        third_body=third_body,
        falloff=falloff,
    )


def h2_air_mechanism() -> Mechanism:
    """Build the 9-species / 19-reaction H2-air mechanism."""
    species = [make_species(nm) for nm in SPECIES_9]
    rxns = [
        # --- H2/O2 chain (shuffle) reactions -------------------------------
        _r({"H": 1, "O2": 1}, {"O": 1, "OH": 1}, 1.915e14, 0.00, 16440.0, 2),
        _r({"O": 1, "H2": 1}, {"H": 1, "OH": 1}, 5.080e04, 2.67, 6290.0, 2),
        _r({"H2": 1, "OH": 1}, {"H2O": 1, "H": 1}, 2.160e08, 1.51, 3430.0, 2),
        _r({"O": 1, "H2O": 1}, {"OH": 2}, 2.970e06, 2.02, 13400.0, 2),
        # --- dissociation / recombination with third bodies ----------------
        _r({"H2": 1}, {"H": 2}, 4.577e19, -1.40, 104380.0, 2,
           third_body=dict(_EFF)),
        _r({"O": 2}, {"O2": 1}, 6.165e15, -0.50, 0.0, 3,
           third_body=dict(_EFF)),
        _r({"O": 1, "H": 1}, {"OH": 1}, 4.714e18, -1.00, 0.0, 3,
           third_body=dict(_EFF)),
        _r({"H": 1, "OH": 1}, {"H2O": 1}, 3.800e22, -2.00, 0.0, 3,
           third_body=dict(_EFF)),
        # --- HO2 formation (pressure dependent) and consumption ------------
        _r({"H": 1, "O2": 1}, {"HO2": 1}, 1.475e12, 0.60, 0.0, 2,
           third_body=dict(_EFF),
           falloff=Falloff(low=Arrhenius.from_cgs(
               6.366e20, -1.72, 524.8, 3))),
        _r({"HO2": 1, "H": 1}, {"H2": 1, "O2": 1}, 1.660e13, 0.00, 823.0, 2),
        _r({"HO2": 1, "H": 1}, {"OH": 2}, 7.079e13, 0.00, 295.0, 2),
        _r({"HO2": 1, "O": 1}, {"O2": 1, "OH": 1}, 3.250e13, 0.00, 0.0, 2),
        _r({"HO2": 1, "OH": 1}, {"H2O": 1, "O2": 1}, 2.890e13, 0.00,
           -497.0, 2),
        # --- H2O2 loop ------------------------------------------------------
        _r({"HO2": 2}, {"H2O2": 1, "O2": 1}, 4.200e14, 0.00, 11982.0, 2),
        _r({"H2O2": 1}, {"OH": 2}, 2.951e14, 0.00, 48430.0, 1,
           third_body=dict(_EFF),
           falloff=Falloff(low=Arrhenius.from_cgs(
               1.202e17, 0.00, 45500.0, 2))),
        _r({"H2O2": 1, "H": 1}, {"H2O": 1, "OH": 1}, 2.410e13, 0.00,
           3970.0, 2),
        _r({"H2O2": 1, "H": 1}, {"HO2": 1, "H2": 1}, 4.820e13, 0.00,
           7950.0, 2),
        _r({"H2O2": 1, "O": 1}, {"OH": 1, "HO2": 1}, 9.550e06, 2.00,
           3970.0, 2),
        _r({"H2O2": 1, "OH": 1}, {"HO2": 1, "H2O": 1}, 1.000e12, 0.00,
           0.0, 2),
    ]
    return Mechanism("h2-air-9sp-19rxn", species, rxns)


def h2_air_phi(phi: float) -> dict[str, float]:
    """H2-air mass fractions at equivalence ratio ``phi``
    (``2 phi H2 + O2 + 3.76 N2``; ``phi = 1`` is stoichiometric).

    The 0D-ignition :class:`~repro.components.initializers.Initializer`
    exposes this as its ``phi`` parameter, which makes equivalence-ratio
    sweeps a batchable one-parameter family for :mod:`repro.serve`.
    """
    if phi <= 0.0:
        raise ValueError(f"equivalence ratio must be positive, got {phi}")
    from repro.chemistry.thermo_data import make_species as mk

    w = {nm: mk(nm).weight for nm in ("H2", "O2", "N2")}
    moles = {"H2": 2.0 * phi, "O2": 1.0, "N2": 3.76}
    mass = {nm: moles[nm] * w[nm] for nm in moles}
    total = sum(mass.values())
    Y = {nm: 0.0 for nm in SPECIES_9}
    Y.update({nm: m / total for nm, m in mass.items()})
    return Y


def stoichiometric_h2_air() -> dict[str, float]:
    """Stoichiometric H2-air mass fractions (2 H2 + O2 + 3.76 N2)."""
    return h2_air_phi(1.0)
