"""Elementary reactions: Arrhenius rates, third bodies, falloff,
reversibility through equilibrium.

Rate constants follow the modified Arrhenius form ``k = A T^b exp(-Ea/RT)``
(SI units internally).  Reverse rates come from the equilibrium constant
computed from NASA-7 Gibbs energies — the standard Chemkin convention the
paper's F77 thermochemistry libraries implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chemistry.nasa7 import R_UNIVERSAL
from repro.errors import ChemistryError

#: Reference pressure for equilibrium constants [Pa].
P_REF = 101325.0

#: Calories per Joule conversion for input decks.
CAL_TO_J = 4.184


@dataclass(frozen=True)
class Arrhenius:
    """Modified Arrhenius parameters (SI: mol, m^3, s, J/mol)."""

    A: float
    b: float = 0.0
    Ea: float = 0.0

    def k(self, T: np.ndarray | float) -> np.ndarray:
        """Rate constant at temperature(s) ``T``."""
        T = np.asarray(T, dtype=float)
        return self.A * T**self.b * np.exp(-self.Ea / (R_UNIVERSAL * T))

    @staticmethod
    def from_cgs(A: float, b: float, Ea_cal: float, order: int) -> "Arrhenius":
        """Convert deck units: A in (cm^3/mol)^(order-1)/s, Ea in cal/mol.

        ``order`` is the molecularity of the (forward) reaction including
        any third body.
        """
        return Arrhenius(A * (1e-6) ** (order - 1), b, Ea_cal * CAL_TO_J)


@dataclass(frozen=True)
class Falloff:
    """Lindemann / Troe pressure falloff between ``low`` (k0) and the
    high-pressure limit.  ``troe`` holds (a, T***, T*, T**) or None for
    pure Lindemann blending."""

    low: Arrhenius
    troe: tuple[float, ...] | None = None

    def blend(self, k_inf: np.ndarray, T: np.ndarray,
              conc_m: np.ndarray) -> np.ndarray:
        """Effective rate constant given the third-body concentration."""
        k0 = self.low.k(T)
        pr = np.maximum(k0 * conc_m / np.maximum(k_inf, 1e-300), 1e-300)
        f = pr / (1.0 + pr)
        if self.troe is not None:
            a = self.troe[0]
            t3, t1 = self.troe[1], self.troe[2]
            fcent = (1.0 - a) * np.exp(-T / t3) + a * np.exp(-T / t1)
            if len(self.troe) > 3 and self.troe[3] > 0.0:
                fcent = fcent + np.exp(-self.troe[3] / T)
            fcent = np.maximum(fcent, 1e-300)
            log_fc = np.log10(fcent)
            c = -0.4 - 0.67 * log_fc
            n = 0.75 - 1.27 * log_fc
            log_pr = np.log10(pr)
            inner = (log_pr + c) / (n - 0.14 * (log_pr + c))
            log_f = log_fc / (1.0 + inner**2)
            f = f * 10.0**log_f
        return k_inf * f


@dataclass(frozen=True)
class Reaction:
    """One (possibly reversible) elementary reaction.

    Attributes
    ----------
    reactants / products:
        ``{species_name: stoichiometric coefficient}``.
    rate:
        High-pressure / plain Arrhenius parameters.
    reversible:
        Reverse rate from equilibrium when True.
    third_body:
        ``None`` (no third body) or a dict of collision efficiencies
        (default efficiency 1.0 for unlisted species).
    falloff:
        Optional pressure falloff (requires a third body).
    """

    reactants: dict[str, int]
    products: dict[str, int]
    rate: Arrhenius
    reversible: bool = True
    third_body: dict[str, float] | None = None
    falloff: Falloff | None = None

    def __post_init__(self) -> None:
        if not self.reactants or not self.products:
            raise ChemistryError("reaction needs reactants and products")
        if self.falloff is not None and self.third_body is None:
            raise ChemistryError("falloff reactions need a third body")
        for side in (self.reactants, self.products):
            for name, nu in side.items():
                if nu < 1:
                    raise ChemistryError(
                        f"stoichiometric coefficient of {name} must be >= 1")

    @property
    def has_third_body(self) -> bool:
        return self.third_body is not None

    def scaled(self, factor: float) -> "Reaction":
        """This reaction with every forward pre-exponential multiplied
        by ``factor`` (the falloff low-pressure limit scales too, so the
        blended rate scales uniformly across the pressure range).

        Reverse rates come from equilibrium (``kr = kf / Kc``), so they
        pick up the same factor — a uniform kinetic-rate perturbation,
        the standard knob of UQ ensembles over a mechanism.
        """
        factor = float(factor)
        if factor <= 0.0:
            raise ChemistryError(
                f"rate scale factor must be positive, got {factor}")
        from dataclasses import replace
        falloff = self.falloff
        if falloff is not None:
            falloff = replace(
                falloff, low=replace(falloff.low, A=falloff.low.A * factor))
        return replace(self, rate=replace(self.rate, A=self.rate.A * factor),
                       falloff=falloff)

    def equation(self) -> str:
        """Human-readable equation string."""

        def side(d: dict[str, int]) -> str:
            terms = [(f"{nu} " if nu > 1 else "") + name
                     for name, nu in d.items()]
            return " + ".join(terms)

        m = ""
        if self.has_third_body:
            m = " (+M)" if self.falloff else " + M"
        arrow = " <=> " if self.reversible else " => "
        return side(self.reactants) + m + arrow + side(self.products) + m

    def delta_nu(self) -> int:
        """Mole change products - reactants (gas phase, no third body)."""
        return sum(self.products.values()) - sum(self.reactants.values())

    def check_balance(self, species_by_name: dict) -> None:
        """Verify elemental balance; raises ChemistryError if violated."""
        elements: dict[str, int] = {}
        for name, nu in self.reactants.items():
            for el, n in species_by_name[name].composition.items():
                elements[el] = elements.get(el, 0) + nu * n
        for name, nu in self.products.items():
            for el, n in species_by_name[name].composition.items():
                elements[el] = elements.get(el, 0) - nu * n
        bad = {el: n for el, n in elements.items() if n != 0}
        if bad:
            raise ChemistryError(
                f"unbalanced reaction {self.equation()}: {bad}")

    def __repr__(self) -> str:
        return f"Reaction({self.equation()})"
