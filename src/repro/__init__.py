"""repro — a CCA-componentized SAMR hydrodynamics toolkit.

This package is a from-scratch Python reproduction of the system described
in *"Using the Common Component Architecture to Design High Performance
Scientific Simulation Codes"* (Lefantzi, Ray, Najm — IPDPS 2003).

Layered architecture (bottom-up):

``repro.util``
    Small shared utilities (options, logging, timing).
``repro.mpi``
    In-process SCMD/MPI-1 substrate with a virtual-time machine model.
``repro.samr``
    Structured adaptive mesh refinement data manager (GrACE analog).
``repro.chemistry`` / ``repro.transport``
    Thermochemistry (NASA-7 + Arrhenius kinetics) and mixture-averaged
    transport properties (DRFM analog).
``repro.integrators``
    CVODE-like BDF/Adams stiff integrator, RKC, SSP-RK2.
``repro.hydro``
    Compressible Euler finite-volume kernels (Godunov + EFM fluxes).
``repro.cca``
    The component framework itself (CCAFFEINE analog): ports, components,
    services, script-driven assembly, SCMD multiplexer.
``repro.components``
    The paper's concrete components, wrapping the substrates above.
``repro.apps``
    The three applications: 0D ignition, 2D reaction-diffusion, 2D
    shock-interface interaction.
``repro.bench``
    Harnesses regenerating every table and figure of the paper.
"""

from repro.version import __version__

__all__ = ["__version__"]
