"""The SAMR patch hierarchy (Berger-Collela style).

"As a first step, a uniform coarse mesh is overlaid on the domain ...
finer meshes are created by dividing the coarse cells symmetrically by a
constant refinement factor.  This occurs recursively, leading to a
hierarchy of patches."  (paper §3)

The :class:`Hierarchy` owns geometry (physical origin and base spacing),
level bookkeeping, patch identity allocation and ownership assignment; the
regridding cycle itself lives in :mod:`repro.samr.regrid`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.errors import MeshError
from repro.mpi import sanitizer as _tsan
from repro.samr.box import Box
from repro.samr.boxlist import intersect_all, is_disjoint
from repro.samr.level import Level
from repro.samr.loadbalance import balance_greedy
from repro.samr.patch import Patch


class Hierarchy:
    """A hierarchy of refinement levels over a logically rectangular domain.

    Parameters
    ----------
    base_shape:
        Cells of the coarsest mesh, e.g. ``(100, 100)``.
    origin / extent:
        Physical coordinates of the domain's low corner and its size.
    ratio:
        Constant refinement factor between consecutive levels (paper: 2).
    max_levels:
        Upper bound on the number of levels (1 = uniform mesh).
    nghost:
        Ghost width of every patch.
    nranks:
        Size of the SCMD cohort the hierarchy is distributed over.
    """

    def __init__(
        self,
        base_shape: tuple[int, ...],
        origin: tuple[float, ...] | None = None,
        extent: tuple[float, ...] | None = None,
        ratio: int = 2,
        max_levels: int = 1,
        nghost: int = 2,
        nranks: int = 1,
        balancer: Callable[[list[Box], int], list[int]] = balance_greedy,
    ) -> None:
        ndim = len(base_shape)
        self.origin = tuple(origin) if origin else (0.0,) * ndim
        self.extent = tuple(extent) if extent else tuple(float(n) for n in base_shape)
        if len(self.origin) != ndim or len(self.extent) != ndim:
            raise MeshError("origin/extent dimensionality mismatch")
        if ratio < 2:
            raise MeshError(f"refinement ratio must be >= 2, got {ratio}")
        if max_levels < 1:
            raise MeshError("max_levels must be >= 1")
        self.ratio = ratio
        self.max_levels = max_levels
        self.nghost = nghost
        self.nranks = nranks
        self.balancer = balancer
        self._next_patch_id = 0
        base_domain = Box.from_shape(base_shape)
        dx0 = tuple(e / n for e, n in zip(self.extent, base_shape))
        self.levels: list[Level] = [Level(0, base_domain, dx0)]

    # -- identity / geometry --------------------------------------------------
    def new_patch_id(self) -> int:
        # Patch metadata is replicated per rank in SCMD mode; a hierarchy
        # shared across rank-threads would race on this allocator, so the
        # armed sanitizer clock-checks it (disabled cost: one flag check).
        if _tsan.on:
            _tsan.record_write(f"Hierarchy patch-id allocator 0x{id(self):x}")
        pid = self._next_patch_id
        self._next_patch_id += 1
        return pid

    @property
    def next_patch_id(self) -> int:
        """The id the next :meth:`new_patch_id` call will hand out
        (checkpoint metadata; does not consume an id)."""
        return self._next_patch_id

    def seed_patch_ids(self, next_id: int) -> None:
        """Restart the id allocator at ``next_id`` (checkpoint restore).

        Restores must replay the allocator exactly so patches created
        after a restart get the same identities as in an uninterrupted
        run; rewinding below an id already handed out would mint
        duplicates, so that is rejected.
        """
        if next_id < self._next_patch_id:
            raise MeshError(
                f"cannot rewind patch-id allocator from "
                f"{self._next_patch_id} to {next_id}")
        self._next_patch_id = next_id

    @property
    def ndim(self) -> int:
        return self.levels[0].domain.ndim

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def finest(self) -> Level:
        return self.levels[-1]

    def level(self, n: int) -> Level:
        if not 0 <= n < len(self.levels):
            raise MeshError(f"no level {n} (have {len(self.levels)})")
        return self.levels[n]

    def domain_at(self, n: int) -> Box:
        """The full domain box in level ``n``'s index space."""
        box = self.levels[0].domain
        for _ in range(n):
            box = box.refine(self.ratio)
        return box

    def dx(self, n: int) -> tuple[float, ...]:
        return tuple(d / self.ratio**n for d in self.levels[0].dx)

    def all_patches(self) -> Iterator[Patch]:
        for level in self.levels:
            yield from level.patches

    def patch_by_id(self, pid: int) -> Patch:
        for level in self.levels:
            for p in level.patches:
                if p.id == pid:
                    return p
        raise MeshError(f"no patch with id {pid}")

    def total_cells(self) -> int:
        return sum(level.ncells for level in self.levels)

    # -- level construction --------------------------------------------------
    def build_base_level(self, decomposition: Sequence[Box] | None = None) -> Level:
        """Populate level 0, decomposed across ranks.

        Without an explicit ``decomposition`` the domain is split into
        ``nranks`` near-equal strips along the first axis.
        """
        level = self.levels[0]
        if level.patches:
            raise MeshError("base level already built")
        boxes = list(decomposition) if decomposition else self._strips(
            level.domain, self.nranks)
        self._check_partition(boxes, level.domain)
        owners = self.balancer(boxes, self.nranks)
        for box, owner in zip(boxes, owners):
            level.add(Patch(self.new_patch_id(), box, 0, owner, self.nghost))
        return level

    @staticmethod
    def _strips(domain: Box, n: int) -> list[Box]:
        total = domain.shape[0]
        if n > total:
            raise MeshError(f"cannot cut {total} rows into {n} strips")
        edges = [domain.lo[0] + (total * k) // n for k in range(n + 1)]
        boxes = []
        for k in range(n):
            lo = (edges[k],) + domain.lo[1:]
            hi = (edges[k + 1] - 1,) + domain.hi[1:]
            boxes.append(Box(lo, hi))
        return boxes

    @staticmethod
    def _check_partition(boxes: Sequence[Box], domain: Box) -> None:
        if not is_disjoint(list(boxes)):
            raise MeshError("decomposition boxes overlap")
        if sum(b.size for b in boxes) != domain.size:
            raise MeshError("decomposition does not tile the domain")
        for b in boxes:
            if not domain.contains_box(b):
                raise MeshError(f"decomposition box {b} escapes the domain")

    def set_level_boxes(self, n: int, boxes: Sequence[Box]) -> Level:
        """Replace level ``n`` (n >= 1) with patches over ``boxes``.

        Boxes are given in level ``n`` index space; they are clipped to the
        domain and to proper nesting inside level ``n-1``'s patch regions.
        Ownership is assigned by the hierarchy's balancer; each patch's
        ``parent`` is a coarse patch overlapping its coarsened box (used
        for parent-child rank affinity).
        """
        if n < 1:
            raise MeshError("level 0 is rebuilt via build_base_level")
        if n > len(self.levels):
            raise MeshError(f"cannot create level {n}: level {n-1} missing")
        if n >= self.max_levels:
            raise MeshError(f"level {n} exceeds max_levels={self.max_levels}")
        domain = self.domain_at(n)
        clipped = intersect_all(list(boxes), domain)
        # proper nesting: fine boxes must live under coarse patches
        coarse = self.levels[n - 1]
        nested: list[Box] = []
        for b in clipped:
            for cp in coarse.patches:
                piece = b.intersection(cp.box.refine(self.ratio))
                if not piece.empty:
                    nested.append(piece)
        nested = _dedupe_disjoint(nested)
        level = Level(n, domain, self.dx(n))
        if nested:
            owners = self.balancer(nested, self.nranks)
            for box, owner in zip(nested, owners):
                parent = self._find_parent(box, coarse)
                level.add(Patch(self.new_patch_id(), box, n, owner,
                                self.nghost, parent))
        if n == len(self.levels):
            self.levels.append(level)
        else:
            self.levels[n] = level
        return level

    def _find_parent(self, box: Box, coarse: Level) -> int:
        cbox = box.coarsen(self.ratio)
        best, best_overlap = -1, 0
        for cp in coarse.patches:
            overlap = cp.box.intersection(cbox).size
            if overlap > best_overlap:
                best, best_overlap = cp.id, overlap
        return best

    def drop_levels_above(self, n: int) -> None:
        """Destroy levels finer than ``n`` (regions deemed over-refined)."""
        del self.levels[n + 1:]

    def __repr__(self) -> str:
        return "Hierarchy(" + ", ".join(repr(l) for l in self.levels) + ")"


def _dedupe_disjoint(boxes: list[Box]) -> list[Box]:
    """Make a possibly-overlapping list disjoint by subtracting earlier
    boxes from later ones."""
    from repro.samr.boxlist import subtract_all

    out: list[Box] = []
    for b in boxes:
        out.extend(subtract_all([b], out))
    return [b for b in out if not b.empty]
