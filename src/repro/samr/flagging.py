"""Error estimation: flagging cells for refinement.

"The coarseness of the mesh causes errors (suitably defined) in regions of
high gradients.  Based on an error threshold, grid points in these regions
are flagged..."  (paper §3).  The estimator used by ``ErrorEstAndRegrid``
"estimates the gradients at a cell and flags regions for
refinement/coarsening" (§4.2) — we use undivided differences, the standard
SAMR choice.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import MeshError
from repro.samr.box import Box
from repro.samr.dataobject import DataObject


def undivided_gradient(field: np.ndarray) -> np.ndarray:
    """Max-over-axes undivided central difference |f_{i+1} - f_{i-1}| / 2.

    ``field`` must carry at least one ghost layer on each face; the result
    covers the interior (each axis shrinks by 2).
    """
    if any(n < 3 for n in field.shape):
        raise MeshError(f"field too small for gradient: shape {field.shape}")
    est = None
    for axis in range(field.ndim):
        hi = np.take(field, range(2, field.shape[axis]), axis=axis)
        lo = np.take(field, range(0, field.shape[axis] - 2), axis=axis)
        grad = 0.5 * np.abs(hi - lo)
        # clip the other axes to the interior
        idx = tuple(
            slice(None) if ax == axis else slice(1, -1)
            for ax in range(field.ndim)
        )
        grad = grad[idx]
        est = grad if est is None else np.maximum(est, grad)
    return est


def flag_gradient(
    dobj: DataObject,
    level: int,
    threshold: float,
    variables: list[int] | None = None,
    relative: bool = True,
    comm=None,
) -> dict[int, np.ndarray]:
    """Flag cells whose undivided gradient exceeds ``threshold``.

    With ``relative=True`` the threshold is a fraction of each variable's
    global max-gradient on the level (robust across problems); otherwise it
    is an absolute value applied to every variable.

    Returns ``{patch_id: bool array over the patch interior}`` for owned
    patches.  The patch ghost layers must be current (call
    :func:`repro.samr.ghost.exchange_ghosts` first).
    """
    if threshold <= 0:
        raise MeshError(f"threshold must be positive, got {threshold}")
    variables = variables if variables is not None else list(range(dobj.nvar))
    grads: dict[int, np.ndarray] = {}   # pid -> (nsel, *interior) gradients
    gmax = np.zeros(len(variables))
    for patch in dobj.owned_patches(level):
        arr = dobj.array(patch)
        per_var = []
        for k in variables:
            # use exactly one ghost ring around the interior
            pad = patch.nghost - 1
            core = arr[k]
            if pad > 0:
                core = core[(slice(pad, -pad),) * (arr.ndim - 1)]
            per_var.append(undivided_gradient(core))
        stack = np.stack(per_var)
        grads[patch.id] = stack
        if stack.size:
            gmax = np.maximum(gmax, stack.reshape(len(variables), -1).max(axis=1))
    if relative:
        if comm is not None:
            from repro.mpi.comm import Op

            gmax = comm.allreduce(gmax, op=Op.MAX)
        cutoff = threshold * np.where(gmax > 0, gmax, 1.0)
    else:
        cutoff = np.full(len(variables), threshold)
    flags: dict[int, np.ndarray] = {}
    for pid, stack in grads.items():
        flags[pid] = np.any(
            stack > cutoff.reshape((-1,) + (1,) * (stack.ndim - 1)), axis=0)
    return flags


def buffer_flags(flags: np.ndarray, n: int) -> np.ndarray:
    """Dilate a boolean flag field by ``n`` cells so refined patches keep a
    safety margin around features as they move."""
    if n < 0:
        raise MeshError("buffer width must be non-negative")
    if n == 0 or not flags.any():
        return flags.copy()
    structure = ndimage.generate_binary_structure(flags.ndim, flags.ndim)
    return ndimage.binary_dilation(flags, structure=structure, iterations=n)


def assemble_level_flags(
    hierarchy,
    level: int,
    patch_flags: dict[int, np.ndarray],
    comm=None,
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Combine per-patch interior flags into one dense boolean array over
    the level's domain index space.  In parallel every rank contributes its
    owned patches and the union is allreduced.

    Returns ``(flags, origin)`` where ``origin`` is the domain's lo corner.
    """
    domain = hierarchy.domain_at(level)
    dense = np.zeros(domain.shape, dtype=bool)
    for patch in hierarchy.level(level).patches:
        arr = patch_flags.get(patch.id)
        if arr is None:
            continue
        dense[patch.box.slices(origin=domain.lo)] |= arr
    if comm is not None and comm.size > 1:
        from repro.mpi.comm import Op

        dense = comm.allreduce(dense, op=Op.LOR)
    return dense, domain.lo
