"""Ghost-cell exchange: same-level copies, coarse-fine interpolation,
physical boundaries.

"This subsystem implements the actual movement/copying of data between
patches and the packing/unpacking of data before/after message passing."
(paper §4, Data Object subsystem)

The exchange is SCMD: patch metadata is replicated, so every rank computes
the same global transfer schedule and exchanges only the payloads it owns
via one ``alltoall``.  With ``comm=None`` (or a single rank) everything
degenerates to local copies.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.errors import MeshError
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.samr.box import Box
from repro.samr.boxlist import subtract_all
from repro.samr.dataobject import DataObject
from repro.samr.patch import Patch
from repro.samr.prolong import prolong_bilinear
from repro.samr.restrict import restrict_average

#: Physical-boundary fill callback: ``bc(patch, ghosted_array, axis, side)``
#: where ``side`` is 0 (low face) or 1 (high face).
BCFill = Callable[[Patch, np.ndarray, int, int], None]


def exchange_ghosts(
    dobj: DataObject,
    level: int,
    comm=None,
    bc: BCFill | None = None,
) -> None:
    """Fill ghost cells of every owned patch on ``level``.

    Order of operations (later fills never overwrite earlier interior
    copies):

    1. coarse-fine: ghost regions under no same-level patch are
       interpolated from level ``level-1`` (monotone bilinear);
    2. same-level: ghost regions overlapping sibling interiors are copied;
    3. physical: ghost cells outside the domain are filled by ``bc``
       (default: zero-gradient extrapolation).
    """
    t0 = time.perf_counter() if _obs.on else 0.0
    hierarchy = dobj.hierarchy
    lvl = hierarchy.level(level)
    domain = hierarchy.domain_at(level)
    rank = 0 if comm is None else comm.rank

    if level > 0:
        _coarse_fine_fill(dobj, level, comm)

    # ---- same-level copies -------------------------------------------------
    sends: list[list] = [[] for _ in range(comm.size)] if comm else []
    for dst in lvl.patches:
        halo = dst.ghost_box.intersection(domain)
        for src in lvl.patches:
            if src.id == dst.id:
                continue
            region = src.box.intersection(halo)
            if region.empty:
                continue
            if src.owner == rank and dst.owner == rank:
                dobj.array(dst)[(slice(None), *dst.slices_for(region))] = \
                    dobj.array(src)[(slice(None), *src.slices_for(region))]
            elif src.owner == rank and comm is not None:
                payload = np.ascontiguousarray(
                    dobj.array(src)[(slice(None), *src.slices_for(region))])
                sends[dst.owner].append((dst.id, region.lo, region.hi, payload))
    if comm is not None and comm.size > 1:
        incoming = comm.alltoall(sends)
        for batch in incoming:
            for dst_id, lo, hi, payload in batch:
                dst = lvl.patch_by_id(dst_id)
                region = Box(lo, hi)
                dobj.array(dst)[(slice(None), *dst.slices_for(region))] = payload

    # ---- physical boundaries -----------------------------------------------
    fill = bc or zero_gradient_bc
    for patch in dobj.owned_patches(level):
        arr = dobj.array(patch)
        for axis in range(domain.ndim):
            if patch.box.lo[axis] == domain.lo[axis]:
                fill(patch, arr, axis, 0)
            if patch.box.hi[axis] == domain.hi[axis]:
                fill(patch, arr, axis, 1)

    if _obs.on:
        shipped = sum(p.nbytes for batch in sends for *_m, p in batch)
        args = {"level": level, "nbytes": shipped}
        if comm is not None:
            args["vt"] = comm.clock
        _obs.complete("samr.ghost_exchange", "samr", t0, **args)
        reg = _obs_registry()
        reg.counter("samr.ghost_exchanges", level=level).inc()
        reg.counter("samr.ghost_bytes", level=level).inc(shipped)


def zero_gradient_bc(patch: Patch, arr: np.ndarray, axis: int, side: int) -> None:
    """Default physical fill: replicate the first interior cell outward."""
    g = patch.nghost
    if g == 0:
        return
    ax = axis + 1  # leading axis is the variable index
    if side == 0:
        edge = np.take(arr, [g], axis=ax)
        sl = [slice(None)] * arr.ndim
        sl[ax] = slice(0, g)
        arr[tuple(sl)] = edge
    else:
        edge = np.take(arr, [arr.shape[ax] - g - 1], axis=ax)
        sl = [slice(None)] * arr.ndim
        sl[ax] = slice(arr.shape[ax] - g, arr.shape[ax])
        arr[tuple(sl)] = edge


# --------------------------------------------------------------- coarse-fine
def _coarse_fine_fill(dobj: DataObject, level: int, comm=None) -> None:
    """Interpolate fine-patch ghost regions from the next coarser level."""
    hierarchy = dobj.hierarchy
    ratio = hierarchy.ratio
    lvl = hierarchy.level(level)
    coarse_lvl = hierarchy.level(level - 1)
    domain = hierarchy.domain_at(level)
    rank = 0 if comm is None else comm.rank
    nranks = 1 if comm is None else comm.size

    # Global schedule: (fine patch, fine ghost region, padded coarse region)
    tasks: list[tuple[Patch, Box, Box]] = []
    for fine in lvl.patches:
        halo = fine.ghost_box.intersection(domain)
        regions = subtract_all([halo], [p.box for p in lvl.patches])
        for region in regions:
            need = region.coarsen(ratio).grow(1)
            tasks.append((fine, region, need))

    # Payload routing: each coarse patch owner ships its overlap with every
    # "need" region to the fine patch owner.
    sends: list[list] = [[] for _ in range(nranks)]
    local: dict[tuple[int, int], list] = {}
    for t, (fine, region, need) in enumerate(tasks):
        for cp in coarse_lvl.patches:
            overlap = cp.box.intersection(need)
            if overlap.empty or cp.owner != rank:
                continue
            block = np.ascontiguousarray(
                dobj.array(cp)[(slice(None), *cp.slices_for(overlap))])
            if fine.owner == rank:
                local.setdefault((t, fine.id), []).append((overlap, block))
            else:
                sends[fine.owner].append((t, overlap.lo, overlap.hi, block))
    if comm is not None and comm.size > 1:
        incoming = comm.alltoall(sends)
        for batch in incoming:
            for t, lo, hi, block in batch:
                fine = tasks[t][0]
                local.setdefault((t, fine.id), []).append((Box(lo, hi), block))

    # Assemble each padded coarse buffer and interpolate into the ghost
    # region of the owned fine patch.
    for t, (fine, region, need) in enumerate(tasks):
        if fine.owner != rank:
            continue
        pieces = local.get((t, fine.id), [])
        buf = np.full((dobj.nvar, *need.shape), np.nan)
        for overlap, block in pieces:
            buf[(slice(None), *overlap.slices(origin=need.lo))] = block
        _fill_holes_nearest(buf)
        fine_block = prolong_bilinear(buf, ratio)
        # fine_block covers need-interior refined; select our region
        covered = Box(
            tuple((l + 1) * ratio for l in need.lo),
            tuple((h - 1 + 1) * ratio - 1 for h in need.hi),
        )
        sel = region.slices(origin=covered.lo)
        dobj.array(fine)[(slice(None), *fine.slices_for(region))] = \
            fine_block[(slice(None), *sel)]


def _fill_holes_nearest(buf: np.ndarray) -> None:
    """Replace NaNs by sweeping each axis forward/backward with the nearest
    valid value (handles pad cells beyond the coarse level or domain)."""
    if not np.isnan(buf).any():
        return
    for axis in range(1, buf.ndim):
        for idx in range(1, buf.shape[axis]):
            cur = np.take(buf, idx, axis=axis)
            prev = np.take(buf, idx - 1, axis=axis)
            mask = np.isnan(cur) & ~np.isnan(prev)
            if mask.any():
                sl = [slice(None)] * buf.ndim
                sl[axis] = idx
                view = buf[tuple(sl)]
                view[mask] = prev[mask]
        for idx in range(buf.shape[axis] - 2, -1, -1):
            cur = np.take(buf, idx, axis=axis)
            nxt = np.take(buf, idx + 1, axis=axis)
            mask = np.isnan(cur) & ~np.isnan(nxt)
            if mask.any():
                sl = [slice(None)] * buf.ndim
                sl[axis] = idx
                view = buf[tuple(sl)]
                view[mask] = nxt[mask]
    if np.isnan(buf).any():
        raise MeshError("coarse-fine assembly left unfilled cells")


# --------------------------------------------------------------- restriction
def restrict_level(dobj: DataObject, fine_level: int, comm=None) -> None:
    """Average fine interiors down onto the underlying coarse patches
    ("injection" step after advancing a fine level)."""
    hierarchy = dobj.hierarchy
    ratio = hierarchy.ratio
    lvl = hierarchy.level(fine_level)
    coarse_lvl = hierarchy.level(fine_level - 1)
    rank = 0 if comm is None else comm.rank
    nranks = 1 if comm is None else comm.size

    sends: list[list] = [[] for _ in range(nranks)]
    for fine in lvl.patches:
        if fine.owner != rank:
            continue
        fbox = fine.box
        cbox_full = fbox.coarsen(ratio)
        for cp in coarse_lvl.patches:
            cov = cp.box.intersection(cbox_full)
            if cov.empty:
                continue
            fcov = cov.refine(ratio).intersection(fbox)
            # only restrict complete coarse cells
            cov = _complete_coarse(fcov, ratio)
            if cov.empty:
                continue
            fcov = cov.refine(ratio)
            block = restrict_average(
                dobj.array(fine)[(slice(None), *fine.slices_for(fcov))], ratio)
            if cp.owner == rank:
                dobj.array(cp)[(slice(None), *cp.slices_for(cov))] = block
            else:
                sends[cp.owner].append((cp.id, cov.lo, cov.hi, block))
    if comm is not None and comm.size > 1:
        incoming = comm.alltoall(sends)
        for batch in incoming:
            for cid, lo, hi, block in batch:
                cp = coarse_lvl.patch_by_id(cid)
                cov = Box(lo, hi)
                dobj.array(cp)[(slice(None), *cp.slices_for(cov))] = block


def _complete_coarse(fine_box: Box, ratio: int) -> Box:
    """Largest coarse box whose full refinement fits inside ``fine_box``."""
    lo = tuple(-((-l) // ratio) for l in fine_box.lo)  # ceil division
    hi = tuple((h + 1) // ratio - 1 for h in fine_box.hi)
    return Box(lo, hi)
