"""Patches: boxes with identity, level membership and rank ownership.

A patch is the unit of computation ("the evaluation of the RHS ... one
patch at a time"), of boundary-condition application, and of domain
decomposition.  Patch *metadata* is replicated on all ranks; only the
owner holds data arrays (see :mod:`repro.samr.dataobject`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MeshError
from repro.samr.box import Box


@dataclass(frozen=True)
class Patch:
    """Immutable patch descriptor.

    Attributes
    ----------
    id:
        Globally unique (across levels and regrids) integer identity.
    box:
        Interior cell box in this level's index space.
    level:
        Level number (0 = coarsest).
    owner:
        Owning rank (0 in serial runs).
    nghost:
        Ghost-cell width on every face.
    parent:
        Id of a coarse patch containing this one's coarsened box, or -1.
    """

    id: int
    box: Box
    level: int
    owner: int = 0
    nghost: int = 2
    parent: int = -1

    def __post_init__(self) -> None:
        if self.box.empty:
            raise MeshError(f"patch {self.id}: empty box {self.box}")
        if self.nghost < 0:
            raise MeshError(f"patch {self.id}: negative ghost width")

    # -- geometry ------------------------------------------------------------
    @property
    def ghost_box(self) -> Box:
        """Interior box padded by the ghost width."""
        return self.box.grow(self.nghost)

    @property
    def array_shape(self) -> tuple[int, ...]:
        """Shape of a single-variable data array including ghosts."""
        return self.ghost_box.shape

    def interior_slices(self) -> tuple[slice, ...]:
        """Slices selecting the interior inside a ghosted array."""
        return self.box.slices(origin=self.ghost_box.lo)

    def slices_for(self, region: Box) -> tuple[slice, ...]:
        """Slices addressing ``region`` (level index space) inside this
        patch's ghosted array.  ``region`` must fit in the ghost box."""
        if not self.ghost_box.contains_box(region):
            raise MeshError(
                f"region {region} outside patch {self.id} ghost box "
                f"{self.ghost_box}")
        return region.slices(origin=self.ghost_box.lo)

    def __repr__(self) -> str:
        return (f"Patch(id={self.id}, L{self.level}, {self.box}, "
                f"owner={self.owner})")
