"""Berger-Rigoutsos point clustering.

Flagged cells are "collated into rectangles" (paper §3).  This is the
classic signature-based algorithm: take the bounding box of the flags; if
it is efficient enough and small enough, accept it; otherwise split at a
hole or at the strongest inflection of the signature and recurse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.samr.box import Box


def cluster_flags(
    flags: np.ndarray,
    origin: tuple[int, ...] = None,
    min_efficiency: float = 0.7,
    max_size: int = 64,
    min_size: int = 4,
) -> list[Box]:
    """Cover the True cells of ``flags`` with boxes.

    Parameters
    ----------
    flags:
        Boolean array; index ``(0, ..., 0)`` corresponds to cell ``origin``.
    origin:
        Index-space coordinate of the array's first cell (default zeros).
    min_efficiency:
        Accept a box once ``flagged / box.size >= min_efficiency``.
    max_size:
        Maximum box edge length (keeps patches distributable).
    min_size:
        Do not split boxes below this edge length.

    Returns a list of disjoint boxes jointly covering every flagged cell.
    """
    if flags.dtype != bool:
        flags = flags.astype(bool)
    if not (0.0 < min_efficiency <= 1.0):
        raise MeshError(f"min_efficiency must be in (0, 1], got {min_efficiency}")
    if min_size < 1 or max_size < min_size:
        raise MeshError(f"bad size limits ({min_size}, {max_size})")
    origin = origin or (0,) * flags.ndim
    if not flags.any():
        return []
    boxes: list[Box] = []
    _cluster(flags, origin, min_efficiency, max_size, min_size, boxes)
    return boxes


def _bounding(flags: np.ndarray) -> tuple[tuple[int, ...], tuple[int, ...]]:
    lo, hi = [], []
    for axis in range(flags.ndim):
        other = tuple(a for a in range(flags.ndim) if a != axis)
        sig = flags.any(axis=other)
        nz = np.nonzero(sig)[0]
        lo.append(int(nz[0]))
        hi.append(int(nz[-1]))
    return tuple(lo), tuple(hi)


def _cluster(flags, origin, min_eff, max_size, min_size, out: list[Box]) -> None:
    if not flags.any():
        return
    lo, hi = _bounding(flags)
    sub = flags[tuple(slice(l, h + 1) for l, h in zip(lo, hi))]
    box = Box(
        tuple(o + l for o, l in zip(origin, lo)),
        tuple(o + h for o, h in zip(origin, hi)),
    )
    efficiency = sub.sum() / box.size
    small = all(n <= max_size for n in box.shape)
    if (efficiency >= min_eff and small) or all(
            n <= min_size for n in box.shape):
        out.append(box)
        return
    axis, cut = _choose_cut(sub, min_size, max_size)
    if axis is None:
        out.append(box)
        return
    sub_origin = tuple(o + l for o, l in zip(origin, lo))
    left_idx = tuple(
        slice(0, cut) if a == axis else slice(None) for a in range(sub.ndim))
    right_idx = tuple(
        slice(cut, None) if a == axis else slice(None) for a in range(sub.ndim))
    right_origin = tuple(
        so + cut if a == axis else so for a, so in enumerate(sub_origin))
    _cluster(sub[left_idx], sub_origin, min_eff, max_size, min_size, out)
    _cluster(sub[right_idx], right_origin, min_eff, max_size, min_size, out)


def _choose_cut(sub: np.ndarray, min_size: int, max_size: int):
    """Pick (axis, local cut index) — hole first, then Laplacian inflection,
    then midpoint of the longest splittable axis."""
    ndim = sub.ndim
    signatures = []
    for axis in range(ndim):
        other = tuple(a for a in range(ndim) if a != axis)
        signatures.append(sub.sum(axis=other))

    # 1. holes (zero signature) away from the edges
    best_hole = None  # (distance from center is tie-break: prefer central)
    for axis in range(ndim):
        sig = signatures[axis]
        n = len(sig)
        if n < 2 * min_size:
            continue
        zeros = [i for i in range(min_size, n - min_size + 1) if sig[i] == 0]
        for z in zeros:
            d = abs(z - n / 2)
            if best_hole is None or d < best_hole[0]:
                best_hole = (d, axis, z)
    if best_hole is not None:
        return best_hole[1], best_hole[2]

    # 2. strongest sign change of the signature Laplacian
    best_infl = None  # (-magnitude, distance, axis, cut)
    for axis in range(ndim):
        sig = signatures[axis].astype(np.int64)
        n = len(sig)
        if n < 2 * min_size + 2:
            continue
        lap = sig[2:] - 2 * sig[1:-1] + sig[:-2]  # index i -> cell i+1
        for i in range(len(lap) - 1):
            cut = i + 2  # split between cells i+1 and i+2
            if not (min_size <= cut <= n - min_size):
                continue
            if lap[i] * lap[i + 1] < 0:
                mag = abs(int(lap[i]) - int(lap[i + 1]))
                d = abs(cut - n / 2)
                cand = (-mag, d, axis, cut)
                if best_infl is None or cand < best_infl:
                    best_infl = cand
    if best_infl is not None:
        return best_infl[2], best_infl[3]

    # 3. bisect the longest splittable axis
    order = sorted(range(ndim), key=lambda a: -sub.shape[a])
    for axis in order:
        n = sub.shape[axis]
        if n >= 2 * min_size:
            return axis, n // 2
    return None, None
