"""Temporal interpolation operators.

The Interpolation subsystem "implement[s] various spatial and temporal
interpolation operators" (paper §4, subsystem 6).  The spatial operators
live in :mod:`repro.samr.prolong`/:mod:`repro.samr.restrict`; these are
the temporal ones, needed when a subcycling integrator fills fine-level
ghosts from coarse data at intermediate times.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError


def time_interpolate(t: float, t_old: float, data_old: np.ndarray,
                     t_new: float, data_new: np.ndarray) -> np.ndarray:
    """Linear interpolation between two time levels of the same region.

    ``t`` must lie in ``[t_old, t_new]`` (a small tolerance is allowed for
    round-off at the ends).
    """
    if t_new <= t_old:
        raise MeshError(f"need t_new > t_old, got [{t_old}, {t_new}]")
    span = t_new - t_old
    theta = (t - t_old) / span
    if not -1e-10 <= theta <= 1.0 + 1e-10:
        raise MeshError(
            f"t={t} outside interpolation window [{t_old}, {t_new}]")
    theta = min(max(theta, 0.0), 1.0)
    if data_old.shape != data_new.shape:
        raise MeshError(
            f"shape mismatch {data_old.shape} vs {data_new.shape}")
    return (1.0 - theta) * data_old + theta * data_new


class TimeInterpolant:
    """Holds two time levels of a field and interpolates between them.

    The subcycling pattern: the coarse level stores its state at ``t_n``
    and ``t_n + dt_coarse``; each fine substep asks for the coarse data at
    its own intermediate time.
    """

    def __init__(self, t_old: float, data_old: np.ndarray,
                 t_new: float, data_new: np.ndarray) -> None:
        if t_new <= t_old:
            raise MeshError("need t_new > t_old")
        self.t_old = float(t_old)
        self.t_new = float(t_new)
        self.data_old = np.array(data_old, copy=True)
        self.data_new = np.array(data_new, copy=True)

    def at(self, t: float) -> np.ndarray:
        return time_interpolate(t, self.t_old, self.data_old,
                                self.t_new, self.data_new)

    def advance(self, t_next: float, data_next: np.ndarray) -> None:
        """Slide the window: the newest level becomes the oldest."""
        if t_next <= self.t_new:
            raise MeshError("window must advance forward in time")
        self.t_old, self.data_old = self.t_new, self.data_new
        self.t_new = float(t_next)
        self.data_new = np.array(data_next, copy=True)
