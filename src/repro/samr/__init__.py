"""Structured adaptive mesh refinement substrate (the GrACE analog).

The paper wraps the GrACE library into ``GrACEComponent`` to provide its
**Mesh** and **Data Object** subsystems.  This package is a from-scratch
implementation of that substrate:

* :mod:`repro.samr.box` / :mod:`repro.samr.boxlist` — integer index-space
  rectangles and set algebra over them.
* :mod:`repro.samr.patch`, :mod:`repro.samr.level`,
  :mod:`repro.samr.hierarchy` — the Berger-Collela patch hierarchy with
  geometry, parent/child relations and rank ownership.
* :mod:`repro.samr.dataobject` — collections of per-patch arrays ("1 array
  per patch; typically a number of related variables are stored together").
* :mod:`repro.samr.flagging` + :mod:`repro.samr.clustering` — gradient
  error estimation and Berger-Rigoutsos point clustering.
* :mod:`repro.samr.prolong` / :mod:`repro.samr.restrict` — inter-level
  transfer operators.
* :mod:`repro.samr.ghost` — intra-level and coarse-fine ghost-cell
  exchange (local copies or SCMD message passing).
* :mod:`repro.samr.loadbalance` — domain decomposition / load balancing.
* :mod:`repro.samr.regrid` — the prolongation/regeneration cycle described
  in the paper's §3.

Metadata (boxes, owners) is replicated across ranks; bulk data lives only
on the owning rank — the same split GrACE uses.
"""

from repro.samr.box import Box
from repro.samr.boxlist import coalesce, intersect_all, subtract
from repro.samr.patch import Patch
from repro.samr.level import Level
from repro.samr.hierarchy import Hierarchy
from repro.samr.dataobject import DataObject
from repro.samr.flagging import flag_gradient, buffer_flags
from repro.samr.clustering import cluster_flags
from repro.samr.prolong import prolong_constant, prolong_bilinear
from repro.samr.restrict import restrict_average
from repro.samr.ghost import exchange_ghosts
from repro.samr.loadbalance import balance_greedy, balance_sfc
from repro.samr.regrid import regrid
from repro.samr.time_interp import TimeInterpolant, time_interpolate
from repro.samr.checkpoint import load_checkpoint, save_checkpoint

__all__ = [
    "TimeInterpolant",
    "time_interpolate",
    "load_checkpoint",
    "save_checkpoint",
    "Box",
    "coalesce",
    "intersect_all",
    "subtract",
    "Patch",
    "Level",
    "Hierarchy",
    "DataObject",
    "flag_gradient",
    "buffer_flags",
    "cluster_flags",
    "prolong_constant",
    "prolong_bilinear",
    "restrict_average",
    "exchange_ghosts",
    "balance_greedy",
    "balance_sfc",
    "regrid",
]
