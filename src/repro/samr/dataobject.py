"""Data Objects: collections of per-patch field arrays.

"It maintains the collection of arrays which contain data declared on
patches, 1 array per patch.  Typically a number of related variables are
stored together in a Data Object."  (paper §4, subsystem 2)

An array has shape ``(nvar, *ghosted_patch_shape)``; only the owner rank
of a patch allocates storage for it.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import MeshError
from repro.mpi import sanitizer as _tsan
from repro.samr.hierarchy import Hierarchy
from repro.samr.patch import Patch

#: Pluggable patch-array allocator: ``(shape, fill, dtype) -> ndarray``.
#: ``np.full`` by default; the ``mp`` execution backend installs
#: :func:`repro.exec.shm.shm_allocator` in its workers so patch storage
#: lives in shared-memory segments.
_array_allocator: Callable = None  # type: ignore[assignment]


def set_array_allocator(allocator: Callable | None) -> None:
    """Install a patch-array allocator (``None`` restores ``np.full``).

    Affects arrays allocated from here on; existing DataObjects keep
    their storage.
    """
    global _array_allocator
    _array_allocator = allocator


def _allocate(shape: tuple, fill: float, dtype) -> np.ndarray:
    if _array_allocator is not None:
        return _array_allocator(shape, fill, dtype)
    return np.full(shape, fill, dtype=dtype)


class DataObject:
    """Named multi-variable field over a hierarchy's patches.

    Parameters
    ----------
    name:
        Identifier (e.g. ``"flow"`` holding T and the mass fractions).
    hierarchy:
        The mesh the field lives on.
    nvar:
        Number of variables stored together.
    rank:
        SCMD rank of the caller — storage is allocated only for owned
        patches.
    var_names:
        Optional variable labels, e.g. ``["T", "Y_H2", ...]``.
    """

    def __init__(self, name: str, hierarchy: Hierarchy, nvar: int,
                 rank: int = 0, var_names: list[str] | None = None,
                 dtype=np.float64) -> None:
        if nvar < 1:
            raise MeshError(f"nvar must be >= 1, got {nvar}")
        if var_names is not None and len(var_names) != nvar:
            raise MeshError("var_names length != nvar")
        self.name = name
        self.hierarchy = hierarchy
        self.nvar = nvar
        self.rank = rank
        self.var_names = list(var_names) if var_names else [
            f"v{k}" for k in range(nvar)]
        self.dtype = dtype
        self._data: dict[int, np.ndarray] = {}
        self.sync_allocation()

    # -- storage management ------------------------------------------------
    def sync_allocation(self, fill: float = 0.0) -> None:
        """(Re)allocate storage for currently-owned patches; keep existing
        arrays; free arrays of patches that no longer exist."""
        live = {p.id: p for p in self.hierarchy.all_patches()
                if p.owner == self.rank}
        for pid in list(self._data):
            if pid not in live:
                del self._data[pid]
        for pid, patch in live.items():
            if pid not in self._data:
                self._data[pid] = _allocate(
                    (self.nvar, *patch.array_shape), fill, self.dtype)

    def owned_patches(self, level: int | None = None) -> Iterator[Patch]:
        """Owned patches, optionally restricted to one level."""
        levels = (self.hierarchy.levels if level is None
                  else [self.hierarchy.level(level)])
        for lvl in levels:
            for p in lvl.patches:
                if p.owner == self.rank:
                    yield p

    def has(self, patch: Patch | int) -> bool:
        pid = patch if isinstance(patch, int) else patch.id
        return pid in self._data

    # -- array access ---------------------------------------------------------
    def array(self, patch: Patch | int) -> np.ndarray:
        """Full ghosted array, shape ``(nvar, *ghost_shape)``."""
        pid = patch if isinstance(patch, int) else patch.id
        try:
            arr = self._data[pid]
            # While the race sanitizer is armed, record the access keyed
            # by the backing buffer: per-rank DataObjects never collide,
            # one leaked across rank-threads does.  Disabled cost: this
            # flag check.
            if _tsan.on:
                _tsan.record_write(
                    f"patch array {self.name}[{pid}] "
                    f"buffer 0x{id(arr):x}")
            return arr
        except KeyError:
            raise MeshError(
                f"rank {self.rank} holds no data for patch {pid} "
                f"in DataObject {self.name!r}") from None

    def interior(self, patch: Patch) -> np.ndarray:
        """View of the interior (no ghosts), shape ``(nvar, *box_shape)``."""
        return self.array(patch)[(slice(None), *patch.interior_slices())]

    def var(self, patch: Patch, k: int, ghost: bool = True) -> np.ndarray:
        """Single variable ``k`` on ``patch`` (ghosted by default)."""
        if not 0 <= k < self.nvar:
            raise MeshError(f"variable index {k} out of range")
        arr = self.array(patch)[k]
        if ghost:
            return arr
        return arr[patch.interior_slices()]

    def var_index(self, name: str) -> int:
        try:
            return self.var_names.index(name)
        except ValueError:
            raise MeshError(
                f"no variable {name!r} in {self.var_names}") from None

    # -- whole-object operations -------------------------------------------
    def fill(self, value: float) -> None:
        for arr in self._data.values():
            arr.fill(value)

    def copy_from(self, other: "DataObject") -> None:
        """Copy values patch-wise from a compatible DataObject."""
        if other.nvar != self.nvar:
            raise MeshError("nvar mismatch in copy_from")
        for pid, arr in self._data.items():
            src = other._data.get(pid)
            if src is None or src.shape != arr.shape:
                raise MeshError(f"patch {pid} missing/incompatible in source")
            arr[...] = src

    def clone(self, name: str | None = None) -> "DataObject":
        out = DataObject(name or f"{self.name}~", self.hierarchy, self.nvar,
                         self.rank, self.var_names, self.dtype)
        out.copy_from(self)
        return out

    def axpy(self, alpha: float, other: "DataObject") -> None:
        """self += alpha * other (patch-wise, ghosts included)."""
        for pid, arr in self._data.items():
            arr += alpha * other._data[pid]

    def scale(self, alpha: float) -> None:
        for arr in self._data.values():
            arr *= alpha

    def apply(self, fn: Callable[[Patch, np.ndarray], None],
              level: int | None = None) -> None:
        """Run ``fn(patch, ghosted_array)`` over owned patches."""
        for patch in self.owned_patches(level):
            fn(patch, self.array(patch))

    # -- reductions --------------------------------------------------------
    def max_norm(self, comm=None, k: int | None = None) -> float:
        """Max |value| over interiors; global when ``comm`` is given."""
        local = 0.0
        for patch in self.owned_patches():
            view = self.interior(patch)
            if k is not None:
                view = view[k]
            if view.size:
                local = max(local, float(np.abs(view).max()))
        if comm is not None:
            from repro.mpi.comm import Op

            return float(comm.allreduce(local, op=Op.MAX))
        return local

    def sum(self, comm=None, k: int | None = None) -> float:
        """Sum over interiors (double counting impossible: interiors are
        disjoint); global when ``comm`` is given."""
        local = 0.0
        for patch in self.owned_patches():
            view = self.interior(patch)
            if k is not None:
                view = view[k]
            local += float(view.sum())
        if comm is not None:
            from repro.mpi.comm import Op

            return float(comm.allreduce(local, op=Op.SUM))
        return local

    def __repr__(self) -> str:
        return (f"DataObject({self.name!r}, nvar={self.nvar}, "
                f"{len(self._data)} local patches)")
