"""A refinement level: the set of same-resolution patches.

Levels know their grid spacing, the domain box in their own index space,
and which cells are covered by patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeshError
from repro.samr.box import Box
from repro.samr.patch import Patch


@dataclass
class Level:
    """One level of the patch hierarchy."""

    number: int
    domain: Box            # full domain in this level's index space
    dx: tuple[float, ...]  # cell size per dimension
    patches: list[Patch] = field(default_factory=list)

    def add(self, patch: Patch) -> None:
        if patch.level != self.number:
            raise MeshError(
                f"patch level {patch.level} != level number {self.number}")
        if not self.domain.contains_box(patch.box):
            raise MeshError(
                f"patch {patch.box} escapes level domain {self.domain}")
        for other in self.patches:
            if other.box.intersects(patch.box):
                raise MeshError(
                    f"patch {patch.box} overlaps existing {other.box}")
        self.patches.append(patch)

    # -- queries ---------------------------------------------------------
    @property
    def boxes(self) -> list[Box]:
        return [p.box for p in self.patches]

    @property
    def ncells(self) -> int:
        return sum(p.box.size for p in self.patches)

    def patch_by_id(self, pid: int) -> Patch:
        for p in self.patches:
            if p.id == pid:
                return p
        raise MeshError(f"no patch {pid} on level {self.number}")

    def owned(self, rank: int) -> list[Patch]:
        """Patches assigned to ``rank``."""
        return [p for p in self.patches if p.owner == rank]

    def covers(self, box: Box) -> bool:
        """True when ``box`` is entirely under this level's patches."""
        from repro.samr.boxlist import subtract_all

        return not subtract_all([box], self.boxes)

    def covered_fraction(self, box: Box) -> float:
        """Fraction of ``box`` cells under this level's patches."""
        if box.size == 0:
            return 1.0
        from repro.samr.boxlist import subtract_all

        uncovered = sum(b.size for b in subtract_all([box], self.boxes))
        return 1.0 - uncovered / box.size

    # -- geometry ---------------------------------------------------------
    def cell_centers(self, patch: Patch, origin: tuple[float, ...],
                     ghost: bool = False) -> tuple[np.ndarray, ...]:
        """Physical coordinates of cell centers, one 1-D array per axis.

        ``origin`` is the physical coordinate of the low corner of cell
        (0, 0, ...) of this level.
        """
        box = patch.ghost_box if ghost else patch.box
        return tuple(
            origin[d] + (np.arange(box.lo[d], box.hi[d] + 1) + 0.5) * self.dx[d]
            for d in range(box.ndim)
        )

    def __repr__(self) -> str:
        return (f"Level({self.number}, {len(self.patches)} patches, "
                f"{self.ncells} cells)")
