"""Restriction: fine-to-coarse averaging (cell-centered, conservative)."""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError


def restrict_average(fine: np.ndarray, ratio: int) -> np.ndarray:
    """Average ``ratio x ratio`` fine-cell blocks onto coarse cells.

    Acts on the last two axes; their lengths must be multiples of
    ``ratio``.  Exactly conserves the integral of the field.
    """
    if ratio < 1:
        raise MeshError(f"ratio must be >= 1, got {ratio}")
    if ratio == 1:
        return fine.copy()
    nx, ny = fine.shape[-2], fine.shape[-1]
    if nx % ratio or ny % ratio:
        raise MeshError(
            f"fine shape {(nx, ny)} not divisible by ratio {ratio}")
    lead = fine.shape[:-2]
    blocked = fine.reshape(*lead, nx // ratio, ratio, ny // ratio, ratio)
    return blocked.mean(axis=(-3, -1))
