"""Regridding: periodic recreation of the patch hierarchy.

"The patch hierarchy is periodically recreated.  The solution is passed
through a filter to determine regions needing finer meshes, whereby new
patches are created and initialized with data from the coarse meshes
(provided there does not exist a patch of the same resolution over that
subdomain, wholly or partly).  ...  Upon patch recreation the domain
decomposition on multiple processors is re-defined."  (paper §3)

All levels advance with a common time step in this toolkit (no Berger-
Collela subcycling); see DESIGN.md.  Regridding therefore happens at a
synchronization point, which keeps the data-transfer logic purely spatial.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.errors import MeshError
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.samr.box import Box
from repro.samr.clustering import cluster_flags
from repro.samr.dataobject import DataObject
from repro.samr.flagging import assemble_level_flags, buffer_flags
from repro.samr.hierarchy import Hierarchy
from repro.samr.prolong import prolong_bilinear

#: ``flag_fn(level) -> {patch_id: bool interior array}`` for owned patches.
FlagFn = Callable[[int], dict[int, np.ndarray]]


def regrid(
    hierarchy: Hierarchy,
    dataobjs: Sequence[DataObject],
    flag_fn: FlagFn,
    comm=None,
    buffer: int = 2,
    min_efficiency: float = 0.7,
    max_size: int = 32,
    min_size: int = 4,
) -> None:
    """Recreate every refinement level from fresh error flags.

    1. Flag cells on each existing level (finest candidates first) and
       cluster them into new box sets, enforcing proper nesting by adding
       the coarsened image of level ``l+2``'s new boxes to level ``l+1``'s
       flags.
    2. Rebuild levels coarsest-first: new patches are seeded by monotone
       bilinear prolongation from the (already rebuilt) coarser level, then
       overwritten with any old same-level data that overlaps.
    3. DataObjects are reallocated; ghost cells are left to the caller.
    """
    t0 = time.perf_counter() if _obs.on else 0.0
    max_new = hierarchy.max_levels - 1
    n_flag_levels = min(hierarchy.nlevels, max_new)
    if n_flag_levels == 0:
        return

    # -- step 1: dense flags per level, then boxes finest-first -------------
    dense: list[np.ndarray] = []
    origins: list[tuple[int, ...]] = []
    for lev in range(n_flag_levels):
        patch_flags = flag_fn(lev)
        d, origin = assemble_level_flags(hierarchy, lev, patch_flags, comm)
        if buffer > 0:
            d = buffer_flags(d, buffer)
        dense.append(d)
        origins.append(origin)

    new_boxes: dict[int, list[Box]] = {}
    for lev in range(n_flag_levels - 1, -1, -1):
        flags = dense[lev]
        # nesting: flag the footprint of the (finer) level we just designed
        finer = new_boxes.get(lev + 2, [])
        for fb in finer:
            cb = fb.coarsen(hierarchy.ratio ** 2).grow(1)
            cb = cb.intersection(hierarchy.domain_at(lev))
            if not cb.empty:
                flags[cb.slices(origin=origins[lev])] = True
        boxes = cluster_flags(flags, origins[lev],
                              min_efficiency=min_efficiency,
                              max_size=max_size, min_size=min_size)
        new_boxes[lev + 1] = [b.refine(hierarchy.ratio) for b in boxes]

    # -- step 2: rebuild levels coarsest-first ------------------------------
    rank = 0 if comm is None else comm.rank
    top = 0
    for lev in range(1, max_new + 1):
        boxes = new_boxes.get(lev, [])
        if not boxes:
            break
        old_data = _snapshot_level(hierarchy, dataobjs, lev)
        hierarchy.set_level_boxes(lev, boxes)
        for dobj in dataobjs:
            dobj.sync_allocation()
        for d, dobj in enumerate(dataobjs):
            _seed_from_coarse(dobj, lev, comm)
            _copy_old_overlaps(dobj, lev, old_data[d], comm)
        if hierarchy.level(lev).patches:
            top = lev
    hierarchy.drop_levels_above(top)
    for dobj in dataobjs:
        dobj.sync_allocation()
    if _obs.on:
        args = {"nlevels": hierarchy.nlevels,
                "total_cells": hierarchy.total_cells()}
        if comm is not None:
            args["vt"] = comm.clock
        _obs.complete("samr.regrid", "samr", t0, **args)
        reg = _obs_registry()
        reg.counter("samr.regrids").inc()
        reg.gauge("samr.levels").set(hierarchy.nlevels)
        for lev in range(hierarchy.nlevels):
            reg.gauge("samr.patches", level=lev).set(
                len(hierarchy.level(lev).patches))


# ---------------------------------------------------------------- helpers
def _snapshot_level(hierarchy: Hierarchy, dataobjs: Sequence[DataObject],
                    lev: int) -> list[list[tuple[Box, np.ndarray]]]:
    """Keep (box, interior copy) of owned patches of ``lev`` per DataObject
    before the level is destroyed."""
    out: list[list[tuple[Box, np.ndarray]]] = [[] for _ in dataobjs]
    if lev >= hierarchy.nlevels:
        return out
    for d, dobj in enumerate(dataobjs):
        for patch in list(dobj.owned_patches(lev)):
            out[d].append((patch.box, dobj.interior(patch).copy()))
    return out


def _seed_from_coarse(dobj: DataObject, lev: int, comm=None) -> None:
    """Fill new level ``lev`` interiors by prolongation from ``lev-1``."""
    hierarchy = dobj.hierarchy
    ratio = hierarchy.ratio
    coarse_lvl = hierarchy.level(lev - 1)
    rank = 0 if comm is None else comm.rank
    nranks = 1 if comm is None else comm.size

    tasks = []  # (fine patch, padded coarse need box)
    for fine in hierarchy.level(lev).patches:
        need = fine.box.coarsen(ratio).grow(1).intersection(
            hierarchy.domain_at(lev - 1).grow(1))
        tasks.append((fine, need))

    sends: list[list] = [[] for _ in range(nranks)]
    local: dict[int, list] = {}
    for t, (fine, need) in enumerate(tasks):
        for cp in coarse_lvl.patches:
            overlap = cp.box.intersection(need)
            if overlap.empty or cp.owner != rank:
                continue
            block = np.ascontiguousarray(
                dobj.array(cp)[(slice(None), *cp.slices_for(overlap))])
            if fine.owner == rank:
                local.setdefault(t, []).append((overlap, block))
            else:
                sends[fine.owner].append((t, overlap.lo, overlap.hi, block))
    if comm is not None and comm.size > 1:
        incoming = comm.alltoall(sends)
        for batch in incoming:
            for t, lo, hi, block in batch:
                local.setdefault(t, []).append((Box(lo, hi), block))

    from repro.samr.ghost import _fill_holes_nearest

    for t, (fine, need) in enumerate(tasks):
        if fine.owner != rank:
            continue
        buf = np.full((dobj.nvar, *need.shape), np.nan)
        for overlap, block in local.get(t, []):
            buf[(slice(None), *overlap.slices(origin=need.lo))] = block
        _fill_holes_nearest(buf)
        fine_block = prolong_bilinear(buf, ratio)
        covered = Box(
            tuple((l + 1) * ratio for l in need.lo),
            tuple(h * ratio - 1 for h in need.hi),
        )
        sel = fine.box.slices(origin=covered.lo)
        dobj.array(fine)[(slice(None), *fine.interior_slices())] = \
            fine_block[(slice(None), *sel)]


def _copy_old_overlaps(dobj: DataObject, lev: int,
                       old: list[tuple[Box, np.ndarray]], comm=None) -> None:
    """Overwrite prolonged data with surviving same-resolution data.

    ``old`` holds this rank's pre-regrid patches; overlaps with new patches
    owned elsewhere are shipped point-to-point via one alltoall.
    """
    hierarchy = dobj.hierarchy
    lvl = hierarchy.level(lev)
    rank = 0 if comm is None else comm.rank
    nranks = 1 if comm is None else comm.size

    sends: list[list] = [[] for _ in range(nranks)]
    for old_box, data in old:
        for new_patch in lvl.patches:
            overlap = old_box.intersection(new_patch.box)
            if overlap.empty:
                continue
            block = data[(slice(None), *overlap.slices(origin=old_box.lo))]
            if new_patch.owner == rank:
                dobj.array(new_patch)[
                    (slice(None), *new_patch.slices_for(overlap))] = block
            else:
                sends[new_patch.owner].append(
                    (new_patch.id, overlap.lo, overlap.hi,
                     np.ascontiguousarray(block)))
    if comm is not None and comm.size > 1:
        incoming = comm.alltoall(sends)
        for batch in incoming:
            for pid, lo, hi, block in batch:
                new_patch = lvl.patch_by_id(pid)
                overlap = Box(lo, hi)
                dobj.array(new_patch)[
                    (slice(None), *new_patch.slices_for(overlap))] = block
