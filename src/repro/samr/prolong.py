"""Prolongation: coarse-to-fine interpolation (cell-centered).

"New patches are created and initialized with data from the coarse meshes
... This process is called prolongation."  (paper §3)

Both operators act on the *last two* axes so they apply directly to
``(nvar, nx, ny)`` blocks.  ``prolong_constant`` is the conservative
injection used to seed brand-new patches when smoothness is uncertain;
``prolong_bilinear`` is the second-order limited-slope operator used for
coarse-fine ghost filling (``ProlongRestrict`` component).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError


def prolong_constant(coarse: np.ndarray, ratio: int) -> np.ndarray:
    """Piecewise-constant injection: each coarse cell fills an
    ``ratio x ratio`` block of fine cells.  Conservative by construction."""
    if ratio < 1:
        raise MeshError(f"ratio must be >= 1, got {ratio}")
    out = np.repeat(coarse, ratio, axis=-2)
    return np.repeat(out, ratio, axis=-1)


def prolong_bilinear(coarse: np.ndarray, ratio: int,
                     limited: bool = True) -> np.ndarray:
    """Slope-reconstruction prolongation.

    ``coarse`` must include exactly **one ghost ring** on each of the last
    two axes; the result covers the fine image of the coarse *interior*:
    output shape ``(..., (nx-2)*ratio, (ny-2)*ratio)``.

    Per coarse cell, a linear profile ``c + sx*ξ + sy*η`` is sampled at the
    fine-cell centers (ξ, η ∈ (-1/2, 1/2) in coarse-cell units).  With
    ``limited=True`` slopes use minmod, keeping the operator monotone (no
    new extrema — essential next to shocks and flame fronts).  The fine
    average over each coarse cell equals the coarse value, so the operator
    is conservative.
    """
    if ratio < 1:
        raise MeshError(f"ratio must be >= 1, got {ratio}")
    nx, ny = coarse.shape[-2], coarse.shape[-1]
    if nx < 3 or ny < 3:
        raise MeshError(
            f"prolong_bilinear needs a ghost ring: shape {(nx, ny)}")
    c = coarse[..., 1:-1, 1:-1]
    if ratio == 1:
        return c.copy()
    sx = _slope(coarse[..., 2:, 1:-1], c, coarse[..., :-2, 1:-1], limited)
    sy = _slope(coarse[..., 1:-1, 2:], c, coarse[..., 1:-1, :-2], limited)
    # offsets of fine-cell centers inside a coarse cell, in coarse units
    off = (np.arange(ratio) + 0.5) / ratio - 0.5
    fine = (
        np.repeat(np.repeat(c, ratio, axis=-2), ratio, axis=-1)
        + np.kron(sx, off[:, None] * np.ones((1, ratio)))
        + np.kron(sy, np.ones((ratio, 1)) * off[None, :])
    )
    return fine


def _slope(up: np.ndarray, mid: np.ndarray, dn: np.ndarray,
           limited: bool) -> np.ndarray:
    fwd = up - mid
    bwd = mid - dn
    if not limited:
        return 0.5 * (fwd + bwd)
    # minmod
    same_sign = (fwd * bwd) > 0.0
    return np.where(same_sign, np.sign(fwd) * np.minimum(np.abs(fwd),
                                                         np.abs(bwd)), 0.0)
