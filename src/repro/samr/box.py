"""Integer index-space rectangles (cell-centered, inclusive bounds).

A :class:`Box` is the unit of geometry in the SAMR substrate: patches,
flagged-region clusters, ghost regions and transfer regions are all boxes.
Bounds are *inclusive* on both ends, matching the Berger-Collela
literature: ``Box((0, 0), (9, 9))`` covers a 10x10 block of cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MeshError


@dataclass(frozen=True, order=True)
class Box:
    """An axis-aligned rectangle of cells, ``lo`` and ``hi`` inclusive."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        lo = tuple(int(v) for v in self.lo)
        hi = tuple(int(v) for v in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise MeshError(f"dimension mismatch: lo={lo} hi={hi}")
        if not lo:
            raise MeshError("zero-dimensional box")

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_shape(shape: tuple[int, ...], origin: tuple[int, ...] | None = None) -> "Box":
        """Box covering ``shape`` cells starting at ``origin`` (default 0)."""
        origin = origin or (0,) * len(shape)
        if any(n <= 0 for n in shape):
            raise MeshError(f"non-positive shape {shape}")
        return Box(origin, tuple(o + n - 1 for o, n in zip(origin, shape)))

    # -- basic queries -----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of cells (0 if the box is empty)."""
        n = 1
        for l, h in zip(self.lo, self.hi):
            if h < l:
                return 0
            n *= h - l + 1
        return n

    @property
    def empty(self) -> bool:
        return any(h < l for l, h in zip(self.lo, self.hi))

    def contains_point(self, idx: tuple[int, ...]) -> bool:
        return all(l <= i <= h for i, l, h in zip(idx, self.lo, self.hi))

    def contains_box(self, other: "Box") -> bool:
        if other.empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersects(self, other: "Box") -> bool:
        return not self.intersection(other).empty

    # -- algebra -----------------------------------------------------------
    def intersection(self, other: "Box") -> "Box":
        """The overlap box (possibly empty)."""
        if self.ndim != other.ndim:
            raise MeshError("cannot intersect boxes of different dimension")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def bounding(self, other: "Box") -> "Box":
        """Smallest box containing both."""
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def grow(self, n: int | tuple[int, ...]) -> "Box":
        """Pad by ``n`` cells on every face (negative shrinks)."""
        pad = (n,) * self.ndim if isinstance(n, int) else tuple(n)
        return Box(
            tuple(l - p for l, p in zip(self.lo, pad)),
            tuple(h + p for h, p in zip(self.hi, pad)),
        )

    def shift(self, offset: tuple[int, ...]) -> "Box":
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def refine(self, ratio: int) -> "Box":
        """Index box of this region on a mesh ``ratio`` times finer."""
        if ratio < 1:
            raise MeshError(f"refine ratio must be >= 1, got {ratio}")
        return Box(
            tuple(l * ratio for l in self.lo),
            tuple((h + 1) * ratio - 1 for h in self.hi),
        )

    def coarsen(self, ratio: int) -> "Box":
        """Index box of this region on a mesh ``ratio`` times coarser
        (floor division; the coarse box *covers* the fine one)."""
        if ratio < 1:
            raise MeshError(f"coarsen ratio must be >= 1, got {ratio}")

        def fdiv(a: int) -> int:
            return a // ratio

        return Box(tuple(fdiv(l) for l in self.lo), tuple(fdiv(h) for h in self.hi))

    # -- slicing helpers -----------------------------------------------------
    def slices(self, origin: tuple[int, ...] | None = None) -> tuple[slice, ...]:
        """NumPy slices addressing this box inside an array whose element
        [0, 0, ...] sits at index ``origin`` (default: this box's own lo)."""
        origin = origin or self.lo
        return tuple(
            slice(l - o, h - o + 1)
            for l, h, o in zip(self.lo, self.hi, origin)
        )

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate all cell indices (row-major). Intended for tests only."""
        if self.empty:
            return
        if self.ndim == 1:
            for i in range(self.lo[0], self.hi[0] + 1):
                yield (i,)
        elif self.ndim == 2:
            for i in range(self.lo[0], self.hi[0] + 1):
                for j in range(self.lo[1], self.hi[1] + 1):
                    yield (i, j)
        else:
            inner = Box(self.lo[1:], self.hi[1:])
            for i in range(self.lo[0], self.hi[0] + 1):
                for rest in inner.points():
                    yield (i, *rest)

    def __repr__(self) -> str:
        return f"Box({self.lo}->{self.hi})"
