"""Domain decomposition / load balancing.

"Patches are collated and distributed among processors to maximize
load-balance while keeping parents and children on the same processors."
(paper §4.2)

Two strategies are provided:

* :func:`balance_greedy` — longest-processing-time-first bin packing on
  cell counts (optionally weighted); good balance, ignores locality.
* :func:`balance_sfc` — Morton space-filling-curve ordering chopped into
  near-equal contiguous chunks; keeps spatial neighbours (and therefore
  parents/children) on the same rank, the property the paper's flame run
  relies on.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MeshError
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.samr.box import Box


def _observe_balance(strategy: str, boxes: Sequence[Box],
                     owners: list[int], nranks: int,
                     weights: Sequence[float] | None) -> None:
    """Trace/metric one load-balance decision (tracing-enabled path only)."""
    imbalance = load_imbalance(boxes, owners, nranks, weights)
    _obs.instant("samr.load_balance", "samr", strategy=strategy,
                 nboxes=len(boxes), nranks=nranks, imbalance=imbalance)
    _obs_registry().gauge("samr.load_imbalance",
                          strategy=strategy).set(imbalance)


def balance_greedy(boxes: Sequence[Box], nranks: int,
                   weights: Sequence[float] | None = None) -> list[int]:
    """Assign each box a rank via LPT greedy bin packing.

    Returns the owner rank per box (same order as ``boxes``).
    """
    if nranks < 1:
        raise MeshError("need at least one rank")
    if weights is not None and len(weights) != len(boxes):
        raise MeshError("weights length mismatch")
    loads = [0.0] * nranks
    owners = [0] * len(boxes)
    order = sorted(
        range(len(boxes)),
        key=lambda i: (weights[i] if weights else boxes[i].size),
        reverse=True,
    )
    for i in order:
        w = float(weights[i]) if weights else float(boxes[i].size)
        rank = loads.index(min(loads))
        owners[i] = rank
        loads[rank] += w
    if _obs.on:
        _observe_balance("greedy", boxes, owners, nranks, weights)
    return owners


def balance_sfc(boxes: Sequence[Box], nranks: int,
                weights: Sequence[float] | None = None) -> list[int]:
    """Assign ranks by Morton order of box centroids, split into chunks of
    near-equal total weight."""
    if nranks < 1:
        raise MeshError("need at least one rank")
    if not boxes:
        return []
    if weights is not None and len(weights) != len(boxes):
        raise MeshError("weights length mismatch")
    w = [float(weights[i]) if weights else float(boxes[i].size)
         for i in range(len(boxes))]
    order = sorted(range(len(boxes)),
                   key=lambda i: _morton_key(_centroid(boxes[i])))
    total = sum(w)
    target = total / nranks
    owners = [0] * len(boxes)
    rank, acc = 0, 0.0
    for i in order:
        owners[i] = min(rank, nranks - 1)
        acc += w[i]
        # advance to the next rank once its fair share is consumed
        while rank < nranks - 1 and acc >= target * (rank + 1):
            rank += 1
    if _obs.on:
        _observe_balance("sfc", boxes, owners, nranks, weights)
    return owners


def load_imbalance(boxes: Sequence[Box], owners: Sequence[int],
                   nranks: int,
                   weights: Sequence[float] | None = None) -> float:
    """max-load / mean-load (1.0 = perfectly balanced)."""
    loads = [0.0] * nranks
    for i, box in enumerate(boxes):
        loads[owners[i]] += float(weights[i]) if weights else float(box.size)
    mean = sum(loads) / nranks
    if mean == 0.0:
        return 1.0
    return max(loads) / mean


def _centroid(box: Box) -> tuple[int, ...]:
    return tuple((l + h) // 2 for l, h in zip(box.lo, box.hi))


def _morton_key(idx: tuple[int, ...], bits: int = 16) -> int:
    """Interleave coordinate bits (Z-order). Negative coords are offset."""
    offset = 1 << (bits - 1)
    coords = [max(0, min((1 << bits) - 1, c + offset)) for c in idx]
    key = 0
    for bit in range(bits):
        for d, c in enumerate(coords):
            key |= ((c >> bit) & 1) << (bit * len(coords) + d)
    return key
