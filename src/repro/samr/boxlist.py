"""Set algebra over lists of boxes.

These operations back regridding (old-level / new-level overlap), ghost
region construction (patch halo minus sibling interiors) and clustering
post-processing.
"""

from __future__ import annotations

from repro.samr.box import Box


def subtract(box: Box, cut: Box) -> list[Box]:
    """``box`` minus ``cut`` as a disjoint list of boxes.

    Standard dimension-sweep decomposition: at most ``2*ndim`` pieces.
    """
    overlap = box.intersection(cut)
    if overlap.empty:
        return [box]
    if overlap == box:
        return []
    pieces: list[Box] = []
    lo = list(box.lo)
    hi = list(box.hi)
    for d in range(box.ndim):
        if lo[d] < overlap.lo[d]:
            piece_hi = hi.copy()
            piece_hi[d] = overlap.lo[d] - 1
            pieces.append(Box(tuple(lo), tuple(piece_hi)))
            lo[d] = overlap.lo[d]
        if overlap.hi[d] < hi[d]:
            piece_lo = lo.copy()
            piece_lo[d] = overlap.hi[d] + 1
            pieces.append(Box(tuple(piece_lo), tuple(hi)))
            hi[d] = overlap.hi[d]
    return pieces


def subtract_all(boxes: list[Box], cuts: list[Box]) -> list[Box]:
    """Remove every box in ``cuts`` from every box in ``boxes``."""
    remaining = list(boxes)
    for cut in cuts:
        next_remaining: list[Box] = []
        for b in remaining:
            next_remaining.extend(subtract(b, cut))
        remaining = next_remaining
    return [b for b in remaining if not b.empty]


def intersect_all(boxes: list[Box], region: Box) -> list[Box]:
    """Clip every box to ``region``, dropping empties."""
    out = []
    for b in boxes:
        clipped = b.intersection(region)
        if not clipped.empty:
            out.append(clipped)
    return out


def coalesce(boxes: list[Box]) -> list[Box]:
    """Merge axis-adjacent boxes of equal cross-section (greedy, repeated
    until fixed point).  Reduces patch counts after clustering."""
    merged = [b for b in boxes if not b.empty]
    changed = True
    while changed:
        changed = False
        out: list[Box] = []
        used = [False] * len(merged)
        for i, a in enumerate(merged):
            if used[i]:
                continue
            current = a
            for j in range(i + 1, len(merged)):
                if used[j]:
                    continue
                joined = _try_join(current, merged[j])
                if joined is not None:
                    current = joined
                    used[j] = True
                    changed = True
            used[i] = True
            out.append(current)
        merged = out
    return merged


def _try_join(a: Box, b: Box) -> Box | None:
    """Join a and b if they abut along exactly one axis with identical
    extents along every other axis."""
    for d in range(a.ndim):
        same_elsewhere = all(
            a.lo[k] == b.lo[k] and a.hi[k] == b.hi[k]
            for k in range(a.ndim)
            if k != d
        )
        if not same_elsewhere:
            continue
        if a.hi[d] + 1 == b.lo[d]:
            return Box(a.lo, tuple(
                b.hi[k] if k == d else a.hi[k] for k in range(a.ndim)))
        if b.hi[d] + 1 == a.lo[d]:
            return Box(tuple(
                b.lo[k] if k == d else a.lo[k] for k in range(a.ndim)), a.hi)
    return None


def total_cells(boxes: list[Box]) -> int:
    """Sum of cell counts (assumes a disjoint list)."""
    return sum(b.size for b in boxes)


def is_disjoint(boxes: list[Box]) -> bool:
    """True when no two boxes overlap."""
    for i, a in enumerate(boxes):
        for b in boxes[i + 1:]:
            if a.intersects(b):
                return False
    return True
