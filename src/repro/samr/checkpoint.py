"""Checkpoint / restart for SAMR state.

A practical facility any adopter of the toolkit needs (the paper's 58-hour
flame run would have been checkpointed): serializes the hierarchy
structure and every DataObject's patch arrays to one ``.npz`` file and
rebuilds them bit-exactly.

In SCMD runs each rank writes its own shard (``path.rank<k>.npz``); the
hierarchy metadata is replicated so any rank's shard carries it.

The helpers :func:`hierarchy_meta`, :func:`rebuild_hierarchy`,
:func:`pack_dataobjects` and :func:`unpack_dataobjects` are public so the
application-level checkpoint (:mod:`repro.resilience.checkpoint`) can
compose them with framework state instead of re-implementing the layout.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import CheckpointError
from repro.samr.box import Box
from repro.samr.dataobject import DataObject
from repro.samr.hierarchy import Hierarchy
from repro.samr.level import Level
from repro.samr.patch import Patch

_FORMAT_VERSION = 1


def hierarchy_meta(h: Hierarchy) -> dict:
    """JSON-serializable structural snapshot of a hierarchy."""
    return {
        "version": _FORMAT_VERSION,
        "base_shape": list(h.levels[0].domain.shape),
        "origin": list(h.origin),
        "extent": list(h.extent),
        "ratio": h.ratio,
        "max_levels": h.max_levels,
        "nghost": h.nghost,
        "nranks": h.nranks,
        "next_patch_id": h.next_patch_id,
        "levels": [
            {
                "number": lvl.number,
                "patches": [
                    {
                        "id": p.id,
                        "lo": list(p.box.lo),
                        "hi": list(p.box.hi),
                        "owner": p.owner,
                        "parent": p.parent,
                    }
                    for p in lvl.patches
                ],
            }
            for lvl in h.levels
        ],
    }


def rebuild_hierarchy(meta: dict) -> Hierarchy:
    """Reconstruct a hierarchy bit-exactly from :func:`hierarchy_meta`.

    Levels and patches are replayed verbatim (bypassing the balancers:
    owners are stored), and the patch-id allocator is re-seeded so ids
    minted after a restart match an uninterrupted run.
    """
    if meta["version"] != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {meta['version']} is not "
            f"supported by this build (expected {_FORMAT_VERSION}); "
            f"re-create the checkpoint or upgrade the toolkit")
    h = Hierarchy(
        base_shape=tuple(meta["base_shape"]),
        origin=tuple(meta["origin"]),
        extent=tuple(meta["extent"]),
        ratio=meta["ratio"],
        max_levels=meta["max_levels"],
        nghost=meta["nghost"],
        nranks=meta["nranks"],
    )
    for lev_meta in meta["levels"]:
        n = lev_meta["number"]
        if n >= len(h.levels):
            h.levels.append(Level(n, h.domain_at(n), h.dx(n)))
        level = h.levels[n]
        for p in lev_meta["patches"]:
            level.add(Patch(p["id"], Box(tuple(p["lo"]), tuple(p["hi"])),
                            n, p["owner"], meta["nghost"], p["parent"]))
    h.seed_patch_ids(meta["next_patch_id"])
    return h


def pack_dataobjects(dataobjs: list[DataObject]
                     ) -> tuple[dict[str, np.ndarray], list[dict]]:
    """Flatten DataObjects into npz-ready arrays plus manifest entries."""
    arrays: dict[str, np.ndarray] = {}
    entries: list[dict] = []
    for dobj in dataobjs:
        entry = {
            "name": dobj.name,
            "nvar": dobj.nvar,
            "var_names": dobj.var_names,
            "rank": dobj.rank,
            "patches": [],
        }
        for patch in dobj.owned_patches():
            arrays[f"{dobj.name}::{patch.id}"] = dobj.array(patch)
            entry["patches"].append(patch.id)
        entries.append(entry)
    return arrays, entries


def unpack_dataobjects(blob, entries: list[dict],
                       h: Hierarchy) -> dict[str, DataObject]:
    """Rebuild DataObjects from manifest entries + the open npz blob."""
    dataobjs: dict[str, DataObject] = {}
    for entry in entries:
        dobj = DataObject(entry["name"], h, entry["nvar"],
                          entry["rank"], entry["var_names"])
        for pid in entry["patches"]:
            dobj.array(pid)[...] = blob[f"{entry['name']}::{pid}"]
        dataobjs[entry["name"]] = dobj
    return dataobjs


def checkpoint_path(path: str, rank: int | None = None) -> str:
    """Canonical on-disk name: optional rank shard suffix + ``.npz``."""
    if rank is not None and f".rank{rank}" not in path:
        path = f"{path}.rank{rank}"
    if not path.endswith(".npz"):
        path = path + ".npz"
    return path


def write_npz_atomic(path: str, arrays: dict[str, np.ndarray]) -> str:
    """Write an npz atomically (temp file + rename) so a crash mid-write
    never leaves a half-valid checkpoint behind."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)
    return path


def save_checkpoint(path: str, hierarchy: Hierarchy,
                    dataobjs: list[DataObject], t: float = 0.0,
                    rank: int | None = None,
                    extra: dict | None = None) -> str:
    """Write hierarchy + owned patch data; returns the file written.

    ``extra`` is an optional JSON-serializable dict stored alongside the
    SAMR state — the application-level checkpoint rides in it.
    """
    path = checkpoint_path(path, rank)
    arrays, entries = pack_dataobjects(dataobjs)
    manifest = {
        "hierarchy": hierarchy_meta(hierarchy),
        "t": t,
        "dataobjects": entries,
    }
    if extra is not None:
        manifest["extra"] = extra
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    return write_npz_atomic(path, arrays)


def read_manifest(path: str, rank: int | None = None) -> dict:
    """Load only the JSON manifest of a checkpoint (cheap validity probe)."""
    path = checkpoint_path(path, rank)
    if not os.path.exists(path):
        raise CheckpointError(
            f"checkpoint shard {path!r} does not exist"
            + (f" (rank {rank}'s shard is missing)" if rank is not None
               else ""))
    try:
        with np.load(path) as blob:
            return json.loads(bytes(blob["__manifest__"]).decode("utf-8"))
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is unreadable or has no manifest: "
            f"{exc}") from exc


def load_checkpoint(path: str, rank: int | None = None,
                    return_extra: bool = False):
    """Rebuild ``(hierarchy, {name: DataObject}, t)`` from a checkpoint.

    With ``return_extra=True`` a fourth element is appended: the ``extra``
    dict stored by :func:`save_checkpoint` (``None`` when absent).
    Missing shards and format-version mismatches raise
    :class:`~repro.errors.CheckpointError` with an actionable message.
    """
    path = checkpoint_path(path, rank)
    if not os.path.exists(path):
        raise CheckpointError(
            f"checkpoint shard {path!r} does not exist"
            + (f" (rank {rank}'s shard is missing)" if rank is not None
               else ""))
    with np.load(path) as blob:
        manifest = json.loads(bytes(blob["__manifest__"]).decode("utf-8"))
        h = rebuild_hierarchy(manifest["hierarchy"])
        dataobjs = unpack_dataobjects(blob, manifest["dataobjects"], h)
        t = float(manifest["t"])
        if return_extra:
            return h, dataobjs, t, manifest.get("extra")
        return h, dataobjs, t
