"""Checkpoint / restart for SAMR state.

A practical facility any adopter of the toolkit needs (the paper's 58-hour
flame run would have been checkpointed): serializes the hierarchy
structure and every DataObject's patch arrays to one ``.npz`` file and
rebuilds them bit-exactly.

In SCMD runs each rank writes its own shard (``path.rank<k>.npz``); the
hierarchy metadata is replicated so any rank's shard carries it.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import MeshError
from repro.samr.box import Box
from repro.samr.dataobject import DataObject
from repro.samr.hierarchy import Hierarchy
from repro.samr.level import Level
from repro.samr.patch import Patch

_FORMAT_VERSION = 1


def _hierarchy_meta(h: Hierarchy) -> dict:
    return {
        "version": _FORMAT_VERSION,
        "base_shape": list(h.levels[0].domain.shape),
        "origin": list(h.origin),
        "extent": list(h.extent),
        "ratio": h.ratio,
        "max_levels": h.max_levels,
        "nghost": h.nghost,
        "nranks": h.nranks,
        "next_patch_id": h._next_patch_id,
        "levels": [
            {
                "number": lvl.number,
                "patches": [
                    {
                        "id": p.id,
                        "lo": list(p.box.lo),
                        "hi": list(p.box.hi),
                        "owner": p.owner,
                        "parent": p.parent,
                    }
                    for p in lvl.patches
                ],
            }
            for lvl in h.levels
        ],
    }


def save_checkpoint(path: str, hierarchy: Hierarchy,
                    dataobjs: list[DataObject], t: float = 0.0,
                    rank: int | None = None) -> str:
    """Write hierarchy + owned patch data; returns the file written."""
    if rank is not None:
        path = f"{path}.rank{rank}"
    if not path.endswith(".npz"):
        path = path + ".npz"
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "hierarchy": _hierarchy_meta(hierarchy),
        "t": t,
        "dataobjects": [],
    }
    for dobj in dataobjs:
        entry = {
            "name": dobj.name,
            "nvar": dobj.nvar,
            "var_names": dobj.var_names,
            "rank": dobj.rank,
            "patches": [],
        }
        for patch in dobj.owned_patches():
            key = f"{dobj.name}::{patch.id}"
            arrays[key] = dobj.array(patch)
            entry["patches"].append(patch.id)
        manifest["dataobjects"].append(entry)
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(path: str, rank: int | None = None
                    ) -> tuple[Hierarchy, dict[str, DataObject], float]:
    """Rebuild (hierarchy, {name: DataObject}, t) from a checkpoint."""
    if rank is not None and f".rank{rank}" not in path:
        path = f"{path}.rank{rank}"
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as blob:
        manifest = json.loads(bytes(blob["__manifest__"]).decode("utf-8"))
        if manifest["hierarchy"]["version"] != _FORMAT_VERSION:
            raise MeshError(
                f"checkpoint format {manifest['hierarchy']['version']} "
                f"not supported")
        meta = manifest["hierarchy"]
        h = Hierarchy(
            base_shape=tuple(meta["base_shape"]),
            origin=tuple(meta["origin"]),
            extent=tuple(meta["extent"]),
            ratio=meta["ratio"],
            max_levels=meta["max_levels"],
            nghost=meta["nghost"],
            nranks=meta["nranks"],
        )
        # rebuild levels verbatim (bypassing balancers: owners are stored)
        for lev_meta in meta["levels"]:
            n = lev_meta["number"]
            if n >= len(h.levels):
                h.levels.append(Level(n, h.domain_at(n), h.dx(n)))
            level = h.levels[n]
            for p in lev_meta["patches"]:
                level.add(Patch(p["id"], Box(tuple(p["lo"]),
                                             tuple(p["hi"])),
                                n, p["owner"], meta["nghost"],
                                p["parent"]))
        h._next_patch_id = meta["next_patch_id"]
        dataobjs: dict[str, DataObject] = {}
        for entry in manifest["dataobjects"]:
            dobj = DataObject(entry["name"], h, entry["nvar"],
                              entry["rank"], entry["var_names"])
            for pid in entry["patches"]:
                dobj.array(pid)[...] = blob[f"{entry['name']}::{pid}"]
            dataobjs[entry["name"]] = dobj
        return h, dataobjs, float(manifest["t"])
