"""GodunovFlux and EFMFlux: interchangeable interface-flux providers.

"The flexibility of CCA allows one to successfully reuse the code assembly
... by simply replacing the GodunovFlux component with EFMFlux ...
Recompilation/relinking of the code was not required."  (paper §4.3 and
conclusions)  Both provide the same ``FluxPort``, so the swap is one
``connect`` line in the assembly script.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.flux import FluxPort
from repro.hydro.efm import efm_flux
from repro.hydro.godunov import godunov_flux


class _GodunovFluxPort(FluxPort):
    def __init__(self) -> None:
        self.ncalls = 0

    def flux(self, prim_l, prim_r, gamma: float) -> np.ndarray:
        self.ncalls += 1
        return godunov_flux(prim_l, prim_r, gamma)


class GodunovFlux(Component):
    """Exact-Riemann interface flux."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_GodunovFluxPort(), "flux")


class _EFMFluxPort(FluxPort):
    def __init__(self) -> None:
        self.ncalls = 0

    def flux(self, prim_l, prim_r, gamma: float) -> np.ndarray:
        self.ncalls += 1
        return efm_flux(prim_l, prim_r, gamma)


class EFMFlux(Component):
    """Equilibrium-Flux-Method (kinetic) interface flux for strong
    shocks."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_EFMFluxPort(), "flux")
