"""StatisticsComponent: named time series of scalar observables.

Reused across the reaction-diffusion and shock-interface assemblies (the
paper's Figs. 7-9 data come through it).
"""

from __future__ import annotations

import statistics as pystats
from typing import Any

from repro.cca.component import Component
from repro.cca.ports.diagnostics import StatisticsPort
from repro.errors import CCAError


class _Stats(StatisticsPort):
    def __init__(self) -> None:
        self._series: dict[str, list[tuple[float, float]]] = {}

    def record(self, key: str, t: float, value: float) -> None:
        self._series.setdefault(key, []).append((float(t), float(value)))

    def series(self, key: str) -> list[tuple[float, float]]:
        try:
            return list(self._series[key])
        except KeyError:
            raise CCAError(
                f"no series {key!r} (have: {sorted(self._series)})"
            ) from None

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key, pts in self._series.items():
            values = [v for _, v in pts]
            out[key] = {
                "n": len(values),
                "min": min(values),
                "max": max(values),
                "mean": pystats.fmean(values),
                "median": pystats.median(values),
                "stdev": pystats.stdev(values) if len(values) > 1 else 0.0,
                "last": values[-1],
            }
        return out


class StatisticsComponent(Component):
    """Provides ``stats`` (StatisticsPort)."""

    def set_services(self, services) -> None:
        self.services = services
        self.stats = _Stats()
        services.add_provides_port(self.stats, "stats")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    def checkpoint_state(self) -> dict:
        return {"series": {k: [[t, v] for t, v in pts]
                           for k, pts in self.stats._series.items()}}

    def restore_state(self, state: dict) -> None:
        self.stats._series = {
            k: [(float(t), float(v)) for t, v in pts]
            for k, pts in state["series"].items()}
