"""GasProperties: the hydrodynamics gas database (gamma etc.)."""

from __future__ import annotations

from typing import Any

from repro.cca.component import Component
from repro.cca.ports.parameter import ParameterPort

_DEFAULTS = {"gamma": 1.4}


class _Props(ParameterPort):
    def __init__(self, owner: "GasProperties") -> None:
        self.owner = owner

    def get(self, key: str, default: Any = None) -> Any:
        if key in self.owner.services.parameters:
            return self.owner.services.parameters.get(key)
        if key in self.owner.overrides:
            return self.owner.overrides[key]
        return _DEFAULTS.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self.owner.overrides[key] = value

    def keys(self) -> list[str]:
        return sorted(set(_DEFAULTS)
                      | set(self.owner.overrides)
                      | set(self.owner.services.parameters.keys()))


class GasProperties(Component):
    """Key-value gas-property database (Database subsystem, Table 3)."""

    def set_services(self, services) -> None:
        self.services = services
        self.overrides: dict[str, Any] = {}
        services.add_provides_port(_Props(self), "properties")
