"""ProblemModeler and DPDt: the 0D rigid-vessel closure.

"Between CvodeComponent and ThermoChemistry is the problemModeler
component which acts as an Adaptor, i.e. for this closed system it adds
the pressure term to the heat equation.  The pressure term depends on the
boundary conditions of the problem (rigid walls, i.e. constant mass and
volume) and is computed by the dPdt component."  (paper §4.1)

State layout: ``Φ = [T, Y_0..Y_{ns-1}, P]`` — the paper's Φ.
``ProblemModeler`` provides the VectorRHSPort that ``CvodeComponent``
integrates; it uses ``ThermoChemistry`` for the chemistry and ``DPDt`` for
the pressure equation, converting the constant-pressure source terms to
the constant-volume form (cv instead of cp, internal energy instead of
enthalpy).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.physics import DPDtPort
from repro.cca.ports.rhs import VectorRHSPort
from repro.chemistry.nasa7 import R_UNIVERSAL
from repro.errors import CCAError


class _DPDtImpl(DPDtPort):
    def __init__(self, owner: "DPDt") -> None:
        self.owner = owner

    def dpdt(self, rho: float, T: float, Y: np.ndarray, dT: float,
             dY: np.ndarray) -> float:
        """dP/dt = ρ R (Ṫ/W̄ + T d(1/W̄)/dt) for fixed ρ (rigid walls)."""
        mech = self.owner.services.get_port("chem").mechanism()
        inv_W = float(np.dot(Y, 1.0 / mech.weights))
        dinv_W = float(np.dot(dY, 1.0 / mech.weights))
        return rho * R_UNIVERSAL * (dT * inv_W + T * dinv_W)


class DPDt(Component):
    """Pressure-evolution closure for constant mass and volume."""

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_DPDtImpl(self), "dpdt")


class _ModelRHS(VectorRHSPort):
    """Constant-volume RHS assembled from the chemistry + dPdt ports.

    Carries one extra, narrower-interface method (``configure``) that
    fixes the vessel density from the initial fill — drivers call it once
    before handing the port to the stiff solver.
    """

    def __init__(self, owner: "ProblemModeler") -> None:
        self.owner = owner
        self.nfe = 0

    def configure(self, T0: float, P0: float, Y0: np.ndarray) -> float:
        return self.owner.set_initial_density(T0, P0, Y0)

    def n_state(self) -> int:
        mech = self.owner.services.get_port("chem").mechanism()
        return mech.n_species + 2

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        self.nfe += 1
        owner = self.owner
        chem = owner.services.get_port("chem")
        mech = chem.mechanism()
        T = max(float(y[0]), 50.0)
        Y = np.clip(y[1:-1], 0.0, None)
        rho = owner.rho
        if rho is None:
            raise CCAError("ProblemModeler: call set_initial_density first")
        C = mech.concentrations(rho, Y)
        wdot = mech.wdot(T, C)
        dY = wdot * mech.weights / rho
        # constant-volume heat equation: cv and internal energies
        u = mech.u_mass_species(np.asarray(T, dtype=float))
        cv = mech.cv_mass(T, Y)
        dT = -float(np.dot(u, wdot * mech.weights)) / (rho * cv)
        dP = owner.services.get_port("dpdt").dpdt(rho, T, Y, dT, dY)
        return np.concatenate(([dT], dY, [dP]))


class ProblemModeler(Component):
    """Adaptor assembling the rigid-vessel Φ-equation (see module doc)."""

    def set_services(self, services) -> None:
        self.services = services
        self.rho: float | None = None
        self.model_rhs = _ModelRHS(self)
        services.register_uses_port("chem", "ChemistryPort")
        services.register_uses_port("dpdt", "DPDtPort")
        services.add_provides_port(self.model_rhs, "model")

    def set_initial_density(self, T0: float, P0: float,
                            Y0: np.ndarray) -> float:
        """Fix ρ from the initial fill and share it with DPDt (via the
        connected component's own set_density — kept explicit here since
        density is physics state, not wiring)."""
        mech = self.services.get_port("chem").mechanism()
        self.rho = float(mech.density(T0, P0, Y0))
        return self.rho
