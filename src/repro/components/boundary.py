"""BoundaryConditions: per-face physical ghost fills for the hydro runs.

"The shock tube has reflecting boundary conditions above and below and
outflow on the right, which are set with the BoundaryConditions
component."  (paper §4.3)

Parameters: ``x_low``, ``x_high``, ``y_low``, ``y_high`` — each one of
``outflow`` (default), ``reflecting``, ``inflow``.  An inflow face pins
ghosts to the conserved state set via :meth:`BoundaryConditions.
set_inflow_state` (the driver takes it from the IC component's
post-shock state).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.bc import BoundaryConditionPort
from repro.errors import CCAError
from repro.hydro.bc import fill_inflow, fill_outflow, fill_reflecting

_FACE_KEYS = {(0, 0): "x_low", (0, 1): "x_high",
              (1, 0): "y_low", (1, 1): "y_high"}


class _BC(BoundaryConditionPort):
    def __init__(self, owner: "BoundaryConditions") -> None:
        self.owner = owner
        self.napplied = 0

    def apply(self, patch, ghosted: np.ndarray, axis: int,
              side: int) -> None:
        self.napplied += 1
        kind = self.owner.face_kind(axis, side)
        g = patch.nghost
        if kind == "outflow":
            fill_outflow(ghosted, axis, side, g)
        elif kind == "reflecting":
            fill_reflecting(ghosted, axis, side, g)
        elif kind == "inflow":
            state = self.owner.inflow_state
            if state is None:
                raise CCAError(
                    "inflow face used before set_inflow_state was called")
            fill_inflow(ghosted, axis, side, g, state)
        else:
            raise CCAError(f"unknown boundary kind {kind!r}")


class BoundaryConditions(Component):
    """Per-face boundary fills (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.inflow_state: np.ndarray | None = None
        services.add_provides_port(_BC(self), "bc")

    def face_kind(self, axis: int, side: int) -> str:
        key = _FACE_KEYS[(axis, side)]
        return str(self.services.get_parameter(key, "outflow"))

    def set_inflow_state(self, conserved: np.ndarray) -> None:
        self.inflow_state = np.asarray(conserved, dtype=float)
