"""MaxDiffCoeffEvaluator: the dynamic-timestep eigenvalue bound.

"(MaxDiffCoeffEvaluator) component is used by the explicit integrator to
evaluate the maximum diffusion coefficient over the domain to determine
the maximum stable timestep."  (paper §4.2)

Provides SpectralBoundPort; uses the mesh, the flame DataObject, the
transport and chemistry ports.  The bound is
``4 * D_max * (1/dx^2 + 1/dy^2)`` on the finest level present, reduced
globally over the cohort.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.rhs import SpectralBoundPort
from repro.integrators.spectral import gershgorin_diffusion


class _Bound(SpectralBoundPort):
    def __init__(self, owner: "MaxDiffCoeffEvaluator") -> None:
        self.owner = owner

    def spectral_bound(self, t: float) -> float:
        return self.owner.evaluate()


class MaxDiffCoeffEvaluator(Component):
    """Domain-wide diffusion stability bound (see module docstring).

    Parameter ``dataobject``: name of the flame field (default ``flow``),
    variable 0 = T, 1.. = Y.
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("data", "DataObjectPort")
        services.register_uses_port("transport", "TransportPort")
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_Bound(self), "bound")

    def evaluate(self) -> float:
        mesh = self.services.get_port("mesh")
        data = self.services.get_port("data")
        transport = self.services.get_port("transport")
        chem = self.services.get_port("chem")
        name = self.services.get_parameter("dataobject", "flow")
        dobj = data.data(name)
        h = dobj.hierarchy
        P = chem.pressure()
        d_local = 0.0
        for patch in dobj.owned_patches():
            arr = dobj.interior(patch)
            T = arr[0]
            Y = np.clip(arr[1:], 0.0, None)
            d_local = max(d_local,
                          transport.max_diffusion_coefficient(T, P, Y))
        comm = self.services.get_comm()
        if comm is not None and comm.size > 1:
            from repro.mpi.comm import Op

            d_local = comm.allreduce(d_local, op=Op.MAX)
        # stability is governed by the finest spacing present
        dx = h.dx(h.nlevels - 1)
        return gershgorin_diffusion(d_local, dx)
