"""GrACEComponent: the componentized SAMR data manager.

"Currently we have wrapped GrACE into a C++ component to perform the Data
Object and the Mesh tasks" (paper §4); here the wrapped library is
:mod:`repro.samr`.  One component instance provides the MeshPort, the
DataObjectPort and a default (zero-gradient) BoundaryConditionPort, and
optionally *uses* a physics-specific BoundaryConditionPort that overrides
the default during ghost exchange.

Parameters (rc ``parameter`` directive):

========================  ===========================================
``nx``, ``ny``            coarse mesh cells (default 32 x 32)
``x_extent``/``y_extent`` physical size (default 1.0)
``max_levels``            hierarchy depth (default 1)
``ratio``                 refinement factor (default 2)
``nghost``                ghost width (default 2)
``balancer``              ``greedy`` | ``sfc`` (default ``greedy``)
========================  ===========================================
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.bc import BoundaryConditionPort
from repro.cca.ports.dataobject import DataObjectPort
from repro.cca.ports.mesh import MeshPort
from repro.errors import CCAError, PortNotConnectedError
from repro.samr.dataobject import DataObject
from repro.samr.ghost import exchange_ghosts, restrict_level, zero_gradient_bc
from repro.samr.hierarchy import Hierarchy
from repro.samr.loadbalance import balance_greedy, balance_sfc


class _Mesh(MeshPort):
    def __init__(self, owner: "GrACEComponent") -> None:
        self.owner = owner

    def hierarchy(self) -> Hierarchy:
        return self.owner.require_hierarchy()

    def build_base_level(self) -> None:
        self.owner.build()

    def regrid(self) -> None:
        raise CCAError(
            "regridding is driven by the ErrorEstAndRegrid component; "
            "connect and call its RegridPort")

    def owned_patches(self, level: int | None = None):
        h = self.owner.require_hierarchy()
        rank = self.rank()
        levels = h.levels if level is None else [h.level(level)]
        return [p for lvl in levels for p in lvl.patches if p.owner == rank]

    def rank(self) -> int:
        comm = self.owner.comm
        return 0 if comm is None else comm.rank

    def nranks(self) -> int:
        comm = self.owner.comm
        return 1 if comm is None else comm.size


class _Data(DataObjectPort):
    def __init__(self, owner: "GrACEComponent") -> None:
        self.owner = owner

    def declare(self, name, nvar, var_names=None) -> DataObject:
        return self.owner.declare(name, nvar, var_names)

    def data(self, name) -> DataObject:
        return self.owner.data(name)

    def names(self) -> list[str]:
        return sorted(self.owner._data)

    def array(self, name, patch) -> np.ndarray:
        return self.owner.data(name).array(patch)

    def exchange_ghosts(self, name, level) -> None:
        self.owner.exchange(name, level)

    def restrict(self, name, fine_level) -> None:
        restrict_level(self.owner.data(name), fine_level,
                       comm=self.owner.comm)


class _DefaultBC(BoundaryConditionPort):
    def apply(self, patch, ghosted, axis, side) -> None:
        zero_gradient_bc(patch, ghosted, axis, side)


class GrACEComponent(Component):
    """Mesh + Data Object provider (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.comm = services.get_comm()
        self._hierarchy: Hierarchy | None = None
        self._data: dict[str, DataObject] = {}
        services.add_provides_port(_Mesh(self), "mesh")
        services.add_provides_port(_Data(self), "data")
        services.add_provides_port(_DefaultBC(), "default_bc")
        services.register_uses_port("bc", "BoundaryConditionPort")
        # optional pluggable load balancer (paper future-work item 1)
        services.register_uses_port("balancer", "LoadBalancerPort")

    # -- construction ---------------------------------------------------------
    def build(self) -> Hierarchy:
        if self._hierarchy is not None:
            raise CCAError("mesh already built")
        p = self.services.parameters
        try:
            balancer_port = self.services.get_port("balancer")
            balancer = balancer_port.assign
        except PortNotConnectedError:
            balancer = {"greedy": balance_greedy, "sfc": balance_sfc}[
                p.get_str("balancer", "greedy")]
        self._hierarchy = Hierarchy(
            base_shape=(p.get_int("nx", 32), p.get_int("ny", 32)),
            origin=(p.get_float("x_origin", 0.0), p.get_float("y_origin", 0.0)),
            extent=(p.get_float("x_extent", 1.0), p.get_float("y_extent", 1.0)),
            ratio=p.get_int("ratio", 2),
            max_levels=p.get_int("max_levels", 1),
            nghost=p.get_int("nghost", 2),
            nranks=1 if self.comm is None else self.comm.size,
            balancer=balancer,
        )
        self._hierarchy.build_base_level()
        return self._hierarchy

    def adopt(self, hierarchy: Hierarchy,
              dataobjs: dict[str, DataObject]) -> None:
        """Install a restored hierarchy + DataObjects (checkpoint restart).

        The rebuilt hierarchy carries the default balancer (callables are
        not serialized), so it is re-resolved exactly as in :meth:`build`
        — a post-restore regrid must assign the same owners an
        uninterrupted run would.
        """
        try:
            hierarchy.balancer = self.services.get_port("balancer").assign
        except PortNotConnectedError:
            hierarchy.balancer = {
                "greedy": balance_greedy, "sfc": balance_sfc,
            }[self.services.parameters.get_str("balancer", "greedy")]
        self._hierarchy = hierarchy
        self._data = dict(dataobjs)

    def require_hierarchy(self) -> Hierarchy:
        if self._hierarchy is None:
            raise CCAError("mesh not built yet (call MeshPort."
                           "build_base_level first)")
        return self._hierarchy

    # -- data objects ------------------------------------------------------------
    def declare(self, name: str, nvar: int,
                var_names: list[str] | None = None) -> DataObject:
        if name in self._data:
            raise CCAError(f"DataObject {name!r} already declared")
        rank = 0 if self.comm is None else self.comm.rank
        dobj = DataObject(name, self.require_hierarchy(), nvar, rank,
                          var_names)
        self._data[name] = dobj
        return dobj

    def data(self, name: str) -> DataObject:
        try:
            return self._data[name]
        except KeyError:
            raise CCAError(
                f"no DataObject {name!r} (declared: {sorted(self._data)})"
            ) from None

    def dataobjects(self) -> list[DataObject]:
        return list(self._data.values())

    def exchange(self, name: str, level: int) -> None:
        """Ghost fill using the connected physics BC, else zero-gradient."""
        try:
            bc_port = self.services.get_port("bc")
            bc = bc_port.apply
        except PortNotConnectedError:
            bc = zero_gradient_bc
        exchange_ghosts(self.data(name), level, comm=self.comm, bc=bc)
