"""Initial-condition components for the three applications.

* :class:`Initializer` — 0D ignition: "a vector of double precision
  numbers specifying the stoichiometric mass fractions for the species,
  the initial temperature (1000 K), and the initial pressure (1 atm)".
* :class:`InitialCondition` — 2D reaction-diffusion: "initializes a
  configuration with three hot-spots" in a stoichiometric H2-air mixture.
* :class:`ConicalInterfaceIC` — shock-interface: "a shock tube with Air
  and Freon (density ratio 3) separated by an oblique (30 deg from the
  vertical) interface which is ruptured by a Mach 1.5 shock".
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.ic import InitialConditionPort, VectorICPort
from repro.chemistry.h2_air import h2_air_phi, stoichiometric_h2_air
from repro.errors import CCAError
from repro.hydro.state import prim_to_cons
from repro.samr.dataobject import DataObject


# --------------------------------------------------------------- 0D ignition
class _VectorIC(VectorICPort):
    def __init__(self, owner: "Initializer") -> None:
        self.owner = owner

    def initial_state(self) -> np.ndarray:
        owner = self.owner
        mech = owner.services.get_port("chem").mechanism()
        T0 = float(owner.services.get_parameter("T0", 1000.0))
        P0 = float(owner.services.get_parameter("P0", 101325.0))
        phi = float(owner.services.get_parameter("phi", 1.0))
        Y = np.zeros(mech.n_species)
        for nm, val in h2_air_phi(phi).items():
            if nm in mech.names:
                Y[mech.species_index(nm)] = val
        Y /= Y.sum()
        return np.concatenate(([T0], Y, [P0]))


class Initializer(Component):
    """0D initial condition: Φ0 = [T0, Y(phi), P0].

    Parameters: ``T0`` (1000 K), ``P0`` (1 atm), ``phi`` (equivalence
    ratio, 1.0 = the paper's stoichiometric fill).
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_VectorIC(self), "ic")


# --------------------------------------------------------- 2D hot-spot flame
class _HotspotIC(InitialConditionPort):
    def __init__(self, owner: "InitialCondition") -> None:
        self.owner = owner

    def initialize(self, dobj: DataObject) -> None:
        owner = self.owner
        p = owner.services.parameters
        mech = owner.services.get_port("chem").mechanism()
        if dobj.nvar != mech.n_species + 1:
            raise CCAError(
                f"flame DataObject needs T + {mech.n_species} species, "
                f"got nvar={dobj.nvar}")
        T_cold = p.get_float("T_cold", 300.0)
        T_hot = p.get_float("T_hot", 1400.0)
        radius = p.get_float("spot_radius", 0.06)
        spots = owner.hotspots()
        Y = np.zeros(mech.n_species)
        for nm, val in stoichiometric_h2_air().items():
            if nm in mech.names:
                Y[mech.species_index(nm)] = val
        Y /= Y.sum()
        h = dobj.hierarchy
        for patch in dobj.owned_patches():
            lvl = h.level(patch.level)
            x, y = lvl.cell_centers(patch, h.origin, ghost=True)
            X, Yc = np.meshgrid(x, y, indexing="ij")
            T = np.full_like(X, T_cold)
            for (cx, cy) in spots:
                r2 = (X - cx) ** 2 + (Yc - cy) ** 2
                T = np.maximum(
                    T, T_cold + (T_hot - T_cold) * np.exp(-r2 / radius**2))
            arr = dobj.array(patch)
            arr[0] = T
            for k in range(mech.n_species):
                arr[1 + k] = Y[k]


class InitialCondition(Component):
    """Three-hot-spot flame IC (paper §4.2, Fig. 3 leftmost frame).

    Parameters: ``T_cold``, ``T_hot``, ``spot_radius`` and
    ``spot<k>_x`` / ``spot<k>_y`` (k = 1..3; defaults give three spots in
    a unit-normalized domain at (0.3, 0.3), (0.7, 0.4), (0.4, 0.75)).
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_HotspotIC(self), "ic")

    def hotspots(self) -> list[tuple[float, float]]:
        p = self.services.parameters
        scale_x = p.get_float("x_extent", 1.0)
        scale_y = p.get_float("y_extent", 1.0)
        defaults = [(0.3, 0.3), (0.7, 0.4), (0.4, 0.75)]
        spots = []
        for k in range(1, 4):
            x = p.get_float(f"spot{k}_x", defaults[k - 1][0] * scale_x)
            y = p.get_float(f"spot{k}_y", defaults[k - 1][1] * scale_y)
            spots.append((x, y))
        return spots


# ------------------------------------------------------- shock-interface IC
class _ConicalIC(InitialConditionPort):
    def __init__(self, owner: "ConicalInterfaceIC") -> None:
        self.owner = owner

    def initialize(self, dobj: DataObject) -> None:
        owner = self.owner
        p = owner.services.parameters
        gamma = float(owner.services.get_port("gas").get("gamma", 1.4))
        mach = p.get_float("mach", 1.5)
        ratio = p.get_float("density_ratio", 3.0)
        angle = np.deg2rad(p.get_float("angle_deg", 30.0))
        x_shock = p.get_float("shock_x", 0.2)
        x_interface = p.get_float("interface_x", 0.4)

        # quiescent "air" ahead of the shock
        rho1, p1 = 1.0, 1.0
        a1 = np.sqrt(gamma * p1 / rho1)
        # Rankine-Hugoniot post-shock state for a Mach `mach` shock
        m2 = mach * mach
        rho2 = rho1 * (gamma + 1.0) * m2 / ((gamma - 1.0) * m2 + 2.0)
        p2 = p1 * (2.0 * gamma * m2 - (gamma - 1.0)) / (gamma + 1.0)
        u2 = mach * a1 * (2.0 * (m2 - 1.0)) / ((gamma + 1.0) * m2)
        owner.post_shock = (rho2, u2, 0.0, p2, 0.0)

        h = dobj.hierarchy
        tan_a = np.tan(angle)
        for patch in dobj.owned_patches():
            lvl = h.level(patch.level)
            x, y = lvl.cell_centers(patch, h.origin, ghost=True)
            X, Y = np.meshgrid(x, y, indexing="ij")
            # oblique interface: x = x_interface + y*tan(angle)
            behind_interface = X >= (x_interface + Y * tan_a)
            rho = np.where(behind_interface, ratio * rho1, rho1)
            zeta = np.where(behind_interface, 1.0, 0.0)
            pr = np.full_like(X, p1)
            u = np.zeros_like(X)
            # post-shock region (shock left of the interface, moving right)
            post = X <= x_shock
            rho = np.where(post, rho2, rho)
            pr = np.where(post, p2, pr)
            u = np.where(post, u2, u)
            dobj.array(patch)[...] = prim_to_cons(
                rho, u, 0.0, pr, zeta, gamma)


class ConicalInterfaceIC(Component):
    """Shock tube + oblique density interface (paper §4.3, Table 3).

    Parameters: ``mach`` (1.5), ``density_ratio`` (3), ``angle_deg`` (30),
    ``shock_x``, ``interface_x``.  After ``initialize`` the post-shock
    state is available as ``post_shock`` (used for inflow BCs).
    """

    def set_services(self, services) -> None:
        self.services = services
        self.post_shock: tuple | None = None
        services.register_uses_port("gas", "ParameterPort")
        services.add_provides_port(_ConicalIC(self), "ic")
