"""DRFMComponent: mixture-averaged transport properties.

"DRFMComponent is a thin C++ wrapper around the Fortran77 DRFM package."
(paper §4.2)  The wrapped library here is
:class:`repro.transport.MixtureTransport`.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.physics import TransportPort
from repro.transport.diffusion import MixtureTransport


class _Transport(TransportPort):
    def __init__(self, owner: "DRFMComponent") -> None:
        self.owner = owner

    def diffusion_coefficients(self, T, P):
        return self.owner.transport.diffusion_coefficients(T, P)

    def conductivity(self, T):
        return self.owner.transport.conductivity(T)

    def max_diffusion_coefficient(self, T, P, Y):
        return self.owner.transport.max_diffusion_coefficient(T, P, Y)


class DRFMComponent(Component):
    """Transport-property provider; uses ThermoChemistry for the species
    set (the mechanism defines which D_i exist)."""

    def set_services(self, services) -> None:
        self.services = services
        self._transport: MixtureTransport | None = None
        services.register_uses_port("chem", "ChemistryPort")
        services.add_provides_port(_Transport(self), "transport")

    @property
    def transport(self) -> MixtureTransport:
        if self._transport is None:
            mech = self.services.get_port("chem").mechanism()
            self._transport = MixtureTransport(mech)
        return self._transport
