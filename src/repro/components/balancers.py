"""Pluggable load-balancer components.

The paper's future-work item (1): "This will also include an effort to
define interfaces to load-balancers prior to testing a number of them."
Here is that interface — :class:`LoadBalancerPort` — and two
implementations behind it.  ``GrACEComponent`` uses the port when
connected and falls back to its ``balancer`` parameter otherwise, so
balancers swap with one ``connect`` line exactly like flux schemes do.
"""

from __future__ import annotations

from typing import Sequence

from repro.cca.component import Component
from repro.cca.port import Port
from repro.samr.box import Box
from repro.samr.loadbalance import balance_greedy, balance_sfc, load_imbalance


class LoadBalancerPort(Port):
    """Assign an owner rank to every box."""

    def assign(self, boxes: Sequence[Box], nranks: int,
               weights: Sequence[float] | None = None) -> list[int]:
        raise NotImplementedError

    def name(self) -> str:
        raise NotImplementedError


class _Greedy(LoadBalancerPort):
    def __init__(self) -> None:
        self.ncalls = 0

    def assign(self, boxes, nranks, weights=None) -> list[int]:
        self.ncalls += 1
        return balance_greedy(boxes, nranks, weights)

    def name(self) -> str:
        return "greedy-lpt"


class GreedyBalancer(Component):
    """Longest-processing-time-first bin packing (best balance)."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_Greedy(), "balancer")


class _SFC(LoadBalancerPort):
    def __init__(self) -> None:
        self.ncalls = 0

    def assign(self, boxes, nranks, weights=None) -> list[int]:
        self.ncalls += 1
        return balance_sfc(boxes, nranks, weights)

    def name(self) -> str:
        return "morton-sfc"


class SFCBalancer(Component):
    """Morton space-filling-curve chunking (best locality — "keeping
    parents and children on the same processors")."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_SFC(), "balancer")


def imbalance_of(boxes: Sequence[Box], owners: Sequence[int],
                 nranks: int) -> float:
    """Convenience re-export for ablation benches."""
    return load_imbalance(boxes, owners, nranks)
