"""ImplicitIntegrator: the per-cell chemistry adaptor.

"The ImplicitIntegrator component is an Adaptor that calls on the Implicit
Integration subsystem for all cells and all patches."  (paper §4.2)

For every owned patch of the flame DataObject it extracts the pointwise
state ``[T, Y...]`` and hands it to the connected ODESolverPort (the
``CvodeComponent`` / ``ThermoChemistry`` pair).  Two fidelity modes:

* ``mode = "cvode"`` (default) — one stiff integration per cell, the
  paper's scheme.
* ``mode = "batch"`` — vectorized explicit sub-stepping of the chemical
  source over whole patches; used by the scaling benches where the paper
  itself notes "the compute time per mesh point ... can be predicted"
  (adaptivity and stiffness hot spots are off).

Provides ``integrator`` (IntegratorPort); uses ``solver`` (ODESolverPort),
``chem`` (ChemistryPort), ``data`` (DataObjectPort).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.integrator import IntegratorPort
from repro.errors import CCAError
from repro.samr.dataobject import DataObject


class _ChemIntegrator(IntegratorPort):
    def __init__(self, owner: "ImplicitIntegrator") -> None:
        self.owner = owner
        self.cells_integrated = 0
        self.nsteps = 0

    def advance(self, dataobjs: Sequence[DataObject], t: float,
                dt: float) -> float:
        if len(dataobjs) != 1:
            raise CCAError(
                "chemistry adaptor advances exactly one DataObject")
        self.nsteps += 1
        return self.owner.advance(dataobjs[0], t, dt, self)

    def stable_dt(self, dataobjs: Sequence[DataObject], t: float) -> float:
        # implicit chemistry has no stability limit; accuracy is handled
        # inside the stiff solver
        return float("inf")


class ImplicitIntegrator(Component):
    """Per-cell chemistry advance (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.port = _ChemIntegrator(self)
        services.register_uses_port("solver", "ODESolverPort")
        services.register_uses_port("chem", "ChemistryPort")
        services.register_uses_port("data", "DataObjectPort")
        services.add_provides_port(self.port, "integrator")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    def checkpoint_state(self) -> dict:
        return {"cells_integrated": self.port.cells_integrated,
                "nsteps": self.port.nsteps}

    def restore_state(self, state: dict) -> None:
        self.port.cells_integrated = int(state["cells_integrated"])
        self.port.nsteps = int(state["nsteps"])

    def advance(self, dobj: DataObject, t: float, dt: float,
                port: _ChemIntegrator) -> float:
        mode = self.services.get_parameter("mode", "cvode")
        if mode == "cvode":
            self._advance_per_cell(dobj, t, dt, port)
        elif mode == "batch":
            self._advance_batch(dobj, t, dt, port)
        else:
            raise CCAError(f"unknown chemistry mode {mode!r}")
        return t + dt

    # -- the paper's scheme: one stiff integration per cell ----------------
    def _advance_per_cell(self, dobj: DataObject, t: float, dt: float,
                          port: _ChemIntegrator) -> None:
        solver = self.services.get_port("solver")
        t_threshold = float(
            self.services.get_parameter("skip_below_T", 0.0))
        for patch in dobj.owned_patches():
            interior = dobj.interior(patch)
            nvar, nx, ny = interior.shape
            # interior is a strided view; reshape would copy silently, so
            # work on an explicit copy and write the block back at the end
            flat = np.ascontiguousarray(interior).reshape(nvar, -1)
            for c in range(flat.shape[1]):
                if flat[0, c] < t_threshold:
                    continue  # cold cell: chemistry frozen (cheap skip)
                y0 = flat[:, c].copy()
                flat[:, c] = solver.integrate(t, y0, t + dt)
                port.cells_integrated += 1
            interior[...] = flat.reshape(nvar, nx, ny)

    # -- vectorized bench mode: explicit sub-stepped source -----------------
    def _advance_batch(self, dobj: DataObject, t: float, dt: float,
                       port: _ChemIntegrator) -> None:
        chem = self.services.get_port("chem")
        nsub = int(self.services.get_parameter("substeps", 4))
        h = dt / nsub
        for patch in dobj.owned_patches():
            interior = dobj.interior(patch)
            T = interior[0]
            Y = interior[1:]
            for _ in range(nsub):
                dT1, dY1 = chem.source_terms(T, Y)
                T1 = T + h * dT1
                Y1 = np.clip(Y + h * dY1, 0.0, None)
                dT2, dY2 = chem.source_terms(T1, Y1)
                T = T + 0.5 * h * (dT1 + dT2)
                Y = np.clip(Y + 0.5 * h * (dY1 + dY2), 0.0, None)
            interior[0] = T
            interior[1:] = Y
            port.cells_integrated += T.size
