"""InviscidFlux and States: the Euler RHS assembly.

"A Runge-Kutta time integrator (ExplicitIntegratorRK2) with an
InviscidFlux component supplies the right-hand-side of the equation,
patch-by-patch.  InviscidFlux component uses a States component to set up
the Riemann problem at each cell interface which is then passed to the
GodunovFlux component for the Riemann solution."  (paper §4.3)
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.flux import StatesPort
from repro.cca.ports.rhs import PatchRHSPort
from repro.hydro.fluxes import euler_rhs
from repro.hydro.reconstruction import muscl_interface_states


class _States(StatesPort):
    def __init__(self, owner: "States") -> None:
        self.owner = owner
        self.ncalls = 0

    def interface_states(self, prim: np.ndarray, axis: int):
        self.ncalls += 1
        limiter = self.owner.services.get_parameter("limiter", "van_leer")
        return muscl_interface_states(prim, axis=axis, limiter=limiter)


class States(Component):
    """MUSCL interface-state construction (parameter ``limiter``)."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_States(self), "states")


class _InviscidRHS(PatchRHSPort):
    def __init__(self, owner: "InviscidFlux") -> None:
        self.owner = owner
        self.nfe = 0

    def evaluate(self, t: float, patch, ghosted: np.ndarray) -> np.ndarray:
        self.nfe += 1
        owner = self.owner
        gamma = float(owner.services.get_port("gas").get("gamma", 1.4))
        flux_port = owner.services.get_port("flux")
        states_port = owner.services.get_port("states")
        hierarchy = owner.services.get_port("mesh").hierarchy()
        dx, dy = hierarchy.dx(patch.level)
        return euler_rhs(
            ghosted, dx, dy, gamma,
            flux_fn=flux_port.flux,
            nghost=patch.nghost,
            reconstruct_fn=states_port.interface_states,
        )


class InviscidFlux(Component):
    """Adaptor: ghosted patch -> conservative flux divergence.

    Uses ``states`` (StatesPort), ``flux`` (FluxPort), ``gas``
    (ParameterPort), ``mesh`` (MeshPort); provides ``rhs`` (PatchRHSPort).
    """

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("states", "StatesPort")
        services.register_uses_port("flux", "FluxPort")
        services.register_uses_port("gas", "ParameterPort")
        services.register_uses_port("mesh", "MeshPort")
        services.add_provides_port(_InviscidRHS(self), "rhs")
