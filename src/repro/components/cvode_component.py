"""CvodeComponent: the implicit stiff/non-stiff integrator.

"CvodeComponent is an implicit stiff/non-stiff integrator that
time-advances the system as it ignites.  This is a thin wrapper around the
Cvode integrator library."  (paper §4.1)  Our wrapped "library" is
:class:`repro.integrators.cvode.CVode`.

Provides ``solver`` (ODESolverPort); uses ``rhs`` (VectorRHSPort).
Parameters: ``rtol``, ``atol``, ``method`` (``bdf``/``adams``).
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.integrator import ODESolverPort
from repro.integrators.cvode import CVode


class _Solver(ODESolverPort):
    def __init__(self, owner: "CvodeComponent") -> None:
        self.owner = owner
        self._last_nfe = 0
        self.total_nfe = 0
        self.total_steps = 0

    def integrate(self, t0: float, y0: np.ndarray, t1: float) -> np.ndarray:
        rhs_port = self.owner.services.get_port("rhs")
        p = self.owner.services.parameters
        cv = CVode(
            rhs_port.rhs,
            t0,
            np.asarray(y0, dtype=float),
            rtol=p.get_float("rtol", 1e-8),
            atol=p.get_float("atol", 1e-12),
            method=p.get_str("method", "bdf"),
        )
        y = cv.integrate_to(t1)
        self._last_nfe = cv.stats.nfe
        self.total_nfe += cv.stats.nfe
        self.total_steps += cv.stats.nsteps
        return y

    def last_nfe(self) -> int:
        return self._last_nfe


class CvodeComponent(Component):
    """Thin wrapper around the CVode integrator (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.solver = _Solver(self)
        services.register_uses_port("rhs", "VectorRHSPort")
        services.add_provides_port(self.solver, "solver")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    # The CVode instance itself is created afresh inside every
    # ``integrate()`` call, so the only state to carry across a restart is
    # the cumulative call accounting.
    def checkpoint_state(self) -> dict:
        return {"last_nfe": self.solver._last_nfe,
                "total_nfe": self.solver.total_nfe,
                "total_steps": self.solver.total_steps}

    def restore_state(self, state: dict) -> None:
        self.solver._last_nfe = int(state["last_nfe"])
        self.solver.total_nfe = int(state["total_nfe"])
        self.solver.total_steps = int(state["total_steps"])
