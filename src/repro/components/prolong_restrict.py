"""ProlongRestrict: cell-centered inter-level interpolation component.

"ProlongRestrict performs the cell-centered interpolations."  (paper §4.3)
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.interpolation import ProlongRestrictPort
from repro.samr.prolong import prolong_bilinear
from repro.samr.restrict import restrict_average


class _ProlongRestrict(ProlongRestrictPort):
    def __init__(self) -> None:
        self.ncalls = 0

    def prolong(self, coarse: np.ndarray, ratio: int) -> np.ndarray:
        self.ncalls += 1
        return prolong_bilinear(coarse, ratio)

    def restrict(self, fine: np.ndarray, ratio: int) -> np.ndarray:
        self.ncalls += 1
        return restrict_average(fine, ratio)


class ProlongRestrict(Component):
    """Provides ``interp`` (ProlongRestrictPort)."""

    def set_services(self, services) -> None:
        self.services = services
        services.add_provides_port(_ProlongRestrict(), "interp")
