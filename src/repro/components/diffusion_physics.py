"""DiffusionPhysics: the diffusive transport source term.

Evaluates ``K ∇·(B ∇Φ)`` of the paper's Eq. 3, patch by patch:
``Φ = [T, Y_1..Y_N]``, ``K = (1/ρ)[1/cp, 1, ..., 1]``,
``B = [λ, ρD_1, ..., ρD_N]`` — heat conduction plus mixture-averaged
Fickian species diffusion.  Face coefficients are arithmetic means of the
cell-centered values; the stencil needs one ghost ring.

Provides ``rhs`` (PatchRHSPort); uses ``transport`` and ``chem``.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.rhs import PatchRHSPort
from repro.errors import CCAError


def _div_flux(phi: np.ndarray, B: np.ndarray, dx: float,
              dy: float) -> np.ndarray:
    """∇·(B ∇φ) over the interior (arrays carry >= 1 ghost ring); operates
    on the last two axes of (nvar, NX, NY) inputs."""
    Bx = 0.5 * (B[:, 1:, :] + B[:, :-1, :])       # faces along x
    fx = Bx * (phi[:, 1:, :] - phi[:, :-1, :]) / dx
    div_x = (fx[:, 1:, 1:-1] - fx[:, :-1, 1:-1]) / dx
    By = 0.5 * (B[:, :, 1:] + B[:, :, :-1])
    fy = By * (phi[:, :, 1:] - phi[:, :, :-1]) / dy
    div_y = (fy[:, 1:-1, 1:] - fy[:, 1:-1, :-1]) / dy
    return div_x + div_y


class _DiffusionRHS(PatchRHSPort):
    def __init__(self, owner: "DiffusionPhysics") -> None:
        self.owner = owner
        self.nfe = 0

    def evaluate(self, t: float, patch, ghosted: np.ndarray) -> np.ndarray:
        self.nfe += 1
        return self.owner.evaluate(patch, ghosted)


class DiffusionPhysics(Component):
    """Diffusive RHS of the reaction-diffusion system (see module doc)."""

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("transport", "TransportPort")
        services.register_uses_port("chem", "ChemistryPort")
        services.register_uses_port("mesh", "MeshPort")
        services.add_provides_port(_DiffusionRHS(self), "rhs")

    def evaluate(self, patch, ghosted: np.ndarray) -> np.ndarray:
        chem = self.services.get_port("chem")
        transport = self.services.get_port("transport")
        mech = chem.mechanism()
        if ghosted.shape[0] != mech.n_species + 1:
            raise CCAError(
                f"DiffusionPhysics expects T + {mech.n_species} species, "
                f"got {ghosted.shape[0]} variables")
        dx, dy = self._spacing(patch)
        g = patch.nghost
        pad = g - 1
        core = ghosted if pad == 0 else ghosted[:, pad:-pad, pad:-pad]
        T = np.maximum(core[0], 50.0)
        Y = np.clip(core[1:], 0.0, None)
        P = chem.pressure()
        rho = mech.density(T, P, Y)
        lam = transport.conductivity(T)
        D = transport.diffusion_coefficients(T, P)
        B = np.concatenate([lam[None], rho[None] * D])
        div = _div_flux(core, B, dx, dy)
        rho_in = rho[1:-1, 1:-1]
        cp_in = mech.cp_mass(T[1:-1, 1:-1], Y[:, 1:-1, 1:-1])
        out = np.empty_like(div)
        out[0] = div[0] / (rho_in * cp_in)
        out[1:] = div[1:] / rho_in
        return out

    def _spacing(self, patch) -> tuple[float, float]:
        hierarchy = self.services.get_port("mesh").hierarchy()
        dx, dy = hierarchy.dx(patch.level)
        return float(dx), float(dy)
