"""ExplicitIntegratorRK2 and CharacteristicQuantities.

The shock-interface time integrator: SSP-RK2 over all owned patches with
ghost exchange (and physical BCs) before every stage, restriction of fine
levels afterwards.  ``CharacteristicQuantities`` "determines the
characteristic speeds" (paper §4.3) for CFL-based step control.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.integrator import IntegratorPort
from repro.cca.ports.physics import CharacteristicsPort
from repro.components.explicit_integrator import (
    pack_interiors,
    unpack_interiors,
)
from repro.errors import CCAError
from repro.hydro.state import max_wavespeed
from repro.integrators.rk2 import rk2_step
from repro.samr.dataobject import DataObject
from repro.samr.ghost import restrict_level


class _Characteristics(CharacteristicsPort):
    def __init__(self, owner: "CharacteristicQuantities") -> None:
        self.owner = owner

    def max_wavespeed(self, dobj_name: str) -> float:
        services = self.owner.services
        data = services.get_port("data")
        gamma = float(services.get_port("gas").get("gamma", 1.4))
        dobj = data.data(dobj_name)
        smax = 0.0
        for patch in dobj.owned_patches():
            smax = max(smax, max_wavespeed(dobj.interior(patch), gamma))
        comm = services.get_comm()
        if comm is not None and comm.size > 1:
            from repro.mpi.comm import Op

            smax = comm.allreduce(smax, op=Op.MAX)
        return smax


class CharacteristicQuantities(Component):
    """Global characteristic wave speeds; uses ``data`` + ``gas``."""

    def set_services(self, services) -> None:
        self.services = services
        services.register_uses_port("data", "DataObjectPort")
        services.register_uses_port("gas", "ParameterPort")
        services.add_provides_port(_Characteristics(self), "speeds")


class _RK2Port(IntegratorPort):
    def __init__(self, owner: "ExplicitIntegratorRK2") -> None:
        self.owner = owner
        self.nfe = 0
        self.nsteps = 0

    def advance(self, dataobjs: Sequence[DataObject], t: float,
                dt: float) -> float:
        if len(dataobjs) != 1:
            raise CCAError("RK2 integrator advances exactly one DataObject")
        return self.owner.advance(dataobjs[0], t, dt, self)

    def stable_dt(self, dataobjs: Sequence[DataObject], t: float) -> float:
        owner = self.owner
        dobj = dataobjs[0]
        cfl = float(owner.services.get_parameter("cfl", 0.4))
        smax = owner.services.get_port("speeds").max_wavespeed(dobj.name)
        if smax <= 0.0:
            raise CCAError("zero wavespeed field")
        h = dobj.hierarchy
        dx, dy = h.dx(h.nlevels - 1)  # finest level limits the global step
        return cfl / (smax / dx + smax / dy)


class ExplicitIntegratorRK2(Component):
    """SSP-RK2 hydro integrator over the hierarchy.

    Uses ``rhs`` (PatchRHSPort), ``speeds`` (CharacteristicsPort),
    ``data`` (DataObjectPort); provides ``integrator``.
    """

    def set_services(self, services) -> None:
        self.services = services
        self.port = _RK2Port(self)
        services.register_uses_port("rhs", "PatchRHSPort")
        services.register_uses_port("speeds", "CharacteristicsPort")
        services.register_uses_port("data", "DataObjectPort")
        services.add_provides_port(self.port, "integrator")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    def checkpoint_state(self) -> dict:
        return {"nfe": self.port.nfe, "nsteps": self.port.nsteps}

    def restore_state(self, state: dict) -> None:
        self.port.nfe = int(state["nfe"])
        self.port.nsteps = int(state["nsteps"])

    def advance(self, dobj: DataObject, t: float, dt: float,
                port: _RK2Port) -> float:
        rhs_port = self.services.get_port("rhs")
        data_port = self.services.get_port("data")
        h = dobj.hierarchy
        port.nsteps += 1

        def rhs_vec(tt: float, y: np.ndarray) -> np.ndarray:
            port.nfe += 1
            unpack_interiors(dobj, y)
            for lev in range(h.nlevels):
                data_port.exchange_ghosts(dobj.name, lev)
            parts = [
                rhs_port.evaluate(tt, patch, dobj.array(patch)).ravel()
                for patch in dobj.owned_patches()
            ]
            return np.concatenate(parts) if parts else np.zeros(0)

        y0 = pack_interiors(dobj)
        y1 = rk2_step(rhs_vec, t, y0, dt)
        unpack_interiors(dobj, y1)
        comm = self.services.get_comm()
        for lev in range(h.nlevels - 1, 0, -1):
            restrict_level(dobj, lev, comm=comm)
            data_port.exchange_ghosts(dobj.name, lev)
        data_port.exchange_ghosts(dobj.name, 0)
        return t + dt
