"""ExplicitIntegrator: RKC time advance over the patch hierarchy.

"The Explicit Integration subsystem consists of ... a Runge-Kutta-
Chebyshev integrator (ExplicitIntegrator), a component to calculate the
diffusion fluxes (DiffusionPhysics) ..."  (paper §4.2)

The integrator packs all owned-patch interiors into one state vector,
runs one RKC macro step (stage count from the connected
SpectralBoundPort, reduced globally so every rank takes the same number of
stages), exchanging ghosts before every stage RHS evaluation, and finally
restricts fine levels onto coarse ones.

Provides ``integrator`` (IntegratorPort); uses ``rhs`` (PatchRHSPort),
``bound`` (SpectralBoundPort), ``mesh``, ``data``.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.integrator import IntegratorPort
from repro.errors import CCAError
from repro.integrators.rkc import rkc_step, stages_for
from repro.obs import trace as _obs
from repro.obs.metrics import get_registry as _obs_registry
from repro.samr.dataobject import DataObject
from repro.samr.ghost import restrict_level


def pack_interiors(dobj: DataObject) -> np.ndarray:
    """Flatten owned-patch interiors into one vector (stable patch order)."""
    parts = [dobj.interior(p).ravel() for p in dobj.owned_patches()]
    if not parts:
        return np.zeros(0)
    return np.concatenate(parts)

def unpack_interiors(dobj: DataObject, y: np.ndarray) -> None:
    """Scatter a packed vector back into owned-patch interiors."""
    off = 0
    for p in dobj.owned_patches():
        view = dobj.interior(p)
        n = view.size
        view[...] = y[off:off + n].reshape(view.shape)
        off += n
    if off != y.size:
        raise CCAError(
            f"state vector length {y.size} != owned interior size {off}")


class _RKCIntegrator(IntegratorPort):
    def __init__(self, owner: "ExplicitIntegrator") -> None:
        self.owner = owner
        self.nfe = 0
        self.nsteps = 0
        self.last_stages = 0

    def advance(self, dataobjs: Sequence[DataObject], t: float,
                dt: float) -> float:
        if len(dataobjs) != 1:
            raise CCAError("RKC integrator advances exactly one DataObject")
        return self.owner.advance(dataobjs[0], t, dt, self)

    def stable_dt(self, dataobjs: Sequence[DataObject], t: float) -> float:
        """Step keeping the stage count at the configured budget."""
        bound = self.owner.global_bound(t)
        s_max = int(self.owner.services.get_parameter("max_stages", 20))
        if bound <= 0.0:
            raise CCAError("non-positive spectral bound")
        return 0.653 * s_max**2 / bound


class ExplicitIntegrator(Component):
    """RKC driver over the hierarchy (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.port = _RKCIntegrator(self)
        services.register_uses_port("rhs", "PatchRHSPort")
        services.register_uses_port("bound", "SpectralBoundPort")
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("data", "DataObjectPort")
        services.add_provides_port(self.port, "integrator")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    def checkpoint_state(self) -> dict:
        return {"nfe": self.port.nfe, "nsteps": self.port.nsteps,
                "last_stages": self.port.last_stages}

    def restore_state(self, state: dict) -> None:
        self.port.nfe = int(state["nfe"])
        self.port.nsteps = int(state["nsteps"])
        self.port.last_stages = int(state["last_stages"])

    def global_bound(self, t: float) -> float:
        """Spectral bound (the provider already reduces over the cohort)."""
        return float(self.services.get_port("bound").spectral_bound(t))

    def advance(self, dobj: DataObject, t: float, dt: float,
                port: _RKCIntegrator) -> float:
        t0 = time.perf_counter() if _obs.on else 0.0
        nfe0 = port.nfe
        rho = self.global_bound(t)
        s = stages_for(dt, rho)
        port.last_stages = s
        port.nsteps += 1
        rhs_port = self.services.get_port("rhs")
        data_port = self.services.get_port("data")
        h = dobj.hierarchy

        def rhs_vec(tt: float, y: np.ndarray) -> np.ndarray:
            port.nfe += 1
            unpack_interiors(dobj, y)
            for lev in range(h.nlevels):
                data_port.exchange_ghosts(dobj.name, lev)
            out_parts = []
            for patch in dobj.owned_patches():
                ghosted = dobj.array(patch)
                out_parts.append(
                    rhs_port.evaluate(tt, patch, ghosted).ravel())
            return (np.concatenate(out_parts) if out_parts
                    else np.zeros(0))

        y0 = pack_interiors(dobj)
        y1 = rkc_step(rhs_vec, t, y0, dt, rho, stages=s)
        unpack_interiors(dobj, y1)
        comm = self.services.get_comm()
        for lev in range(h.nlevels - 1, 0, -1):
            restrict_level(dobj, lev, comm=comm)
            data_port.exchange_ghosts(dobj.name, lev)
        data_port.exchange_ghosts(dobj.name, 0)
        if _obs.on:
            _obs.complete("rkc.advance", "integrator", t0,
                          dt=dt, stages=s, rho=rho, nfe=port.nfe - nfe0)
            reg = _obs_registry()
            reg.counter("integrator.steps", kind="rkc").inc()
            reg.counter("integrator.rhs_evals", kind="rkc").inc(
                port.nfe - nfe0)
            reg.gauge("integrator.rkc_stages").set(s)
        return t + dt
