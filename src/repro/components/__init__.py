"""The paper's concrete components.

Each class here is a CCA component wrapping one substrate capability,
named after its counterpart in the paper's Tables 1-3:

====================  =====================================================
Component             Role (paper reference)
====================  =====================================================
GrACEComponent        Mesh + Data Object + default BCs (§4.2, Table 2)
Initializer           0D initial condition (§4.1, Table 1)
InitialCondition      three hot-spots flame IC (§4.2, Table 2)
ConicalInterfaceIC    shock-tube + oblique interface IC (§4.3, Table 3)
CvodeComponent        stiff/non-stiff implicit integrator (§4.1)
ThermoChemistry       chemistry source terms + gas-property database
ProblemModeler        0D adaptor adding the pressure term (§4.1)
DPDt                  pressure-evolution closure (§4.1)
ExplicitIntegrator    RKC driver over the hierarchy (§4.2)
DiffusionPhysics      diffusion fluxes K∇·(B∇Φ) (§4.2)
DRFMComponent         mixture-averaged diffusion coefficients (§4.2)
MaxDiffCoeffEvaluator dynamic-timestep eigenvalue bound (§4.2)
ImplicitIntegrator    per-cell chemistry adaptor (§4.2)
ErrorEstAndRegrid     gradient flagging + regrid trigger (§4.2, §4.3)
StatisticsComponent   run-time observables (§4.3)
ExplicitIntegratorRK2 RK2 hydro integrator (§4.3)
CharacteristicQuantities  CFL wave speeds (§4.3)
InviscidFlux          Euler RHS adaptor (§4.3)
States                MUSCL interface states (§4.3)
GodunovFlux           exact-Riemann interface flux (§4.3)
EFMFlux               kinetic interface flux for strong shocks (§4.3)
BoundaryConditions    reflecting/outflow/inflow fills (§4.3)
GasProperties         gamma etc. database (§4.3)
ProlongRestrict       cell-centered interpolations (§4.3)
====================  =====================================================
"""

from repro.components.grace import GrACEComponent
from repro.components.initializers import (
    ConicalInterfaceIC,
    InitialCondition,
    Initializer,
)
from repro.components.cvode_component import CvodeComponent
from repro.components.thermochem import ThermoChemistry
from repro.components.problem_modeler import DPDt, ProblemModeler
from repro.components.explicit_integrator import ExplicitIntegrator
from repro.components.diffusion_physics import DiffusionPhysics
from repro.components.drfm import DRFMComponent
from repro.components.maxdiffcoeff import MaxDiffCoeffEvaluator
from repro.components.implicit_adaptor import ImplicitIntegrator
from repro.components.error_regrid import ErrorEstAndRegrid
from repro.components.statistics import StatisticsComponent
from repro.components.rk2_integrator import (
    CharacteristicQuantities,
    ExplicitIntegratorRK2,
)
from repro.components.inviscid_flux import InviscidFlux, States
from repro.components.flux_components import EFMFlux, GodunovFlux
from repro.components.boundary import BoundaryConditions
from repro.components.gas_properties import GasProperties
from repro.components.prolong_restrict import ProlongRestrict
from repro.components.balancers import GreedyBalancer, SFCBalancer

ALL_COMPONENTS = [
    GreedyBalancer,
    SFCBalancer,
    GrACEComponent,
    Initializer,
    InitialCondition,
    ConicalInterfaceIC,
    CvodeComponent,
    ThermoChemistry,
    ProblemModeler,
    DPDt,
    ExplicitIntegrator,
    DiffusionPhysics,
    DRFMComponent,
    MaxDiffCoeffEvaluator,
    ImplicitIntegrator,
    ErrorEstAndRegrid,
    StatisticsComponent,
    ExplicitIntegratorRK2,
    CharacteristicQuantities,
    InviscidFlux,
    States,
    GodunovFlux,
    EFMFlux,
    BoundaryConditions,
    GasProperties,
    ProlongRestrict,
]

__all__ = [cls.__name__ for cls in ALL_COMPONENTS] + ["ALL_COMPONENTS"]
