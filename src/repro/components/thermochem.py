"""ThermoChemistry: chemical source terms + gas-property database.

"The ThermoChemistry component embodies the chemical interactions; it
provides the source terms for temperature and species due to chemistry ...
ThermoChemistry also serves as a Database subsystem, i.e. it holds the gas
properties."  (paper §4.1)

Provides
--------
``source``      VectorRHSPort — constant-pressure [T, Y...] source terms.
``chemistry``   ChemistryPort — the mechanism object + vectorized sources.
``properties``  ParameterPort — gas-property database (weights, name...).

Parameters: ``mechanism`` (``h2-air`` | ``h2-lite``), ``pressure`` [Pa],
``rate_scale`` (uniform forward-rate perturbation factor, default 1.0).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.parameter import ParameterPort
from repro.cca.ports.physics import ChemistryPort
from repro.cca.ports.rhs import VectorRHSPort
from repro.chemistry.h2_air import h2_air_mechanism
from repro.chemistry.h2_lite import h2_lite_mechanism
from repro.chemistry.mechanism import Mechanism
from repro.errors import CCAError

_MECHS = {
    "h2-air": h2_air_mechanism,
    "h2-lite": h2_lite_mechanism,
}


class _Source(VectorRHSPort):
    """Constant-pressure reactor RHS over y = [T, Y_0..Y_{ns-1}]."""

    def __init__(self, owner: "ThermoChemistry") -> None:
        self.owner = owner
        self.nfe = 0

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        self.nfe += 1
        mech = self.owner.mech
        T = max(float(y[0]), 50.0)
        Y = np.clip(y[1:], 0.0, None)
        dT, dY = self.owner.source_terms(np.array(T), Y)
        return np.concatenate(([float(dT)], dY))

    def n_state(self) -> int:
        return self.owner.mech.n_species + 1


class _Chem(ChemistryPort):
    def __init__(self, owner: "ThermoChemistry") -> None:
        self.owner = owner

    def mechanism(self) -> Mechanism:
        return self.owner.mech

    def pressure(self) -> float:
        return self.owner.pressure

    def source_terms(self, T, Y):
        return self.owner.source_terms(T, Y)


class _Properties(ParameterPort):
    def __init__(self, owner: "ThermoChemistry") -> None:
        self.owner = owner

    def get(self, key: str, default: Any = None) -> Any:
        mech = self.owner.mech
        builtin = {
            "mechanism": mech.name,
            "n_species": mech.n_species,
            "n_reactions": mech.n_reactions,
            "species_names": mech.names,
            "pressure": self.owner.pressure,
        }
        if key in builtin:
            return builtin[key]
        if key.startswith("weight:"):
            return float(mech.weights[mech.species_index(key[7:])])
        return self.owner.extra.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self.owner.extra[key] = value

    def keys(self) -> list[str]:
        return sorted(
            ["mechanism", "n_species", "n_reactions", "species_names",
             "pressure"] + list(self.owner.extra))


class ThermoChemistry(Component):
    """Chemistry source terms + gas-property database (see module doc)."""

    def set_services(self, services) -> None:
        self.services = services
        self.extra: dict[str, Any] = {}
        self._mech: Mechanism | None = None
        services.add_provides_port(_Source(self), "source")
        services.add_provides_port(_Chem(self), "chemistry")
        services.add_provides_port(_Properties(self), "properties")

    # -- lazy configuration ------------------------------------------------------
    @property
    def mech(self) -> Mechanism:
        if self._mech is None:
            name = self.services.get_parameter("mechanism", "h2-air")
            scale = float(self.services.get_parameter("rate_scale", 1.0))
            try:
                mech = _MECHS[name]()
            except KeyError:
                raise CCAError(
                    f"unknown mechanism {name!r}; have {sorted(_MECHS)}"
                ) from None
            # rate_scale != 1 perturbs every forward rate uniformly (UQ
            # ensembles, serve batch sweeps); scaled(1.0) is the identity
            self._mech = mech.scaled(scale)
        return self._mech

    @property
    def pressure(self) -> float:
        return float(self.services.get_parameter("pressure", 101325.0))

    def source_terms(self, T, Y):
        """(dT/dt, dY/dt) at constant pressure, vectorized over cells.

        ``T`` shape (...), ``Y`` shape (nsp, ...).
        """
        mech = self.mech
        T = np.asarray(T, dtype=float)
        Y = np.clip(np.asarray(Y, dtype=float), 0.0, None)
        rho = mech.density(T, self.pressure, Y)
        C = mech.concentrations(rho, Y)
        wdot = mech.wdot(T, C)
        shape = (-1,) + (1,) * T.ndim
        dY = wdot * mech.weights.reshape(shape) / rho
        h = mech.h_mass_species(T)
        cp = mech.cp_mass(T, Y)
        dT = -np.einsum("i...,i...->...", h,
                        wdot * mech.weights.reshape(shape)) / (rho * cp)
        return dT, dY
