"""ErrorEstAndRegrid: gradient flagging and hierarchy recreation.

"(ErrorEstAndRegrid) component estimates the gradients at a cell and flags
regions for refinement/coarsening."  (paper §4.2; reused by the
shock-interface assembly, §4.3 / conclusion item 2)

Provides ``regrid`` (RegridPort); uses ``mesh`` and ``data``.

Parameters: ``dataobject`` (field driving the flags), ``variables``
(comma-separated indices, default all), ``threshold`` (relative, default
0.1), ``buffer`` (flag dilation, default 2), ``max_size``/``min_size``
(clustering), ``min_efficiency``.
"""

from __future__ import annotations

import numpy as np

from repro.cca.component import Component
from repro.cca.ports.mesh import RegridPort
from repro.samr.flagging import flag_gradient
from repro.samr.regrid import regrid as samr_regrid


class _Regrid(RegridPort):
    def __init__(self, owner: "ErrorEstAndRegrid") -> None:
        self.owner = owner
        self.nregrids = 0

    def regrid(self) -> None:
        self.owner.run_regrid()
        self.nregrids += 1


class ErrorEstAndRegrid(Component):
    """Flag -> cluster -> rebuild driver (see module docstring)."""

    def set_services(self, services) -> None:
        self.services = services
        self.port = _Regrid(self)
        services.register_uses_port("mesh", "MeshPort")
        services.register_uses_port("data", "DataObjectPort")
        services.add_provides_port(self.port, "regrid")

    # -- Checkpointable (repro.resilience.protocol) -------------------------
    def checkpoint_state(self) -> dict:
        return {"nregrids": self.port.nregrids}

    def restore_state(self, state: dict) -> None:
        self.port.nregrids = int(state["nregrids"])

    def run_regrid(self) -> None:
        mesh = self.services.get_port("mesh")
        data = self.services.get_port("data")
        p = self.services.parameters
        name = p.get_str("dataobject", "flow")
        dobj = data.data(name)
        comm = self.services.get_comm()
        variables = None
        if "variables" in p:
            variables = [int(v) for v in
                         str(p.get("variables")).split(",")]
        threshold = p.get_float("threshold", 0.1)

        def flag_fn(level: int) -> dict[int, np.ndarray]:
            data.exchange_ghosts(name, level)
            return flag_gradient(dobj, level, threshold,
                                 variables=variables, relative=True,
                                 comm=comm)

        all_dobjs = [data.data(nm) for nm in data.names()]
        samr_regrid(
            mesh.hierarchy(),
            all_dobjs,
            flag_fn,
            comm=comm,
            buffer=p.get_int("buffer", 2),
            min_efficiency=p.get_float("min_efficiency", 0.7),
            max_size=p.get_int("max_size", 32),
            min_size=p.get_int("min_size", 4),
        )
        # fresh levels need consistent halos before the next RHS call
        h = mesh.hierarchy()
        for nm in data.names():
            for lev in range(h.nlevels):
                data.exchange_ghosts(nm, lev)
