"""Tests for checkpoint / restart."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.samr import Box, DataObject, Hierarchy
from repro.samr.checkpoint import load_checkpoint, save_checkpoint


def build_state():
    h = Hierarchy((16, 16), extent=(2.0, 2.0), ratio=2, max_levels=2,
                  nghost=2, nranks=1)
    h.build_base_level()
    h.set_level_boxes(1, [Box((8, 8), (23, 23))])
    d = DataObject("flow", h, nvar=3, var_names=["T", "u", "v"])
    rng = np.random.default_rng(7)
    for p in d.owned_patches():
        d.array(p)[...] = rng.random(d.array(p).shape)
    return h, d


def test_roundtrip_bit_exact(tmp_path):
    h, d = build_state()
    path = save_checkpoint(str(tmp_path / "ck"), h, [d], t=0.125)
    h2, dataobjs, t = load_checkpoint(path)
    assert t == 0.125
    assert h2.nlevels == h.nlevels
    assert h2.total_cells() == h.total_cells()
    d2 = dataobjs["flow"]
    assert d2.var_names == ["T", "u", "v"]
    for p in h.all_patches():
        np.testing.assert_array_equal(d2.array(p.id), d.array(p.id))


def test_hierarchy_metadata_restored(tmp_path):
    h, d = build_state()
    path = save_checkpoint(str(tmp_path / "ck"), h, [d])
    h2, _, _ = load_checkpoint(path)
    assert h2.ratio == h.ratio
    assert h2.origin == h.origin
    assert h2.extent == h.extent
    assert h2.dx(1) == h.dx(1)
    # patch identity allocation continues where it left off
    assert h2.new_patch_id() == h.new_patch_id()


def test_restart_continues_simulation(tmp_path):
    """A restarted run must continue exactly like the original."""
    from repro.samr import exchange_ghosts

    h, d = build_state()

    def advance(dobj):
        for p in dobj.owned_patches():
            dobj.interior(p)[...] *= 1.5
        exchange_ghosts(dobj, 0)

    path = save_checkpoint(str(tmp_path / "ck"), h, [d], t=1.0)
    advance(d)  # original timeline

    h2, objs, t = load_checkpoint(path)
    d2 = objs["flow"]
    advance(d2)  # restarted timeline
    for p in h.all_patches():
        np.testing.assert_allclose(d2.array(p.id), d.array(p.id),
                                   rtol=1e-15)


def test_rank_sharded_paths(tmp_path):
    h, d = build_state()
    path = save_checkpoint(str(tmp_path / "ck"), h, [d], rank=3)
    assert "rank3" in path
    h2, objs, _ = load_checkpoint(str(tmp_path / "ck"), rank=3)
    assert "flow" in objs


def test_multiple_dataobjects(tmp_path):
    h, d = build_state()
    e = DataObject("aux", h, nvar=1)
    e.fill(42.0)
    path = save_checkpoint(str(tmp_path / "ck"), h, [d, e])
    _, objs, _ = load_checkpoint(path)
    assert set(objs) == {"flow", "aux"}
    p0 = next(iter(objs["aux"].owned_patches()))
    assert np.all(objs["aux"].array(p0) == 42.0)


def test_scmd_four_rank_sharded_roundtrip(tmp_path):
    """Every rank writes its own shard; each restores bit-identically —
    patch arrays and the full owner map."""
    from repro.mpi import ZERO_COST, mpirun

    path = str(tmp_path / "ck")

    def main(comm):
        h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=2,
                      nghost=2, nranks=comm.size)
        h.build_base_level(decomposition=[
            Box((0, 0), (7, 7)), Box((0, 8), (7, 15)),
            Box((8, 0), (15, 7)), Box((8, 8), (15, 15)),
        ])
        h.set_level_boxes(1, [Box((4, 4), (19, 19)),
                              Box((20, 20), (27, 27))])
        d = DataObject("flow", h, nvar=2, rank=comm.rank)
        rng = np.random.default_rng(11)  # same stream on every rank...
        for p in h.all_patches():
            block = rng.random((2,) + p.array_shape)
            if p.owner == comm.rank:  # ...so owned data is reproducible
                d.array(p.id)[...] = block
        save_checkpoint(path, h, [d], t=0.5, rank=comm.rank)

        h2, objs, t = load_checkpoint(path, rank=comm.rank)
        assert t == 0.5
        owners = {p.id: p.owner for p in h.all_patches()}
        owners2 = {p.id: p.owner for p in h2.all_patches()}
        assert owners2 == owners  # hierarchy meta replicated per shard
        d2 = objs["flow"]
        for p in d.owned_patches():
            np.testing.assert_array_equal(d2.array(p.id), d.array(p.id))
        return owners2, {p.id: d2.array(p.id).copy()
                         for p in d.owned_patches()}

    results = mpirun(4, main, machine=ZERO_COST)
    # all four shards exist and agree on the owner map
    owner_maps = [owners for owners, _ in results]
    assert all(m == owner_maps[0] for m in owner_maps)
    seen = {}
    for _, arrays in results:
        assert not (set(seen) & set(arrays))  # disjoint ownership
        seen.update(arrays)
    assert set(seen) == set(owner_maps[0])  # every patch restored once


def test_load_missing_rank_shard_raises_checkpoint_error(tmp_path):
    from repro.errors import CheckpointError

    h, d = build_state()
    save_checkpoint(str(tmp_path / "ck"), h, [d], rank=0)
    with pytest.raises(CheckpointError, match="rank 2"):
        load_checkpoint(str(tmp_path / "ck"), rank=2)


def test_format_version_mismatch_raises_checkpoint_error(tmp_path):
    import json

    from repro.errors import CheckpointError
    from repro.samr.checkpoint import write_npz_atomic

    h, d = build_state()
    path = save_checkpoint(str(tmp_path / "ck"), h, [d])
    with np.load(path) as blob:
        arrays = dict(blob)
    manifest = json.loads(bytes(arrays["__manifest__"]).decode())
    manifest["hierarchy"]["version"] = 999
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8)
    write_npz_atomic(path, arrays)
    with pytest.raises(CheckpointError, match="version 999"):
        load_checkpoint(path)


def test_patch_id_allocator_cannot_rewind():
    h, _ = build_state()
    with pytest.raises(MeshError, match="rewind"):
        h.seed_patch_ids(0)
