"""Tests for ghost-cell exchange: same-level, coarse-fine, physical BC,
serial and SCMD-parallel paths."""

import numpy as np
import pytest

from repro.mpi import ZERO_COST, mpirun
from repro.samr import Box, DataObject, Hierarchy, exchange_ghosts
from repro.samr.ghost import restrict_level, zero_gradient_bc


def two_patch_hierarchy(nranks=1, nghost=2):
    """16x8 domain split into two 8x8 patches along x."""
    h = Hierarchy((16, 8), extent=(2.0, 1.0), max_levels=2,
                  nghost=nghost, nranks=nranks)
    h.build_base_level(decomposition=[Box((0, 0), (7, 7)),
                                      Box((8, 0), (15, 7))])
    return h


def fill_with_global_index(h, d):
    """f(i, j) = 100*i + j on every owned interior cell."""
    for p in d.owned_patches():
        i = np.arange(p.box.lo[0], p.box.hi[0] + 1)
        j = np.arange(p.box.lo[1], p.box.hi[1] + 1)
        d.interior(p)[0] = 100.0 * i[:, None] + j[None, :]


def test_same_level_exchange_serial():
    h = two_patch_hierarchy()
    d = DataObject("f", h, nvar=1)
    d.fill(np.nan)
    fill_with_global_index(h, d)
    exchange_ghosts(d, 0)
    left, right = h.level(0).patches
    # right patch's low-x ghosts must hold the left patch's columns 6, 7
    arr = d.array(right)[0]
    np.testing.assert_allclose(
        arr[0, 2:-2], 100.0 * 6 + np.arange(8))
    np.testing.assert_allclose(
        arr[1, 2:-2], 100.0 * 7 + np.arange(8))
    # and the left patch's high-x ghosts hold columns 8, 9
    arrL = d.array(left)[0]
    np.testing.assert_allclose(arrL[-2, 2:-2], 100.0 * 8 + np.arange(8))


def test_physical_bc_default_zero_gradient():
    h = two_patch_hierarchy()
    d = DataObject("f", h, nvar=1)
    fill_with_global_index(h, d)
    exchange_ghosts(d, 0)
    left = h.level(0).patches[0]
    arr = d.array(left)[0]
    # low-x face ghosts replicate interior row i=0
    np.testing.assert_allclose(arr[0, 2:-2], arr[2, 2:-2])
    np.testing.assert_allclose(arr[1, 2:-2], arr[2, 2:-2])
    # low-y corner area also filled (y-sweep after x-sweep)
    assert np.isfinite(arr).all()


def test_custom_bc_callback():
    h = two_patch_hierarchy()
    d = DataObject("f", h, nvar=1)
    fill_with_global_index(h, d)
    calls = []

    def bc(patch, arr, axis, side):
        calls.append((patch.id, axis, side))
        zero_gradient_bc(patch, arr, axis, side)

    exchange_ghosts(d, 0, bc=bc)
    # left patch: x-low, y-low, y-high; right: x-high, y-low, y-high
    assert len(calls) == 6


def test_parallel_exchange_matches_serial():
    def main(comm):
        h = two_patch_hierarchy(nranks=comm.size)
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        d.fill(np.nan)
        fill_with_global_index(h, d)
        exchange_ghosts(d, 0, comm=comm)
        out = {}
        for p in d.owned_patches(0):
            out[p.id] = d.array(p).copy()
        return out

    par = {}
    for chunk in mpirun(2, main, machine=ZERO_COST):
        par.update(chunk)

    h = two_patch_hierarchy(nranks=1)
    d = DataObject("f", h, nvar=1)
    d.fill(np.nan)
    fill_with_global_index(h, d)
    exchange_ghosts(d, 0)
    for p in h.level(0).patches:
        np.testing.assert_allclose(par[p.id], d.array(p))


def test_coarse_fine_ghost_fill_linear_field():
    """Fine ghosts interpolated from a linear coarse field must be exact."""
    h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=2, nghost=2)
    h.build_base_level()
    h.set_level_boxes(1, [Box((8, 8), (23, 23))])
    d = DataObject("f", h, nvar=1)
    # linear in physical coordinates: f = 2x + 3y
    for p in d.owned_patches():
        lvl = h.level(p.level)
        x, y = lvl.cell_centers(p, h.origin, ghost=True)
        d.array(p)[0] = 2.0 * x[:, None] + 3.0 * y[None, :]
    truth = {p.id: d.array(p).copy() for p in h.level(1).patches}
    # wipe fine ghosts, then refill via exchange
    for p in d.owned_patches(1):
        arr = d.array(p)[0]
        interior = arr[p.interior_slices()].copy()
        arr[:] = np.nan
        arr[p.interior_slices()] = interior
    exchange_ghosts(d, 1)
    for p in h.level(1).patches:
        got = d.array(p)
        ref = truth[p.id]
        # interior ghost faces (coarse-fine) are exact for linear fields
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)


def test_coarse_fine_sibling_priority():
    """Where two fine patches touch, ghosts must come from the sibling
    (same level), not from coarse interpolation."""
    h = Hierarchy((16, 16), extent=(1.0, 1.0), max_levels=2, nghost=1)
    h.build_base_level()
    h.set_level_boxes(1, [Box((8, 8), (15, 23)), Box((16, 8), (23, 23))])
    d = DataObject("f", h, nvar=1)
    d.fill(0.0)
    for p in d.owned_patches(1):
        d.interior(p)[:] = float(p.id)  # distinct per-patch marker
    exchange_ghosts(d, 1)
    pa, pb = h.level(1).patches
    arr_a = d.array(pa)[0]
    # pa's high-x ghost column lies inside pb -> must carry pb's marker
    assert np.all(arr_a[-1, 1:-1] == float(pb.id))


def test_restrict_level_averages_fine_onto_coarse():
    h = Hierarchy((8, 8), extent=(1.0, 1.0), max_levels=2, nghost=1)
    h.build_base_level()
    h.set_level_boxes(1, [Box((4, 4), (11, 11))])
    d = DataObject("f", h, nvar=1)
    d.fill(1.0)
    for p in d.owned_patches(1):
        d.interior(p)[:] = 5.0
    restrict_level(d, 1)
    coarse = h.level(0).patches[0]
    arr = d.var(coarse, 0, ghost=False)
    assert np.all(arr[2:6, 2:6] == 5.0)   # under the fine patch
    assert np.all(arr[:2, :] == 1.0)       # elsewhere untouched


def test_restrict_level_parallel_matches_serial():
    def main(comm):
        h = Hierarchy((8, 8), extent=(1.0, 1.0), max_levels=2,
                      nghost=1, nranks=comm.size)
        h.build_base_level()
        h.set_level_boxes(1, [Box((4, 4), (11, 11))])
        d = DataObject("f", h, nvar=1, rank=comm.rank)
        d.fill(1.0)
        for p in d.owned_patches(1):
            d.interior(p)[:] = 5.0
        restrict_level(d, 1, comm=comm)
        return {p.id: d.interior(p).copy() for p in d.owned_patches(0)}

    par = {}
    for chunk in mpirun(2, main, machine=ZERO_COST):
        par.update(chunk)
    assert par  # at least one coarse patch restricted somewhere
    for arr in par.values():
        assert set(np.unique(arr)) <= {1.0, 5.0}
