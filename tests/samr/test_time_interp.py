"""Tests for temporal interpolation (Interpolation subsystem)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeshError
from repro.samr.time_interp import TimeInterpolant, time_interpolate


def test_endpoints_exact():
    a, b = np.zeros((2, 2)), np.ones((2, 2))
    np.testing.assert_array_equal(time_interpolate(0.0, 0.0, a, 1.0, b), a)
    np.testing.assert_array_equal(time_interpolate(1.0, 0.0, a, 1.0, b), b)


def test_midpoint():
    a, b = np.full(3, 2.0), np.full(3, 4.0)
    np.testing.assert_allclose(
        time_interpolate(0.5, 0.0, a, 1.0, b), 3.0)


def test_validation():
    a = np.zeros(2)
    with pytest.raises(MeshError):
        time_interpolate(0.5, 1.0, a, 0.0, a)     # reversed window
    with pytest.raises(MeshError):
        time_interpolate(2.0, 0.0, a, 1.0, a)     # outside window
    with pytest.raises(MeshError):
        time_interpolate(0.5, 0.0, a, 1.0, np.zeros(3))  # shape


@settings(max_examples=30)
@given(st.floats(0.0, 1.0))
def test_linear_exactness(theta):
    """Linear-in-time fields are reproduced exactly."""
    a = np.array([1.0, -2.0])
    b = np.array([3.0, 6.0])
    got = time_interpolate(theta, 0.0, a, 1.0, b)
    np.testing.assert_allclose(got, (1 - theta) * a + theta * b)


def test_interpolant_window_and_advance():
    ti = TimeInterpolant(0.0, np.zeros(2), 1.0, np.full(2, 2.0))
    np.testing.assert_allclose(ti.at(0.25), 0.5)
    ti.advance(2.0, np.full(2, 6.0))
    np.testing.assert_allclose(ti.at(1.5), 4.0)   # between 2.0 and 6.0
    with pytest.raises(MeshError):
        ti.advance(1.5, np.zeros(2))               # backwards
    with pytest.raises(MeshError):
        TimeInterpolant(1.0, np.zeros(2), 1.0, np.zeros(2))


def test_interpolant_copies_inputs():
    src = np.zeros(2)
    ti = TimeInterpolant(0.0, src, 1.0, np.ones(2))
    src[:] = 99.0
    np.testing.assert_allclose(ti.at(0.0), 0.0)
