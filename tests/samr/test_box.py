"""Unit + property tests for Box algebra (the geometric foundation)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MeshError
from repro.samr import Box


def boxes_2d(max_coord=40, max_len=20):
    def make(lo0, lo1, n0, n1):
        return Box((lo0, lo1), (lo0 + n0 - 1, lo1 + n1 - 1))

    return st.builds(
        make,
        st.integers(-max_coord, max_coord),
        st.integers(-max_coord, max_coord),
        st.integers(1, max_len),
        st.integers(1, max_len),
    )


# ----------------------------------------------------------------- basics
def test_shape_size():
    b = Box((0, 0), (9, 4))
    assert b.shape == (10, 5)
    assert b.size == 50
    assert not b.empty
    assert b.ndim == 2


def test_from_shape():
    b = Box.from_shape((4, 3), origin=(2, 2))
    assert b == Box((2, 2), (5, 4))
    with pytest.raises(MeshError):
        Box.from_shape((0, 3))


def test_empty_box():
    b = Box((5, 5), (4, 9))
    assert b.empty and b.size == 0


def test_dimension_mismatch_raises():
    with pytest.raises(MeshError):
        Box((0, 0), (1,))
    with pytest.raises(MeshError):
        Box((0, 0), (3, 3)).intersection(Box((0,), (3,)))


def test_contains():
    b = Box((0, 0), (9, 9))
    assert b.contains_point((0, 0)) and b.contains_point((9, 9))
    assert not b.contains_point((10, 0))
    assert b.contains_box(Box((2, 2), (5, 5)))
    assert not b.contains_box(Box((2, 2), (10, 5)))
    # every box contains the empty box
    assert b.contains_box(Box((3, 3), (2, 2)))


def test_intersection_and_bounding():
    a = Box((0, 0), (5, 5))
    b = Box((3, 3), (8, 8))
    assert a.intersection(b) == Box((3, 3), (5, 5))
    assert a.bounding(b) == Box((0, 0), (8, 8))
    assert a.intersects(b)
    assert not a.intersects(Box((6, 6), (7, 7)))


def test_grow_shift():
    b = Box((2, 2), (4, 4))
    assert b.grow(1) == Box((1, 1), (5, 5))
    assert b.grow(-1) == Box((3, 3), (3, 3))
    assert b.grow((1, 0)) == Box((1, 2), (5, 4))
    assert b.shift((10, -2)) == Box((12, 0), (14, 2))


def test_refine_coarsen_roundtrip():
    b = Box((1, 2), (3, 5))
    r = b.refine(2)
    assert r == Box((2, 4), (7, 11))
    assert r.coarsen(2) == b
    assert r.size == 4 * b.size


def test_coarsen_covers():
    b = Box((1, 1), (2, 2))
    c = b.coarsen(2)
    assert c == Box((0, 0), (1, 1))
    assert c.refine(2).contains_box(b)


def test_refine_bad_ratio():
    with pytest.raises(MeshError):
        Box((0, 0), (1, 1)).refine(0)
    with pytest.raises(MeshError):
        Box((0, 0), (1, 1)).coarsen(0)


def test_slices_default_and_origin():
    import numpy as np

    b = Box((2, 3), (4, 6))
    arr = np.zeros((10, 10))
    arr[b.slices(origin=(0, 0))] = 1
    assert arr.sum() == b.size
    assert b.slices() == (slice(0, 3), slice(0, 4))


def test_points_iterates_all_cells():
    b = Box((0, 0), (2, 1))
    pts = list(b.points())
    assert len(pts) == b.size
    assert (0, 0) in pts and (2, 1) in pts


def test_points_1d_and_3d():
    assert list(Box((2,), (4,)).points()) == [(2,), (3,), (4,)]
    pts3 = list(Box((0, 0, 0), (1, 1, 1)).points())
    assert len(pts3) == 8


# ------------------------------------------------------------ properties
@given(boxes_2d(), boxes_2d())
def test_intersection_commutes(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(boxes_2d(), boxes_2d())
def test_intersection_contained_in_both(a, b):
    c = a.intersection(b)
    if not c.empty:
        assert a.contains_box(c) and b.contains_box(c)


@given(boxes_2d())
def test_intersection_idempotent(a):
    assert a.intersection(a) == a


@given(boxes_2d(), st.integers(2, 4))
def test_refine_coarsen_identity(a, r):
    assert a.refine(r).coarsen(r) == a


@given(boxes_2d(), st.integers(2, 4))
def test_coarsen_refine_covers(a, r):
    assert a.coarsen(r).refine(r).contains_box(a)


@given(boxes_2d(), st.integers(0, 3))
def test_grow_shrink_roundtrip(a, g):
    assert a.grow(g).grow(-g) == a


@given(boxes_2d(), boxes_2d())
def test_bounding_contains_both(a, b):
    c = a.bounding(b)
    assert c.contains_box(a) and c.contains_box(b)
