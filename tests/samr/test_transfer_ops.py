"""Tests for prolongation / restriction operators: shape, conservation,
monotonicity, exactness on linear fields."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeshError
from repro.samr import prolong_bilinear, prolong_constant, restrict_average


# ------------------------------------------------------------- constant
def test_prolong_constant_repeats_blocks():
    c = np.array([[1.0, 2.0], [3.0, 4.0]])
    f = prolong_constant(c, 2)
    assert f.shape == (4, 4)
    assert np.all(f[:2, :2] == 1.0) and np.all(f[2:, 2:] == 4.0)


def test_prolong_constant_leading_axis():
    c = np.random.default_rng(0).random((3, 2, 2))
    f = prolong_constant(c, 3)
    assert f.shape == (3, 6, 6)
    assert np.all(f[1, :3, :3] == c[1, 0, 0])


def test_prolong_constant_conserves_mean():
    rng = np.random.default_rng(1)
    c = rng.random((5, 7))
    f = prolong_constant(c, 4)
    assert f.mean() == pytest.approx(c.mean())


# ------------------------------------------------------------- bilinear
def test_prolong_bilinear_needs_ghost_ring():
    with pytest.raises(MeshError):
        prolong_bilinear(np.zeros((2, 2)), 2)


def test_prolong_bilinear_shape():
    c = np.zeros((6, 5))
    f = prolong_bilinear(c, 2)
    assert f.shape == (8, 6)


def test_prolong_bilinear_exact_on_linear_field():
    """A linear profile must be reproduced exactly (2nd-order operator)."""
    x = np.arange(8, dtype=float)
    y = np.arange(7, dtype=float)
    c = 2.0 * x[:, None] + 3.0 * y[None, :]
    f = prolong_bilinear(c, 2, limited=True)
    # fine cell centers in coarse index units
    xf = 1.0 + (np.arange(12) + 0.5) / 2 - 0.5
    yf = 1.0 + (np.arange(10) + 0.5) / 2 - 0.5
    expect = 2.0 * xf[:, None] + 3.0 * yf[None, :]
    np.testing.assert_allclose(f, expect, rtol=1e-13)


def test_prolong_bilinear_conserves_block_means():
    rng = np.random.default_rng(2)
    c = rng.random((6, 6))
    f = prolong_bilinear(c, 2)
    back = restrict_average(f, 2)
    np.testing.assert_allclose(back, c[1:-1, 1:-1], rtol=1e-12)


def test_prolong_bilinear_monotone_no_new_extrema():
    """With limiting, fine values stay inside the local coarse range."""
    rng = np.random.default_rng(3)
    c = rng.random((8, 8))
    f = prolong_bilinear(c, 2, limited=True)
    assert f.max() <= c.max() + 1e-12
    assert f.min() >= c.min() - 1e-12


def test_prolong_bilinear_ratio_one_is_identity():
    c = np.random.default_rng(4).random((5, 5))
    np.testing.assert_array_equal(prolong_bilinear(c, 1), c[1:-1, 1:-1])


def test_prolong_bilinear_leading_axes():
    c = np.random.default_rng(5).random((4, 6, 6))
    f = prolong_bilinear(c, 2)
    assert f.shape == (4, 8, 8)
    single = prolong_bilinear(c[2], 2)
    np.testing.assert_allclose(f[2], single)


# ------------------------------------------------------------- restrict
def test_restrict_average_blocks():
    f = np.array([[1.0, 2.0], [3.0, 4.0]])
    c = restrict_average(f, 2)
    assert c.shape == (1, 1)
    assert c[0, 0] == pytest.approx(2.5)


def test_restrict_requires_divisible_shape():
    with pytest.raises(MeshError):
        restrict_average(np.zeros((3, 4)), 2)


def test_restrict_ratio_one_identity():
    f = np.random.default_rng(6).random((4, 4))
    np.testing.assert_array_equal(restrict_average(f, 1), f)


@settings(max_examples=25)
@given(st.integers(2, 4), st.integers(1, 4), st.integers(1, 4))
def test_restrict_conserves_integral(ratio, nx, ny):
    rng = np.random.default_rng(nx * 10 + ny)
    f = rng.random((nx * ratio, ny * ratio))
    c = restrict_average(f, ratio)
    assert c.sum() * ratio**2 == pytest.approx(f.sum())


@settings(max_examples=25)
@given(st.integers(2, 3), st.integers(3, 6), st.integers(3, 6))
def test_prolong_then_restrict_is_identity_on_interior(ratio, nx, ny):
    """Conservation: restriction undoes (limited) bilinear prolongation."""
    rng = np.random.default_rng(ratio * 100 + nx * 10 + ny)
    c = rng.random((nx, ny))
    f = prolong_bilinear(c, ratio)
    back = restrict_average(f, ratio)
    np.testing.assert_allclose(back, c[1:-1, 1:-1], rtol=1e-12, atol=1e-12)
