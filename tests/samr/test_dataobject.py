"""Tests for DataObject: allocation, views, reductions, regrid sync."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.samr import Box, DataObject, Hierarchy


def make_h(nranks=1, max_levels=2):
    h = Hierarchy((8, 8), extent=(1.0, 1.0), ratio=2,
                  max_levels=max_levels, nghost=1, nranks=nranks)
    h.build_base_level()
    return h


def test_allocation_shapes():
    h = make_h()
    d = DataObject("flow", h, nvar=3, var_names=["T", "u", "v"])
    p = h.level(0).patches[0]
    assert d.array(p).shape == (3, 10, 10)  # 8+2*1 ghosts
    assert d.interior(p).shape == (3, 8, 8)


def test_var_access_and_names():
    h = make_h()
    d = DataObject("flow", h, nvar=2, var_names=["T", "Y"])
    p = h.level(0).patches[0]
    d.var(p, 0)[:] = 7.0
    assert d.array(p)[0].min() == 7.0
    assert d.var(p, 1, ghost=False).shape == (8, 8)
    assert d.var_index("Y") == 1
    with pytest.raises(MeshError):
        d.var_index("rho")
    with pytest.raises(MeshError):
        d.var(p, 5)


def test_only_owner_allocates():
    h = make_h(nranks=2)
    d0 = DataObject("f", h, nvar=1, rank=0)
    d1 = DataObject("f", h, nvar=1, rank=1)
    p0, p1 = h.level(0).patches
    assert d0.has(p0) and not d0.has(p1)
    assert d1.has(p1) and not d1.has(p0)
    with pytest.raises(MeshError):
        d0.array(p1)


def test_fill_copy_clone_axpy_scale():
    h = make_h()
    a = DataObject("a", h, nvar=2)
    b = DataObject("b", h, nvar=2)
    a.fill(2.0)
    b.fill(3.0)
    a.axpy(2.0, b)      # a = 2 + 2*3 = 8
    a.scale(0.5)        # 4
    p = h.level(0).patches[0]
    assert np.all(a.array(p) == 4.0)
    c = a.clone("c")
    assert np.all(c.array(p) == 4.0)
    b.copy_from(a)
    assert np.all(b.array(p) == 4.0)


def test_copy_from_incompatible_raises():
    h = make_h()
    a = DataObject("a", h, nvar=2)
    b = DataObject("b", h, nvar=3)
    with pytest.raises(MeshError):
        a.copy_from(b)


def test_apply_visits_owned_patches():
    h = make_h()
    d = DataObject("d", h, nvar=1)
    seen = []

    d.apply(lambda p, arr: seen.append(p.id))
    assert seen == [p.id for p in h.level(0).patches]


def test_reductions_interior_only():
    h = make_h()
    d = DataObject("d", h, nvar=1)
    p = h.level(0).patches[0]
    d.array(p)[:] = 1.0          # ghosts too
    d.array(p)[0, 0, 0] = 100.0  # a ghost cell: must not count
    assert d.sum() == 64.0
    assert d.max_norm() == 1.0


def test_reductions_with_comm():
    from repro.mpi import ZERO_COST, mpirun

    def main(comm):
        h = make_h(nranks=2)
        d = DataObject("d", h, nvar=1, rank=comm.rank)
        for p in d.owned_patches():
            d.interior(p)[:] = comm.rank + 1.0
        return d.sum(comm), d.max_norm(comm)

    res = mpirun(2, main, machine=ZERO_COST)
    # 32 cells at 1.0 + 32 cells at 2.0
    assert all(r == (96.0, 2.0) for r in res)


def test_sync_allocation_after_regrid():
    h = make_h(max_levels=2)
    d = DataObject("d", h, nvar=1)
    n0 = len(d._data)
    h.set_level_boxes(1, [Box((0, 0), (7, 7))])
    d.sync_allocation()
    assert len(d._data) > n0
    h.drop_levels_above(0)
    d.sync_allocation()
    assert len(d._data) == n0


def test_sync_allocation_keeps_existing_values():
    h = make_h(max_levels=2)
    d = DataObject("d", h, nvar=1)
    p = h.level(0).patches[0]
    d.array(p)[:] = 5.0
    h.set_level_boxes(1, [Box((0, 0), (3, 3))])
    d.sync_allocation()
    assert np.all(d.array(p) == 5.0)


def test_nvar_validation():
    h = make_h()
    with pytest.raises(MeshError):
        DataObject("bad", h, nvar=0)
    with pytest.raises(MeshError):
        DataObject("bad", h, nvar=2, var_names=["only-one"])
