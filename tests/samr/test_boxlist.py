"""Tests for box-set algebra (subtract / coalesce / disjointness)."""

from hypothesis import given

from repro.samr import Box, coalesce, intersect_all, subtract
from repro.samr.boxlist import is_disjoint, subtract_all, total_cells
from tests.samr.test_box import boxes_2d


def cells(boxes):
    out = set()
    for b in boxes:
        out |= set(b.points())
    return out


def test_subtract_disjoint_returns_original():
    a = Box((0, 0), (3, 3))
    assert subtract(a, Box((10, 10), (12, 12))) == [a]


def test_subtract_full_cover_returns_empty():
    a = Box((0, 0), (3, 3))
    assert subtract(a, Box((-1, -1), (4, 4))) == []


def test_subtract_center_hole():
    a = Box((0, 0), (4, 4))
    hole = Box((2, 2), (2, 2))
    pieces = subtract(a, hole)
    assert is_disjoint(pieces)
    assert total_cells(pieces) == a.size - 1
    assert cells(pieces) == set(a.points()) - {(2, 2)}


def test_subtract_edge():
    a = Box((0, 0), (3, 3))
    pieces = subtract(a, Box((0, 0), (3, 1)))
    assert cells(pieces) == set(Box((0, 2), (3, 3)).points())


def test_subtract_all_multiple_cuts():
    a = Box((0, 0), (5, 5))
    cuts = [Box((0, 0), (2, 5)), Box((3, 0), (5, 2))]
    pieces = subtract_all([a], cuts)
    assert cells(pieces) == set(Box((3, 3), (5, 5)).points())


def test_intersect_all_clips_and_drops():
    region = Box((0, 0), (4, 4))
    boxes = [Box((2, 2), (8, 8)), Box((9, 9), (10, 10))]
    out = intersect_all(boxes, region)
    assert out == [Box((2, 2), (4, 4))]


def test_coalesce_merges_adjacent_strips():
    parts = [Box((0, 0), (1, 3)), Box((2, 0), (4, 3)), Box((5, 0), (5, 3))]
    merged = coalesce(parts)
    assert merged == [Box((0, 0), (5, 3))]


def test_coalesce_respects_mismatched_cross_sections():
    parts = [Box((0, 0), (1, 3)), Box((2, 0), (4, 2))]
    merged = coalesce(parts)
    assert sorted(merged) == sorted(parts)


def test_coalesce_merges_both_axes():
    quad = [Box((0, 0), (1, 1)), Box((0, 2), (1, 3)),
            Box((2, 0), (3, 1)), Box((2, 2), (3, 3))]
    merged = coalesce(quad)
    assert merged == [Box((0, 0), (3, 3))]


# ------------------------------------------------------------ properties
@given(boxes_2d(max_coord=10, max_len=8), boxes_2d(max_coord=10, max_len=8))
def test_subtract_partitions_exactly(a, cut):
    pieces = subtract(a, cut)
    assert is_disjoint(pieces)
    assert cells(pieces) == set(a.points()) - set(cut.points())


@given(boxes_2d(max_coord=8, max_len=6), boxes_2d(max_coord=8, max_len=6),
       boxes_2d(max_coord=8, max_len=6))
def test_subtract_all_removes_all_cut_cells(a, c1, c2):
    pieces = subtract_all([a], [c1, c2])
    assert is_disjoint(pieces)
    assert cells(pieces) == set(a.points()) - set(c1.points()) - set(c2.points())


@given(boxes_2d(max_coord=8, max_len=6), boxes_2d(max_coord=8, max_len=6))
def test_coalesce_preserves_cells(a, cut):
    pieces = subtract(a, cut)
    merged = coalesce(pieces)
    assert is_disjoint(merged)
    assert cells(merged) == cells(pieces)
    assert len(merged) <= len(pieces)
